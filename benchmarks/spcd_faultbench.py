"""Fault-path microbenchmark: batched fast path vs per-fault reference.

Drives an identical fault-heavy stream through two complete fault stacks —
pipeline, TLBs and SPCD detector — once through the vectorised batch path
(``FaultPipeline.handle_fault_batch`` + the array-table detector engine) and
once through the per-fault reference path (``handle_fault`` loop + the
dict-table engine), asserts the two end states are bit-identical, and
reports the fault throughput of each.

Standalone on purpose: no pytest/conftest imports, so the tier-1 smoke test
can load it directly and ``bench_kernels.py`` can import it when the
benchmark suite runs.  Only needs ``src`` on ``sys.path``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.spcd import SpcdDetector
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray
from repro.units import PAGE_SHIFT, PAGE_SIZE


def _build_stack(engine: str, n_threads: int, n_pages: int, table_size: int):
    """One complete fault stack with the requested detector engine."""
    space = AddressSpace(max(1 << 14, 2 * n_pages))
    region = space.mmap("data", n_pages * PAGE_SIZE)
    frames = FrameAllocator(n_nodes=2, frames_per_node=n_pages + 64)
    tlbs = TlbArray(n_threads, capacity=64)
    pipeline = FaultPipeline(space, frames, tlbs, node_of_pu=lambda pu: pu % 2)
    detector = SpcdDetector(
        n_threads,
        table_size=table_size,
        pipeline=pipeline,
        engine=engine,
    )
    return space, region, pipeline, detector, tlbs


def _make_stream(
    rng: np.random.Generator,
    region_vpns: np.ndarray,
    n_threads: int,
    batches: int,
    faults_per_batch: int,
):
    """Pregenerated (tid, vaddrs, writes) batches, identical for both stacks."""
    stream = []
    for b in range(batches):
        tid = int(rng.integers(0, n_threads))
        vpns = rng.choice(region_vpns, size=faults_per_batch, replace=False)
        vaddrs = (vpns << PAGE_SHIFT) + rng.integers(0, PAGE_SIZE, size=vpns.size)
        writes = rng.random(vpns.size) < 0.3
        stream.append((tid, np.sort(vpns), vaddrs, writes))
    return stream


def run_spcd_fault_bench(
    *,
    n_threads: int = 32,
    n_pages: int = 4096,
    batches: int = 200,
    faults_per_batch: int = 256,
    table_size: int = 16_384,
    seed: int = 0,
) -> dict:
    """Run the benchmark; returns the ``BENCH_spcd.json`` payload.

    Every batch clears the present bits of ``faults_per_batch`` random pages
    (the injector's effect) and then resolves them — through one
    ``handle_fault_batch`` call on the fast stack, and through the reference
    per-fault loop (ascending unique VPNs, as ``Simulator._step`` replays
    them under ``REPRO_SLOW_SPCD=1``) on the slow stack.  Asserts both end
    states match bit for bit before reporting throughput.
    """
    rng = np.random.default_rng(seed)
    fast = _build_stack("array", n_threads, n_pages, table_size)
    slow = _build_stack("dict", n_threads, n_pages, table_size)
    stream = _make_stream(rng, fast[1].vpns(), n_threads, batches, faults_per_batch)

    # Pre-populate every page (untimed) so the stream is injected faults.
    for space, region, pipeline, _, _ in (fast, slow):
        vpns = region.vpns()
        pipeline.handle_fault_batch(
            0, 0, vpns << PAGE_SHIFT, np.zeros(vpns.size, dtype=bool), now_ns=0
        )

    def drive_fast() -> float:
        space, _, pipeline, _, tlbs = fast
        table = space.page_table
        total = 0.0
        for step, (tid, vpns, vaddrs, writes) in enumerate(stream):
            table.clear_present(vpns)
            tlbs.shootdown(vpns)
            t0 = perf_counter()
            pipeline.handle_fault_batch(tid, tid, vaddrs, writes, now_ns=step)
            total += perf_counter() - t0
        return total

    def drive_slow() -> float:
        space, _, pipeline, _, tlbs = slow
        table = space.page_table
        total = 0.0
        for step, (tid, vpns, vaddrs, writes) in enumerate(stream):
            table.clear_present(vpns)
            tlbs.shootdown(vpns)
            t0 = perf_counter()
            fault_vpns = vaddrs >> PAGE_SHIFT
            _, first = np.unique(fault_vpns, return_index=True)
            for k in first:
                pipeline.handle_fault(
                    tid, tid, int(vaddrs[k]), is_write=bool(writes[k]), now_ns=step
                )
            total += perf_counter() - t0
        return total

    t_fast = drive_fast()
    t_slow = drive_slow()

    # Differential check: the two stacks must agree bit for bit.
    f_det, s_det = fast[3], slow[3]
    assert np.array_equal(f_det.matrix.matrix, s_det.matrix.matrix)
    assert f_det.stats == s_det.stats
    assert (f_det.table.collisions, f_det.table.inserts) == (
        s_det.table.collisions,
        s_det.table.inserts,
    )
    f_pipe, s_pipe = fast[2], slow[2]
    assert f_pipe.first_touch_faults == s_pipe.first_touch_faults
    assert f_pipe.injected_faults == s_pipe.injected_faults
    assert f_pipe.fault_time_ns == s_pipe.fault_time_ns
    assert f_pipe.hook_time_ns == s_pipe.hook_time_ns

    faults = batches * faults_per_batch
    return {
        "faults": faults,
        "batches": batches,
        "faults_per_batch": faults_per_batch,
        "n_threads": n_threads,
        "fast_faults_per_s": faults / t_fast,
        "slow_faults_per_s": faults / t_slow,
        "speedup": t_slow / t_fast,
    }


if __name__ == "__main__":
    import json

    print(json.dumps(run_spcd_fault_bench(), indent=2))
