"""E5 — Fig. 9: L2 cache MPKI normalised to the OS scheduler."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig9_l2_mpki(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("l2_mpki"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig9_l2_mpki.txt",
        format_figure_table(series, title="Fig. 9 — L2 MPKI (normalised to OS)"),
    )
    # The paper's L2 effects are small (private caches, placement-neutral
    # private traffic): every ratio stays within a modest band.
    for bench, per_policy in series.items():
        for policy, value in per_policy.items():
            assert 0.7 < value < 1.3, (bench, policy, value)
