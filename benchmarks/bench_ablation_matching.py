"""E16 — ablation: exact blossom matching vs. the greedy heuristic.

Times both matchers with pytest-benchmark on paper-sized (32-thread) and
larger communication matrices and compares solution quality.  The exact
algorithm is polynomial (Edmonds [15]); greedy is the cheap fallback.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.report import format_table
from repro.core.matching import (
    greedy_matching,
    matching_weight,
    max_weight_perfect_matching,
)
from repro.workloads.patterns import chain_pattern, uniform_pattern


def noisy_chain(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    w = chain_pattern(n, 10.0) + uniform_pattern(n, 0.5) + rng.random((n, n))
    w = (w + w.T) / 2
    np.fill_diagonal(w, 0.0)
    return w


@pytest.mark.parametrize("n", [32, 64])
def test_bench_blossom_matching(benchmark, n):
    w = noisy_chain(n)
    pairs = benchmark(max_weight_perfect_matching, w)
    assert len(pairs) == n // 2


@pytest.mark.parametrize("n", [32, 64])
def test_bench_greedy_matching(benchmark, n):
    w = noisy_chain(n)
    pairs = benchmark(greedy_matching, w)
    assert len(pairs) == n // 2


def test_ablation_matching_quality(benchmark, results_dir):
    def sweep():
        rows = []
        for n in (16, 32, 64):
            w = noisy_chain(n)
            exact = matching_weight(w, max_weight_perfect_matching(w))
            greedy = matching_weight(w, greedy_matching(w))
            rows.append([n, f"{exact:.1f}", f"{greedy:.1f}", f"{greedy / exact:.4f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_matching.txt",
        format_table(
            ["threads", "blossom weight", "greedy weight", "quality ratio"],
            rows,
            title="Ablation — matching algorithm quality",
        ),
    )
    for row in rows:
        ratio = float(row[3])
        assert 0.5 <= ratio <= 1.0 + 1e-9
