"""End-to-end simulator-core benchmark: the Fig. 8 wall-clock trajectory.

Not a paper figure — this measures how fast the *simulator itself* produces
the paper's headline result (Fig. 8, end-to-end execution time) across the
three engine generations that now coexist behind ``RunSettings`` flags:

* **scalar** — the PR-5 baseline: L1 fast path with per-access MESI drains
  (``REPRO_SLOW_MESI=1``);
* **batched** — batched MESI drains (this PR's default);
* **batched+sharded** — batched drains plus the core-sharded parallel
  engine (``REPRO_SIM_SHARDS=4``).

Before timing anything the driver asserts the *whole grid* of
``REPRO_SIM_SHARDS in {1, 2, 4} x REPRO_SLOW_MESI in {0, 1}`` produces
bit-identical :class:`SimulationResult` digests — the speedup numbers are
meaningless if the engines diverge.  It also records the mapping-decision
latency of the vectorised grouping + matching kernels at 32/128/512
simulated threads (the Schulz & Woydt scaling axis), and emits everything
as ``BENCH_simcore.json``.

Wall-clock speedup from sharding needs real cores: the payload records
``host_cpus`` and the >= 3x acceptance gate is only asserted when the host
can physically run the coordinator and 4 workers concurrently (on a 1-CPU
container the workers time-slice one core and the protocol is pure
overhead, while the *same* run scales on a multicore host).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from time import perf_counter

import numpy as np

from conftest import emit
from repro.core.mapping import HierarchicalMapper
from repro.engine.runner import run_single
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, SimulationResult
from repro.machine.topology import build_machine, dual_xeon_e5_2650
from repro.workloads.npb import make_npb
from repro.workloads.patterns import mixed_pattern

SIMCORE_STEPS = int(os.environ.get("REPRO_BENCH_SIMCORE_STEPS", "150"))
PARITY_STEPS = int(os.environ.get("REPRO_BENCH_PARITY_STEPS", "30"))
SEED = 42


def result_digest(result: SimulationResult) -> str:
    """Content hash of everything deterministic a run produces."""
    stats = dataclasses.astuple(result.stats)
    metrics = tuple(
        result.metric(m)
        for m in (
            "exec_time_s",
            "instructions",
            "l2_mpki",
            "l3_mpki",
            "c2c_transactions",
            "c2c_inter",
            "invalidations",
            "migrations",
            "first_touch_faults",
            "injected_faults",
        )
    )
    return hashlib.sha256(repr((stats, metrics)).encode()).hexdigest()[:16]


def _run(settings: RunSettings, steps: int) -> tuple[SimulationResult, float]:
    t0 = perf_counter()
    result = run_single(
        lambda: make_npb("SP"),
        "spcd",
        seed=SEED,
        config=EngineConfig(steps=steps, batch_size=256),
        settings=settings,
    )
    return result, perf_counter() - t0


def run_simcore_bench() -> dict:
    """Run the parity grid, the wall-clock trajectory and the mapper sweep."""
    # -- parity grid: shards x drain mode, all digests must coincide ----
    parity: dict[str, str] = {}
    for shards in (1, 2, 4):
        for slow_mesi in (False, True):
            result, _ = _run(
                RunSettings(sim_shards=shards, slow_mesi=slow_mesi), PARITY_STEPS
            )
            parity[f"shards{shards}_slowmesi{int(slow_mesi)}"] = result_digest(result)
    digests = set(parity.values())
    assert len(digests) == 1, f"engines diverged: {parity}"

    # -- Fig. 8 wall clock: scalar -> batched -> batched+sharded --------
    walls: dict[str, float] = {}
    digest = None
    for label, settings in (
        ("scalar", RunSettings(slow_mesi=True)),
        ("batched", RunSettings()),
        ("batched_sharded4", RunSettings(sim_shards=4)),
    ):
        result, wall = _run(settings, SIMCORE_STEPS)
        walls[label] = wall
        d = result_digest(result)
        assert digest is None or d == digest, f"{label} diverged at full length"
        digest = d

    # -- mapping-decision latency at the scaling thread counts ----------
    # The online path maps *detected* matrices, which are structured (NPB
    # neighbour/chain patterns); the dense uniform-random matrix is the
    # worst case for the blossom engine (a near-complete graph) and is
    # recorded separately for visibility.
    rng = np.random.default_rng(SEED)
    mapping_latency: dict[str, float] = {}
    mapping_latency_dense: dict[str, float] = {}
    machines = {
        32: dual_xeon_e5_2650(),
        128: build_machine(4, 16, 2, name="scale128"),
        512: build_machine(8, 32, 2, name="scale512"),
    }
    for n, machine in machines.items():
        detected = np.rint(mixed_pattern(n, 1000.0, 50.0))
        t0 = perf_counter()
        HierarchicalMapper(machine).map(detected)
        mapping_latency[str(n)] = perf_counter() - t0

        dense = rng.integers(0, 1000, size=(n, n)).astype(float)
        dense = np.triu(dense, 1)
        dense = dense + dense.T
        t0 = perf_counter()
        HierarchicalMapper(machine).map(dense)
        mapping_latency_dense[str(n)] = perf_counter() - t0

    return {
        "host_cpus": os.cpu_count() or 1,
        "workload": "SP",
        "threads": 32,
        "batch_size": 256,
        "steps": SIMCORE_STEPS,
        "parity_steps": PARITY_STEPS,
        "parity_digest": digests.pop(),
        "parity_cells": parity,
        "wall_s": walls,
        "speedup_batched": walls["scalar"] / walls["batched"],
        "speedup_sharded4": walls["scalar"] / walls["batched_sharded4"],
        "mapping_latency_s": mapping_latency,
        "mapping_latency_dense_s": mapping_latency_dense,
    }


def test_bench_simcore(results_dir):
    """Drive the simulator-core benchmark and emit ``BENCH_simcore.json``."""
    payload = run_simcore_bench()
    emit(results_dir, "BENCH_simcore.json", json.dumps(payload, indent=2))
    # The vectorised mapping kernels must decide a 512-thread mapping
    # within the paper's online budget.
    assert payload["mapping_latency_s"]["512"] <= 1.0
    # Sharded wall-clock only beats serial when the workers get real
    # cores; on a starved host the parity grid above is the contract.
    if payload["host_cpus"] >= 5:
        assert payload["speedup_sharded4"] >= 3.0
