"""E11 — Fig. 15: DRAM energy per instruction normalised to the OS."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig15_dram_energy_per_instruction(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("dram_epi_nj"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig15_dram_epi.txt",
        format_figure_table(
            series, title="Fig. 15 — DRAM energy per instruction (normalised to OS)"
        ),
    )
    for bench in ("BT", "LU", "SP", "UA"):
        if bench in series:
            assert series[bench]["oracle"] < 1.0, bench
