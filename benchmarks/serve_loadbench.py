"""Load benchmark for the mapping service: the PR's acceptance scenario.

Runs a :class:`~repro.serve.MappingServer` in-process and drives it with
concurrent asyncio tenants, each streaming the far-pair synthetic fault
pattern through the credit-window protocol.  For every tenant it asserts
the service-side state is *bit-identical* to an offline replay of the same
stream (zero lost events, same matrix digest, same final mapping) and that
at least one MAPPING push arrived — correctness first, then throughput.

Reported per tenant count: aggregate ingest rate (events/s), per-batch
detection+evaluation latency p50/p99 from the server's own histogram, and
the remap count.  The acceptance row is 8 tenants x 100k events.

Standalone on purpose: no pytest/conftest imports, so the tier-1 smoke
test can import it and CI can run it directly.  Only needs ``src`` on
``sys.path``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from time import perf_counter

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.machine.topology import dual_xeon_e5_2650  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncServeClient,
    MappingServer,
    ServeConfig,
    SessionConfig,
    offline_reference,
    synthetic_fault_stream,
)

N_THREADS = 8
TABLE_SIZE = 10_000
EVAL_EVERY = 8192
OVERRIDES = {"table_size": TABLE_SIZE, "eval_every_events": EVAL_EVERY}


async def _run_tenant(port: int, name: str, seed: int, events_per_thread: int):
    """Stream one tenant's synthetic load; return (stream, summary, pushes)."""
    client = await AsyncServeClient.connect(
        "127.0.0.1", port, tenant=name, n_threads=N_THREADS, config=OVERRIDES
    )
    stream = list(synthetic_fault_stream(N_THREADS, events_per_thread, seed=seed))
    for tid, now_ns, vaddrs in stream:
        await client.send_events(tid, now_ns, vaddrs)
    summary = await client.close()
    return stream, summary, list(client.mappings)


def _verify_tenant(machine, stream, summary, pushes) -> int:
    """Assert service/offline bit-parity for one tenant; return remaps."""
    cfg = SessionConfig.from_overrides(
        SessionConfig(n_threads=N_THREADS, shards=4, eval_every_events=EVAL_EVERY),
        OVERRIDES,
    )
    ref = offline_reference(stream, cfg, machine, flush_after=[len(stream) - 1])
    sent = sum(len(v) for _, _, v in stream)
    assert summary["events"] == sent == ref.events, "lost events"
    assert summary["matrix_digest"] == ref.final_digest, "digest mismatch"
    assert summary["mapping"] == ref.final_mapping, "mapping mismatch"
    assert pushes, "tenant received no mapping notification"
    assert pushes[-1]["mapping"] == ref.final_mapping
    return int(summary["remaps"])


async def run_load(n_tenants: int, events_per_thread: int) -> dict:
    """One measured round: ``n_tenants`` concurrent sessions, full parity."""
    machine = dual_xeon_e5_2650()
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        metrics_port=None,
        max_sessions=max(8, n_tenants),
        max_table_mb=64.0,
        shards=4,
        eval_every_events=EVAL_EVERY,
        credit_window=65536,
        drain_grace_s=5.0,
    )
    async with MappingServer(config, machine=machine) as server:
        start = perf_counter()
        results = await asyncio.gather(
            *(
                _run_tenant(server.port, f"tenant-{i}", 100 + i, events_per_thread)
                for i in range(n_tenants)
            )
        )
        elapsed = perf_counter() - start
        total_events = server.events_total
        hist = server.metrics.histogram("serve_ingest_seconds")
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        assert server.sessions_served == n_tenants
    remaps = sum(
        _verify_tenant(machine, stream, summary, pushes)
        for stream, summary, pushes in results
    )
    expected = n_tenants * N_THREADS * events_per_thread
    assert total_events == expected, f"server saw {total_events}, sent {expected}"
    return {
        "tenants": n_tenants,
        "events_per_thread": events_per_thread,
        "events_total": total_events,
        "elapsed_s": elapsed,
        "events_per_s": total_events / elapsed,
        "ingest_p50_s": p50,
        "ingest_p99_s": p99,
        "remaps": remaps,
        "parity": "bit-identical",
    }


def run_bench(events_per_thread: int = 100_000, tenant_counts=(1, 4, 8)) -> dict:
    """The full sweep; the last row is the acceptance configuration."""
    rows = [
        asyncio.run(run_load(n, events_per_thread)) for n in tenant_counts
    ]
    return {
        "n_threads_per_tenant": N_THREADS,
        "table_size": TABLE_SIZE,
        "eval_every_events": EVAL_EVERY,
        "rows": rows,
    }


def main(argv: "list[str] | None" = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    events = int(args[0]) if args else 100_000
    result = run_bench(events_per_thread=events)
    for row in result["rows"]:
        print(
            f"tenants={row['tenants']:2d}  events={row['events_total']:>9,}  "
            f"rate={row['events_per_s']:>12,.0f} ev/s  "
            f"ingest p50={row['ingest_p50_s'] * 1e3:6.2f} ms "
            f"p99={row['ingest_p99_s'] * 1e3:6.2f} ms  "
            f"remaps={row['remaps']}  {row['parity']}"
        )
    out = REPO / "benchmarks" / "results" / "BENCH_serve.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
