"""Load benchmark for the mapping service: the PR's acceptance scenario.

Runs a :class:`~repro.serve.MappingServer` in-process and drives it with
concurrent asyncio tenants, each streaming the far-pair synthetic fault
pattern through the credit-window protocol.  For every tenant it asserts
the service-side state is *bit-identical* to an offline replay of the same
stream (zero lost events, same matrix digest, same final mapping) and that
at least one MAPPING push arrived — correctness first, then throughput.

Reported per tenant count: aggregate ingest rate (events/s), per-batch
detection+evaluation latency p50/p99 from the server's own histogram, and
the remap count.  The acceptance row is 8 tenants x 100k events.

The routed sweep then replays the acceptance configuration through
:class:`~repro.serve.RoutedMappingServer` for worker counts {1, 2, 4},
asserting every tenant's digest is bit-identical to the single-process
row's — the router must never trade correctness for throughput.  The
>= 3x speedup gate is asserted only when the host has enough CPUs to
make a multi-process speedup physically possible (``host_cpus >=
workers + 2``, the :mod:`bench_simcore` convention); on smaller hosts
the measured rate and the protocol overhead are recorded honestly and
the 1M events/s trajectory row is labelled a projection.

Standalone on purpose: no pytest/conftest imports, so the tier-1 smoke
test can import it and CI can run it directly.  Only needs ``src`` on
``sys.path``.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import sys
from pathlib import Path
from time import perf_counter

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.machine.topology import dual_xeon_e5_2650  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncServeClient,
    MappingServer,
    RoutedMappingServer,
    ServeConfig,
    SessionConfig,
    offline_reference,
    synthetic_fault_stream,
)

N_THREADS = 8
TABLE_SIZE = 10_000
EVAL_EVERY = 8192
OVERRIDES = {"table_size": TABLE_SIZE, "eval_every_events": EVAL_EVERY}


async def _run_tenant(port: int, name: str, seed: int, events_per_thread: int):
    """Stream one tenant's synthetic load; return (stream, summary, pushes)."""
    client = await AsyncServeClient.connect(
        "127.0.0.1", port, tenant=name, n_threads=N_THREADS, config=OVERRIDES
    )
    stream = list(synthetic_fault_stream(N_THREADS, events_per_thread, seed=seed))
    for tid, now_ns, vaddrs in stream:
        await client.send_events(tid, now_ns, vaddrs)
    summary = await client.close()
    return stream, summary, list(client.mappings)


def _verify_tenant(machine, stream, summary, pushes) -> int:
    """Assert service/offline bit-parity for one tenant; return remaps."""
    cfg = SessionConfig.from_overrides(
        SessionConfig(n_threads=N_THREADS, shards=4, eval_every_events=EVAL_EVERY),
        OVERRIDES,
    )
    ref = offline_reference(stream, cfg, machine, flush_after=[len(stream) - 1])
    sent = sum(len(v) for _, _, v in stream)
    assert summary["events"] == sent == ref.events, "lost events"
    assert summary["matrix_digest"] == ref.final_digest, "digest mismatch"
    assert summary["mapping"] == ref.final_mapping, "mapping mismatch"
    assert pushes, "tenant received no mapping notification"
    assert pushes[-1]["mapping"] == ref.final_mapping
    return int(summary["remaps"])


async def run_load(n_tenants: int, events_per_thread: int, workers: int = 0) -> dict:
    """One measured round: ``n_tenants`` concurrent sessions, full parity.

    ``workers=0`` runs the single-process server; ``workers>=1`` routes the
    same load through the multi-process tier.  Either way every tenant is
    verified bit-identical against the offline replay, and the row carries
    a per-tenant digest map so routed rows can also be pinned against the
    single-process row directly.
    """
    machine = dual_xeon_e5_2650()
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        metrics_port=None,
        max_sessions=max(8, n_tenants),
        max_table_mb=64.0,
        shards=4,
        eval_every_events=EVAL_EVERY,
        credit_window=65536,
        drain_grace_s=5.0,
        workers=max(1, workers),
    )
    if workers:
        server = RoutedMappingServer(config, machine=machine)
    else:
        server = MappingServer(config, machine=machine)
    async with server:
        start = perf_counter()
        results = await asyncio.gather(
            *(
                _run_tenant(server.port, f"tenant-{i}", 100 + i, events_per_thread)
                for i in range(n_tenants)
            )
        )
        elapsed = perf_counter() - start
        total_events = server.events_total
        hist = server.metrics.histogram("serve_ingest_seconds")
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        assert server.sessions_served == n_tenants
    remaps = sum(
        _verify_tenant(machine, stream, summary, pushes)
        for stream, summary, pushes in results
    )
    expected = n_tenants * N_THREADS * events_per_thread
    assert total_events == expected, f"server saw {total_events}, sent {expected}"
    row = {
        "tenants": n_tenants,
        "events_per_thread": events_per_thread,
        "events_total": total_events,
        "elapsed_s": elapsed,
        "events_per_s": total_events / elapsed,
        "ingest_p50_s": p50,
        "ingest_p99_s": p99,
        "remaps": remaps,
        "parity": "bit-identical",
        "digests": {
            f"tenant-{i}": summary["matrix_digest"]
            for i, (_, summary, _) in enumerate(results)
        },
    }
    if workers:
        row["workers"] = workers
    return row


def run_routed_sweep(
    single_row: dict,
    events_per_thread: int,
    worker_counts=(1, 2, 4),
    host_cpus: "int | None" = None,
) -> "tuple[list[dict], dict]":
    """The routed acceptance sweep + the 1M events/s trajectory row.

    Every routed row is digest-pinned against *single_row* (same tenants,
    same seeds), so the comparison is exact, not statistical.  The >= 3x
    gate only fires when the host could physically show the speedup.
    """
    host_cpus = host_cpus if host_cpus is not None else (os.cpu_count() or 1)
    n_tenants = single_row["tenants"]
    single_rate = single_row["events_per_s"]
    routed_rows = []
    for workers in worker_counts:
        row = asyncio.run(run_load(n_tenants, events_per_thread, workers=workers))
        assert row["digests"] == single_row["digests"], (
            f"routed workers={workers} digests diverged from single-process"
        )
        row["digest_parity_vs_single_process"] = True
        row["speedup_vs_single_process"] = row["events_per_s"] / single_rate
        gated = host_cpus >= workers + 2
        if workers >= 3 and gated:
            assert row["speedup_vs_single_process"] >= 3.0, (
                f"workers={workers} only reached "
                f"{row['speedup_vs_single_process']:.2f}x on {host_cpus} cpus"
            )
            row["speedup_gate"] = ">=3x asserted"
        elif workers >= 3:
            row["speedup_gate"] = (
                f"skipped: host_cpus={host_cpus} < workers+2={workers + 2} — "
                "all processes time-share one core, the measured ratio is "
                "protocol overhead, not scaling"
            )
        else:
            row["speedup_gate"] = "n/a (router overhead row)"
        routed_rows.append(row)
    # the 1M events/s trajectory, recorded honestly: measured when this
    # host actually demonstrated it, otherwise a projection from the
    # per-worker detection rate with the router cost already included
    best = max(routed_rows, key=lambda r: r["events_per_s"])
    one_worker = next(r for r in routed_rows if r["workers"] == 1)
    per_worker_rate = one_worker["events_per_s"]
    workers_needed = math.ceil(1_000_000 / per_worker_rate)
    if best["events_per_s"] >= 1_000_000:
        trajectory = {
            "target_events_per_s": 1_000_000,
            "status": "measured",
            "workers": best["workers"],
            "events_per_s": best["events_per_s"],
            "host_cpus": host_cpus,
        }
    else:
        trajectory = {
            "target_events_per_s": 1_000_000,
            "status": "projected",
            "basis": (
                "per-worker routed rate (router + ring overhead included), "
                "assuming linear worker scaling on a host with "
                "workers + 2 free cpus"
            ),
            "per_worker_events_per_s": per_worker_rate,
            "workers_needed": workers_needed,
            "best_measured_events_per_s": best["events_per_s"],
            "best_measured_workers": best["workers"],
            "host_cpus": host_cpus,
            "honest_note": (
                f"this host has {host_cpus} cpu(s); routed workers time-share "
                "cores with the router, so wall-clock scaling cannot appear "
                "here — digest parity is asserted, throughput is projected"
            )
            if host_cpus < 6
            else "host had enough cpus but the target was not reached",
        }
    return routed_rows, trajectory


def run_bench(
    events_per_thread: int = 100_000,
    tenant_counts=(1, 4, 8),
    worker_counts=(1, 2, 4),
) -> dict:
    """The full sweep; the last single-process row is the acceptance
    configuration and seeds the routed sweep's digest pin."""
    rows = [
        asyncio.run(run_load(n, events_per_thread)) for n in tenant_counts
    ]
    routed_rows, trajectory = run_routed_sweep(
        rows[-1], events_per_thread, worker_counts=worker_counts
    )
    return {
        "n_threads_per_tenant": N_THREADS,
        "table_size": TABLE_SIZE,
        "eval_every_events": EVAL_EVERY,
        "host_cpus": os.cpu_count() or 1,
        "rows": rows,
        "routed_rows": routed_rows,
        "trajectory_1m_events_per_s": trajectory,
    }


def _print_row(row: dict) -> None:
    label = f"workers={row['workers']}" if "workers" in row else "single   "
    print(
        f"{label}  tenants={row['tenants']:2d}  "
        f"events={row['events_total']:>9,}  "
        f"rate={row['events_per_s']:>12,.0f} ev/s  "
        f"ingest p50={row['ingest_p50_s'] * 1e3:6.2f} ms "
        f"p99={row['ingest_p99_s'] * 1e3:6.2f} ms  "
        f"remaps={row['remaps']}  {row['parity']}"
    )


def main(argv: "list[str] | None" = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    events = int(args[0]) if args else 100_000
    result = run_bench(events_per_thread=events)
    for row in result["rows"] + result["routed_rows"]:
        _print_row(row)
    trajectory = result["trajectory_1m_events_per_s"]
    print(f"1M events/s trajectory: {trajectory['status']}")
    out = REPO / "benchmarks" / "results" / "BENCH_serve.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
