"""Performance benchmarks of the library's hot kernels (pytest-benchmark).

Not a paper figure — these measure the simulator substrate itself so that
regressions in the per-access and per-fault paths are caught: the MESI
hierarchy's access path, the fault pipeline with the SPCD hook attached,
the injector wake, the hierarchical mapper, and the communication filter.
"""

import numpy as np
import pytest

from repro.cachesim.hierarchy import CoherentHierarchy
from repro.core.commmatrix import CommunicationMatrix
from repro.core.filter import CommunicationFilter
from repro.core.injector import FaultInjector, InjectorMode
from repro.core.mapping import HierarchicalMapper
from repro.core.spcd import SpcdDetector
from repro.machine.topology import dual_xeon_e5_2650
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import PAGE_SIZE
from repro.workloads.patterns import chain_pattern


@pytest.fixture(scope="module")
def machine():
    return dual_xeon_e5_2650()


def test_bench_hierarchy_access_path(benchmark, machine):
    """Throughput of the coherent-hierarchy access loop (per 10k accesses)."""
    hier = CoherentHierarchy(machine)
    rng = np.random.default_rng(0)
    pus = rng.integers(0, machine.n_pus, 10_000).tolist()
    lines = rng.integers(0, 4_000, 10_000).tolist()
    writes = (rng.random(10_000) < 0.3).tolist()
    homes = rng.integers(0, 2, 10_000).tolist()

    def run():
        hier.access_batch(pus, lines, writes, homes)

    benchmark(run)
    assert hier.check_invariants() == []


def test_bench_fault_path_with_detector(benchmark, machine):
    """Cost of one injected fault through the pipeline + SPCD hook."""
    space = AddressSpace(4096)
    region = space.mmap("d", 1024 * PAGE_SIZE)
    pipeline = FaultPipeline(space, FrameAllocator(2, 100_000), node_of_pu=lambda p: 0)
    SpcdDetector(32, pipeline=pipeline)
    for vpn in region.vpns():
        pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)
    table = space.page_table
    state = {"i": 0}

    def one_fault():
        vpn = int(region.first_vpn) + state["i"] % 1024
        state["i"] += 1
        table.clear_present(vpn)
        pipeline.handle_fault(state["i"] % 32, 0, vpn * PAGE_SIZE, is_write=False, now_ns=0)

    benchmark(one_fault)


def test_bench_injector_wake(benchmark, machine):
    """One injector wakeup over a populated 8k-page table."""
    space = AddressSpace(1 << 14)
    region = space.mmap("d", 8192 * PAGE_SIZE)
    pipeline = FaultPipeline(space, FrameAllocator(2, 100_000), node_of_pu=lambda p: 0)
    for vpn in region.vpns():
        pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)
    inj = FaultInjector(
        pipeline,
        np.random.default_rng(0),
        mode=InjectorMode.STEADY,
        floor_per_wake=256,
        sampling="uniform",
    )
    table = space.page_table

    def wake():
        inj.wake(0)
        # restore so the candidate set stays constant
        for vpn in table.populated_vpns()[~table.present_mask(table.populated_vpns())]:
            table.restore_present(int(vpn))

    benchmark(wake)


def test_bench_hierarchical_mapper(benchmark, machine):
    """Full 32-thread mapping (blossom matching at two hierarchy levels)."""
    mapper = HierarchicalMapper(machine)
    rng = np.random.default_rng(0)
    comm = chain_pattern(32, 10.0) + rng.random((32, 32))
    comm = (comm + comm.T) / 2
    np.fill_diagonal(comm, 0.0)
    mapping = benchmark(mapper.map, comm)
    assert len(set(mapping.tolist())) == 32


def test_bench_communication_filter(benchmark):
    """One filter evaluation over a 32-thread matrix (Theta(N^2))."""
    matrix = CommunicationMatrix(32, chain_pattern(32, 100.0))
    filt = CommunicationFilter(32)
    filt.should_remap(matrix)
    benchmark(filt.should_remap, matrix)


def test_bench_detector_hook(benchmark):
    """The SPCD fault hook alone (hash lookup + matrix update)."""
    from repro.mem.fault import FaultInfo, FaultKind

    det = SpcdDetector(32)
    infos = [
        FaultInfo(
            thread_id=t % 32,
            pu_id=0,
            vaddr=(t % 64) * PAGE_SIZE,
            vpn=t % 64,
            now_ns=t,
            is_write=False,
            kind=FaultKind.INJECTED,
            home_node=0,
        )
        for t in range(128)
    ]
    state = {"i": 0}

    def hook():
        det.on_fault(infos[state["i"] % 128])
        state["i"] += 1

    benchmark(hook)
