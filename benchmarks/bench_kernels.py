"""Performance benchmarks of the library's hot kernels (pytest-benchmark).

Not a paper figure — these measure the simulator substrate itself so that
regressions in the per-access and per-fault paths are caught: the MESI
hierarchy's access path, the fault pipeline with the SPCD hook attached,
the injector wake, the hierarchical mapper, and the communication filter.
"""

import dataclasses
import json
from time import perf_counter

import numpy as np
import pytest

from conftest import emit
from repro.cachesim.hierarchy import CoherentHierarchy
from repro.core.commmatrix import CommunicationMatrix
from repro.core.filter import CommunicationFilter
from repro.core.injector import FaultInjector, InjectorMode
from repro.core.mapping import HierarchicalMapper
from repro.core.spcd import SpcdDetector
from repro.machine.topology import dual_xeon_e5_2650
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import PAGE_SIZE
from repro.workloads.patterns import chain_pattern


@pytest.fixture(scope="module")
def machine():
    return dual_xeon_e5_2650()


def test_bench_hierarchy_access_path(benchmark, machine):
    """Throughput of the coherent-hierarchy access loop (per 10k accesses)."""
    hier = CoherentHierarchy(machine)
    rng = np.random.default_rng(0)
    pus = rng.integers(0, machine.n_pus, 10_000).tolist()
    lines = rng.integers(0, 4_000, 10_000).tolist()
    writes = (rng.random(10_000) < 0.3).tolist()
    homes = rng.integers(0, 2, 10_000).tolist()

    def run():
        hier.access_batch(pus, lines, writes, homes)

    benchmark(run)
    assert hier.check_invariants() == []


def test_bench_fault_path_with_detector(benchmark, machine):
    """Cost of one injected fault through the pipeline + SPCD hook."""
    space = AddressSpace(4096)
    region = space.mmap("d", 1024 * PAGE_SIZE)
    pipeline = FaultPipeline(space, FrameAllocator(2, 100_000), node_of_pu=lambda p: 0)
    SpcdDetector(32, pipeline=pipeline)
    for vpn in region.vpns():
        pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)
    table = space.page_table
    state = {"i": 0}

    def one_fault():
        vpn = int(region.first_vpn) + state["i"] % 1024
        state["i"] += 1
        table.clear_present(vpn)
        pipeline.handle_fault(state["i"] % 32, 0, vpn * PAGE_SIZE, is_write=False, now_ns=0)

    benchmark(one_fault)


def test_bench_injector_wake(benchmark, machine):
    """One injector wakeup over a populated 8k-page table."""
    space = AddressSpace(1 << 14)
    region = space.mmap("d", 8192 * PAGE_SIZE)
    pipeline = FaultPipeline(space, FrameAllocator(2, 100_000), node_of_pu=lambda p: 0)
    for vpn in region.vpns():
        pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)
    inj = FaultInjector(
        pipeline,
        np.random.default_rng(0),
        mode=InjectorMode.STEADY,
        floor_per_wake=256,
        sampling="uniform",
    )
    table = space.page_table

    def wake():
        inj.wake(0)
        # restore so the candidate set stays constant
        for vpn in table.populated_vpns()[~table.present_mask(table.populated_vpns())]:
            table.restore_present(int(vpn))

    benchmark(wake)


def test_bench_hierarchical_mapper(benchmark, machine):
    """Full 32-thread mapping (blossom matching at two hierarchy levels)."""
    mapper = HierarchicalMapper(machine)
    rng = np.random.default_rng(0)
    comm = chain_pattern(32, 10.0) + rng.random((32, 32))
    comm = (comm + comm.T) / 2
    np.fill_diagonal(comm, 0.0)
    mapping = benchmark(mapper.map, comm)
    assert len(set(mapping.tolist())) == 32


def test_bench_communication_filter(benchmark):
    """One filter evaluation over a 32-thread matrix (Theta(N^2))."""
    matrix = CommunicationMatrix(32, chain_pattern(32, 100.0))
    filt = CommunicationFilter(32)
    filt.should_remap(matrix)
    benchmark(filt.should_remap, matrix)


def test_bench_detector_hook(benchmark):
    """The SPCD fault hook alone (hash lookup + matrix update)."""
    from repro.mem.fault import FaultInfo, FaultKind

    det = SpcdDetector(32)
    infos = [
        FaultInfo(
            thread_id=t % 32,
            pu_id=0,
            vaddr=(t % 64) * PAGE_SIZE,
            vpn=t % 64,
            now_ns=t,
            is_write=False,
            kind=FaultKind.INJECTED,
            home_node=0,
        )
        for t in range(128)
    ]
    state = {"i": 0}

    def hook():
        det.on_fault(infos[state["i"] % 128])
        state["i"] += 1

    benchmark(hook)


def test_bench_fastpath_vs_reference(machine, results_dir):
    """Throughput of ``access_batch_pu``: vectorised fast path vs reference.

    An L1-hit-heavy stream (small working set, per-core batches — the shape
    the fast path is built for), identical for both engines.  Asserts bit
    identical counters, then emits ``BENCH_hierarchy.json`` with accesses/s
    and the speedup so regressions in either engine are visible.
    """
    rng = np.random.default_rng(0)
    n, batches, repeat = 20_000, 8, 4
    streams = []
    for core in range(batches):
        # runs of `repeat` accesses per line: consecutive-word locality
        # within a 64 B line, the shape real per-thread streams have
        base = rng.integers(0, 12, n // repeat + 1)
        lines = np.repeat(base, repeat)[:n].astype(np.int64) + 64 * core
        writes = rng.random(n) < 0.2
        homes = rng.integers(0, 2, n).astype(np.int64)
        streams.append((core % machine.n_pus, lines, writes, homes))

    def drive(hier):
        t0 = perf_counter()
        for pu, lines, writes, homes in streams:
            hier.access_batch_pu(pu, lines, writes, homes)
        return perf_counter() - t0

    fast = CoherentHierarchy(machine, fast_path=True)
    slow = CoherentHierarchy(machine, fast_path=False)
    drive(fast), drive(slow)  # warm-up (also populates the L1s)
    t_fast = min(drive(fast) for _ in range(5))
    t_slow = min(drive(slow) for _ in range(5))

    assert dataclasses.astuple(fast.stats) == dataclasses.astuple(slow.stats)
    assert fast.check_invariants() == []

    total = n * batches
    payload = {
        "accesses": total,
        "fast_acc_per_s": total / t_fast,
        "slow_acc_per_s": total / t_slow,
        "speedup": t_slow / t_fast,
    }
    emit(results_dir, "BENCH_hierarchy.json", json.dumps(payload, indent=2))
    assert payload["speedup"] > 1.0


def test_bench_spcd_fault_path(results_dir):
    """Fault-path throughput: batched pipeline + array detector vs reference.

    A fault-heavy stream (256 injected faults per batch) resolved once via
    ``handle_fault_batch`` with the array-table engine and once via the
    per-fault reference loop with the dict engine.  The driver asserts both
    end states are bit-identical, then ``BENCH_spcd.json`` records the
    throughputs; the batched path must be at least 3x faster here.
    """
    from spcd_faultbench import run_spcd_fault_bench

    payload = run_spcd_fault_bench()
    emit(results_dir, "BENCH_spcd.json", json.dumps(payload, indent=2))
    assert payload["speedup"] > 3.0
