"""Shared infrastructure for the figure/table reproduction benchmarks.

Running the full NPB suite (10 benchmarks x 4 policies x N repetitions) is
the expensive part; every figure is a different projection of the *same*
runs.  The session-scoped :class:`SuiteCache` therefore executes each
(benchmark, policy, repetition) simulation exactly once and hands memoized
results to every bench module.

Environment knobs:

* ``REPRO_BENCH_STEPS``  — simulation steps per run (default 400).
* ``REPRO_BENCH_REPS``   — repetitions per configuration (default 3;
  the paper used 10).
* ``REPRO_BENCH_SET``    — comma-separated benchmark subset (default: all).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine.policies import Policy
from repro.engine.runner import MetricStats, summarize
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator
from repro.rng import derive_seed
from repro.workloads.npb import NPB_SPECS, make_npb

BENCH_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "400"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
BENCH_SET = [
    b.strip().upper()
    for b in os.environ.get("REPRO_BENCH_SET", ",".join(NPB_SPECS)).split(",")
    if b.strip()
]
BASE_SEED = 42
POLICIES = ("os", "random", "oracle", "spcd")

RESULTS_DIR = Path(__file__).parent / "results"


def engine_config(**overrides) -> EngineConfig:
    """The benchmark harness' engine configuration."""
    kw = dict(batch_size=256, steps=BENCH_STEPS)
    kw.update(overrides)
    return EngineConfig(**kw)


class SuiteCache:
    """Memoizes (benchmark, policy, rep) simulation results for a session."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str, int], SimulationResult] = {}
        self._sims: dict[tuple[str, str, int], Simulator] = {}

    def run(self, bench: str, policy: str, rep: int = 0) -> SimulationResult:
        """One simulation, memoized."""
        key = (bench, policy, rep)
        if key not in self._results:
            seed = derive_seed(BASE_SEED, "rep", rep, Policy.parse(policy).value)
            sim = Simulator(
                make_npb(bench), policy, seed=seed, config=engine_config()
            )
            self._results[key] = sim.run()
            self._sims[key] = sim
        return self._results[key]

    def simulator(self, bench: str, policy: str, rep: int = 0) -> Simulator:
        """The simulator behind a memoized run (runs it if needed)."""
        self.run(bench, policy, rep)
        return self._sims[(bench, policy, rep)]

    def replicated(self, bench: str, policy: str) -> list[SimulationResult]:
        """All repetitions of one cell."""
        return [self.run(bench, policy, rep) for rep in range(BENCH_REPS)]

    def metric_stats(self, bench: str, policy: str, metric: str) -> MetricStats:
        """Mean + 95% CI of one metric over the repetitions."""
        return summarize([r.metric(metric) for r in self.replicated(bench, policy)])

    def normalized_series(self, metric: str) -> dict[str, dict[str, float]]:
        """{bench: {policy: mean metric normalised to the OS baseline}}."""
        out: dict[str, dict[str, float]] = {}
        for bench in BENCH_SET:
            base = self.metric_stats(bench, "os", metric).mean
            out[bench] = {
                policy: (self.metric_stats(bench, policy, metric).mean / base
                         if base else float("nan"))
                for policy in POLICIES
            }
        return out


@pytest.fixture(scope="session")
def suite() -> SuiteCache:
    """The shared suite cache."""
    return SuiteCache()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where figure text/PGM outputs are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")
