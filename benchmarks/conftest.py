"""Shared infrastructure for the figure/table reproduction benchmarks.

Running the full NPB suite (10 benchmarks x 4 policies x N repetitions) is
the expensive part; every figure is a different projection of the *same*
runs.  The session-scoped :class:`SuiteCache` therefore executes each
(benchmark, policy, repetition) simulation exactly once per session, and
additionally persists results through the content-addressed disk cache of
:mod:`repro.engine.gridrunner`, so a second benchmark session with the same
configuration and engine sources re-runs nothing.

Environment knobs:

* ``REPRO_BENCH_STEPS``  — simulation steps per run (default 400).
* ``REPRO_BENCH_REPS``   — repetitions per configuration (default 3;
  the paper used 10).
* ``REPRO_BENCH_SET``    — comma-separated benchmark subset (default: all).
* ``REPRO_GRID_WORKERS`` — process-pool size for bulk cell execution.
* ``REPRO_RESULT_CACHE`` — result cache directory (default:
  ``benchmarks/.result_cache``; set to an empty string to disable).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine.cache import ResultCache
from repro.engine.gridrunner import run_cell, run_grid
from repro.engine.policies import Policy
from repro.engine.runner import MetricStats, summarize
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator
from repro.rng import derive_seed
from repro.workloads.npb import NPB_SPECS, make_npb

BENCH_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "400"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
BENCH_SET = [
    b.strip().upper()
    for b in os.environ.get("REPRO_BENCH_SET", ",".join(NPB_SPECS)).split(",")
    if b.strip()
]
BASE_SEED = 42
POLICIES = ("os", "random", "oracle", "spcd")

RESULTS_DIR = Path(__file__).parent / "results"


def _result_cache() -> ResultCache | None:
    """The benchmark harness' disk cache (``REPRO_RESULT_CACHE`` override)."""
    if "REPRO_RESULT_CACHE" in os.environ:
        cache_dir = RunSettings.from_env().cache_dir
        return ResultCache(cache_dir) if cache_dir else None
    return ResultCache(Path(__file__).parent / ".result_cache")


def engine_config(**overrides) -> EngineConfig:
    """The benchmark harness' engine configuration."""
    kw = dict(batch_size=256, steps=BENCH_STEPS)
    kw.update(overrides)
    return EngineConfig(**kw)


class SuiteCache:
    """Memoizes (benchmark, policy, rep) simulation results for a session.

    Results flow through :func:`repro.engine.gridrunner.run_cell`, so they
    are also persisted on disk and shared across sessions; ``cache_hits`` /
    ``cache_misses`` count disk-cache outcomes for this session.
    """

    def __init__(self) -> None:
        self._results: dict[tuple[str, str, int], SimulationResult] = {}
        self._sims: dict[tuple[str, str, int], Simulator] = {}
        self._cache = _result_cache()
        self._prefetched = False
        self.cache_hits = 0
        self.cache_misses = 0

    def run(self, bench: str, policy: str, rep: int = 0) -> SimulationResult:
        """One simulation, memoized in-session and cached on disk."""
        key = (bench, policy, rep)
        if key not in self._results:
            result, cached = run_cell(
                bench,
                policy,
                rep,
                base_seed=BASE_SEED,
                config=engine_config(),
                cache=self._cache,
            )
            self._results[key] = result
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        return self._results[key]

    def simulator(self, bench: str, policy: str, rep: int = 0) -> Simulator:
        """The live simulator behind one cell (runs it locally if needed).

        Benchmarks that inspect simulator internals (e.g. the communication
        matrices of Fig. 7) need the in-process object, which a disk-cached
        result cannot provide — so this always executes locally.
        """
        key = (bench, policy, rep)
        if key not in self._sims:
            seed = derive_seed(BASE_SEED, "rep", rep, Policy.parse(policy).value)
            sim = Simulator(
                make_npb(bench), policy, seed=seed, config=engine_config()
            )
            self._results[key] = sim.run()
            self._sims[key] = sim
        return self._sims[key]

    def ensure_grid(self) -> None:
        """Prefetch the full BENCH_SET x POLICIES x BENCH_REPS grid.

        Uses :func:`repro.engine.gridrunner.run_grid`, so uncached cells run
        on the ``REPRO_GRID_WORKERS`` process pool.
        """
        if self._prefetched:
            return
        grid = run_grid(
            BENCH_SET,
            POLICIES,
            BENCH_REPS,
            base_seed=BASE_SEED,
            config=engine_config(),
            cache=self._cache,
            keep_runs=True,
        )
        for (bench, policy), cell in grid.cells.items():
            for rep, result in enumerate(cell.runs):
                self._results.setdefault((bench, policy, rep), result)
        self.cache_hits += grid.cache_hits
        self.cache_misses += grid.cache_misses
        self._prefetched = True

    def replicated(self, bench: str, policy: str) -> list[SimulationResult]:
        """All repetitions of one cell."""
        return [self.run(bench, policy, rep) for rep in range(BENCH_REPS)]

    def metric_stats(self, bench: str, policy: str, metric: str) -> MetricStats:
        """Mean + 95% CI of one metric over the repetitions."""
        return summarize([r.metric(metric) for r in self.replicated(bench, policy)])

    def normalized_series(self, metric: str) -> dict[str, dict[str, float]]:
        """{bench: {policy: mean metric normalised to the OS baseline}}."""
        self.ensure_grid()
        out: dict[str, dict[str, float]] = {}
        for bench in BENCH_SET:
            base = self.metric_stats(bench, "os", metric).mean
            out[bench] = {
                policy: (self.metric_stats(bench, policy, metric).mean / base
                         if base else float("nan"))
                for policy in POLICIES
            }
        return out


@pytest.fixture(scope="session")
def suite() -> SuiteCache:
    """The shared suite cache."""
    return SuiteCache()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where figure text/PGM outputs are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")
