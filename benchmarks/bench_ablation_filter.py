"""E15 — ablation: the communication filter (Sec. IV-A).

Compares SPCD with the filter enabled (default) and disabled (the mapping
algorithm runs on every evaluation).  The filter exists to cut the number
of times the mapping algorithm is called; disabling it multiplies mapper
invocations without improving the final placement.
"""

from conftest import emit, engine_config

from repro.analysis.report import format_table
from repro.core.manager import SpcdConfig
from repro.engine.simulator import Simulator
from repro.workloads.npb import make_npb


def run_one(bench: str, filter_enabled: bool):
    sim = Simulator(
        make_npb(bench), "spcd", seed=9,
        config=engine_config(steps=200),
        spcd_config=SpcdConfig(filter_enabled=filter_enabled),
    )
    res = sim.run()
    return sim, res


def test_ablation_communication_filter(benchmark, results_dir):
    def sweep():
        rows = []
        for bench in ("SP", "FT"):
            for enabled in (True, False):
                sim, res = run_one(bench, enabled)
                rows.append(
                    [
                        bench,
                        "on" if enabled else "off",
                        sim.manager.overheads.mapper_calls,
                        res.migrations,
                        f"{res.exec_time_s:.3f}",
                        f"{res.mapping_pct:.2f}%",
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_filter.txt",
        format_table(
            ["bench", "filter", "mapper calls", "migrations", "time (s)", "mapping ovh"],
            rows,
            title="Ablation — communication filter",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for bench in ("SP", "FT"):
        calls_on = by_key[(bench, "on")][2]
        calls_off = by_key[(bench, "off")][2]
        assert calls_off > calls_on, bench
