"""E2 — Fig. 6: producer/consumer communication matrices.

Runs the two-phase producer/consumer benchmark under SPCD and extracts the
four matrices of the paper's Fig. 6: phase 1, phase 2, a transition
interval, and the overall pattern.  Writes ASCII + PGM heatmaps and checks
the headline claim — SPCD detects the dynamic behaviour, while the overall
(static) view blurs both phases together.
"""

import numpy as np
from conftest import emit, engine_config

from repro.analysis.heatmap import heatmap_ascii, heatmap_pgm
from repro.engine.simulator import Simulator
from repro.units import MSEC
from repro.workloads.patterns import distant_pairs_pattern, neighbor_pairs_pattern
from repro.workloads.producer_consumer import ProducerConsumerWorkload

PHASE_NS = 400 * MSEC


def run_experiment():
    workload = ProducerConsumerWorkload(phase_period_ns=PHASE_NS)
    sim = Simulator(workload, "spcd", seed=5, config=engine_config(steps=320))
    snapshots = []

    def capture(s, step, now):
        if step % 10 == 9:
            snapshots.append((now, s.manager.detector.snapshot_matrix()))

    result = sim.run(capture)

    intervals = {"phase1": None, "phase2": None, "transition": None}
    for (t0, m0), (t1, m1) in zip(snapshots, snapshots[1:]):
        diff = m1.diff(m0)
        if diff.total() < 20:
            continue
        p0, p1 = workload.phase_at(t0), workload.phase_at(t1)
        if p0 == p1 == 0 and intervals["phase1"] is None and t0 > PHASE_NS // 4:
            intervals["phase1"] = diff
        elif p0 == p1 == 1 and intervals["phase2"] is None:
            intervals["phase2"] = diff
        elif p0 != p1 and intervals["transition"] is None:
            intervals["transition"] = diff
    intervals["overall"] = snapshots[-1][1]
    return workload, result, intervals


def test_fig6_producer_consumer_matrices(benchmark, results_dir):
    workload, result, intervals = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    n = workload.n_threads
    iu = np.triu_indices(n, 1)
    neighbor = neighbor_pairs_pattern(n)[iu]
    distant = distant_pairs_pattern(n)[iu]

    lines = [f"Fig. 6 — producer/consumer, {result.migrations} migrations"]
    corr = {}
    for key, label in (
        ("phase1", "a: phase 1"),
        ("phase2", "b: phase 2"),
        ("transition", "c: transition"),
        ("overall", "d: overall"),
    ):
        matrix = intervals[key]
        assert matrix is not None, f"no interval captured for {key}"
        vec = matrix.matrix[iu]
        c_nb = float(np.corrcoef(vec, neighbor)[0, 1])
        c_ds = float(np.corrcoef(vec, distant)[0, 1])
        corr[key] = (c_nb, c_ds)
        heatmap_pgm(matrix, results_dir / f"fig6{label[0]}_{key}.pgm")
        lines.append(f"\n{heatmap_ascii(matrix, title=f'Fig. 6{label}')}")
        lines.append(f"corr(neighbour)={c_nb:+.2f} corr(distant)={c_ds:+.2f}")
    emit(results_dir, "fig6_prodcons.txt", "\n".join(lines))

    # Shape checks (the paper's qualitative claims):
    assert corr["phase1"][0] > corr["phase1"][1]  # 6a: neighbour pattern
    assert corr["phase2"][1] > corr["phase2"][0]  # 6b: distant pattern
    # 6d: the overall view contains traces of both phases.
    assert corr["overall"][0] > 0.15 and corr["overall"][1] > 0.15
