"""E8 — Fig. 12: total processor energy normalised to the OS scheduler."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig12_processor_energy(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("proc_energy_j"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig12_proc_energy.txt",
        format_figure_table(series, title="Fig. 12 — total processor energy (normalised to OS)"),
    )
    # Processor energy is dominated by static power x time, so it tracks
    # Fig. 8: oracle saves energy on the chains, nothing on homogeneous apps.
    time_series = suite.normalized_series("exec_time_s")
    for bench, per_policy in series.items():
        assert abs(per_policy["oracle"] - time_series[bench]["oracle"]) < 0.1
    for bench in ("BT", "LU", "SP", "UA"):
        if bench in series:
            assert series[bench]["oracle"] < 0.99, bench
