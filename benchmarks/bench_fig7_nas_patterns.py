"""E3 — Fig. 7: communication matrices of the NAS benchmarks.

Takes the detected matrix of each benchmark's SPCD run from the shared
suite, renders the heatmaps (the paper's Fig. 7), classifies each pattern as
heterogeneous or homogeneous, and verifies the classification matches the
paper's (Table II row 1).
"""

from conftest import BENCH_SET, emit

from repro.analysis.heatmap import heatmap_ascii, heatmap_pgm
from repro.analysis.report import format_table
from repro.workloads.npb import NPB_SPECS

#: heterogeneity threshold separating the two classes (CV of the cells)
HETERO_CV = 1.0


def test_fig7_nas_communication_patterns(benchmark, suite, results_dir):
    def collect():
        rows = []
        for bench in BENCH_SET:
            sim = suite.simulator(bench, "spcd", 0)
            res = suite.run(bench, "spcd", 0)
            det = res.detected_matrix
            corr = det.correlation(sim.workload.ground_truth())
            cv = det.heterogeneity()
            detected_class = "heterogeneous" if cv > HETERO_CV else "homogeneous"
            rows.append((bench, det, corr, cv, detected_class))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = ["Fig. 7 — NAS communication matrices (SPCD-detected)"]
    table_rows = []
    for bench, det, corr, cv, detected_class in rows:
        heatmap_pgm(det, results_dir / f"fig7_{bench}.pgm")
        lines.append("")
        lines.append(heatmap_ascii(det, title=f"{bench} (corr vs truth: {corr:.2f})"))
        table_rows.append(
            [bench, f"{corr:.3f}", f"{cv:.2f}", detected_class,
             NPB_SPECS[bench].classification]
        )
    lines.append("")
    lines.append(
        format_table(
            ["bench", "corr vs truth", "heterogeneity", "detected class", "paper class"],
            table_rows,
            title="Pattern classification",
        )
    )
    emit(results_dir, "fig7_nas_patterns.txt", "\n".join(lines))

    # Shape checks: detected classes match the paper for the clear-cut cases.
    by_bench = {r[0]: r for r in rows}
    for bench in ("BT", "LU", "SP", "UA", "MG"):
        if bench in by_bench:
            assert by_bench[bench][4] == "heterogeneous", bench
            assert by_bench[bench][2] > 0.8  # chains detected accurately
    for bench in ("FT", "IS", "EP"):
        if bench in by_bench:
            assert by_bench[bench][4] == "homogeneous", bench
