"""E14 — ablation: extra-fault rate and granularity vs. accuracy/overhead.

Sec. III-C3: "The accuracy of the detected communication pattern is
determined by two factors, the rate at which additional page faults are
created and the granularity".  This sweep quantifies both on SP, plus the
paper-literal CUMULATIVE 10% controller and the uniform-sampling variant.
"""

from conftest import emit, engine_config

from repro.analysis.report import format_table
from repro.core.injector import InjectorMode
from repro.core.manager import SpcdConfig
from repro.engine.simulator import Simulator
from repro.units import KIB
from repro.workloads.npb import make_npb


def run_one(spcd_config: SpcdConfig):
    sim = Simulator(
        make_npb("SP"), "spcd", seed=9,
        config=engine_config(steps=150), spcd_config=spcd_config,
    )
    res = sim.run()
    corr = res.detected_matrix.correlation(sim.workload.ground_truth())
    return corr, res.detection_pct, res.injected_faults


def test_ablation_injection_rate(benchmark, results_dir):
    def sweep():
        rows = []
        for floor in (32, 128, 256, 512):
            corr, ovh, injected = run_one(SpcdConfig(injector_floor=floor))
            rows.append([f"steady/{floor}", f"{corr:.3f}", f"{ovh:.2f}%", injected])
        corr, ovh, injected = run_one(
            SpcdConfig(injector_mode=InjectorMode.CUMULATIVE)
        )
        rows.append(["cumulative 10% (paper)", f"{corr:.3f}", f"{ovh:.2f}%", injected])
        corr, ovh, injected = run_one(SpcdConfig(injector_sampling="uniform"))
        rows.append(["uniform sampling", f"{corr:.3f}", f"{ovh:.2f}%", injected])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_rate.txt",
        format_table(
            ["injector", "pattern corr", "detect ovh", "injected faults"],
            rows,
            title="Ablation — additional page-fault rate (SP)",
        ),
    )
    # More injection -> more accuracy and more overhead (monotone trend on
    # the steady rows).
    corrs = [float(r[1]) for r in rows[:4]]
    ovhs = [float(r[2][:-1]) for r in rows[:4]]
    assert corrs[-1] >= corrs[0]
    assert ovhs[-1] >= ovhs[0]


def test_ablation_granularity(benchmark, results_dir):
    def sweep():
        rows = []
        for gran in (1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB):
            corr, ovh, _ = run_one(SpcdConfig(granularity=gran))
            rows.append([f"{gran // KIB} KiB", f"{corr:.3f}", f"{ovh:.2f}%"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_granularity.txt",
        format_table(
            ["granularity", "pattern corr", "detect ovh"],
            rows,
            title="Ablation — detection granularity (SP)",
        ),
    )
    # The 4 KiB page granularity the paper chose detects the chain well.
    assert float(rows[1][1]) > 0.8
