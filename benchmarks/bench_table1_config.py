"""E1 — Table I: configuration of the simulated machine and SPCD.

Regenerates the paper's Table I from the actual model objects, so the table
always reflects what the simulator runs.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.manager import SpcdConfig
from repro.machine import dual_xeon_e5_2650
from repro.units import KIB, MIB


def build_table() -> str:
    machine = dual_xeon_e5_2650()
    spcd = SpcdConfig()
    rows = [
        ["Processor model", machine.name + f", {machine.frequency_ghz} GHz"],
        ["Cores per processor", f"{machine.cores_per_socket}, {machine.smt_per_core}-way SMT"],
        ["Total hardware threads", machine.n_pus],
        ["L1 cache per core", f"{machine.l1_params.size // KIB} KiB data"],
        ["L2 cache per core", f"{machine.l2_params.size // KIB} KiB"],
        ["L3 cache per processor", f"{machine.l3_params.size // MIB} MiB"],
        ["Total memory", f"{machine.n_numa_nodes * machine.memory_per_node // (1024 ** 3)} GiB"],
        ["NUMA nodes", machine.n_numa_nodes],
        ["Page size", "4 KiB"],
        ["SPCD granularity", f"{spcd.granularity // KIB} KiB"],
        ["SPCD injector period", f"{spcd.injector_period_ns / 1e6:.0f} ms"],
        ["SPCD target extra-fault ratio", f"{spcd.injector_ratio:.0%}"],
        ["SPCD hash table size", f"{spcd.table_size:,} elements"],
    ]
    return format_table(["parameter", "value"], rows, title="Table I — configuration")


def test_table1_configuration(benchmark, results_dir):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit(results_dir, "table1_config.txt", table)
    assert "256,000" in table
    assert "32" in table
