"""E4 — Fig. 8: execution time normalised to the OS scheduler.

Reproduces the paper's headline figure: per benchmark, one bar per mapping
policy (OS / random / oracle / SPCD), normalised to the OS baseline, with
95% confidence intervals over the repetitions.
"""

from conftest import BENCH_SET, POLICIES, emit

from repro.analysis.report import format_figure_table, format_table


def test_fig8_execution_time(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("exec_time_s"), rounds=1, iterations=1
    )
    text = format_figure_table(series, title="Fig. 8 — execution time (normalised to OS)")
    ci_rows = [
        [b] + [
            f"{suite.metric_stats(b, p, 'exec_time_s').mean:.3f}"
            f"±{suite.metric_stats(b, p, 'exec_time_s').ci95:.3f}"
            for p in POLICIES
        ]
        for b in BENCH_SET
    ]
    text += "\n\n" + format_table(
        ["bench"] + [p.upper() for p in POLICIES], ci_rows,
        title="absolute seconds (mean ± 95% CI)",
    )
    emit(results_dir, "fig8_exec_time.txt", text)

    # Shape checks against the paper:
    # the oracle improves every heterogeneous chain benchmark...
    for bench in ("BT", "LU", "SP", "UA"):
        if bench in series:
            assert series[bench]["oracle"] < 0.98, bench
    # ...and does nothing for the homogeneous ones.
    for bench in ("EP", "FT", "IS"):
        if bench in series:
            assert abs(series[bench]["oracle"] - 1.0) < 0.05, bench
    # SP shows the largest oracle gain (it communicates the most).
    if {"SP", "MG"} <= set(series):
        assert series["SP"]["oracle"] < series["MG"]["oracle"]
    # SPCD tracks the oracle's direction: best on SP, no gain on EP/FT/IS.
    if "SP" in series:
        assert series["SP"]["spcd"] < 1.02
    for bench in ("EP", "FT", "IS"):
        if bench in series:
            assert 0.97 < series[bench]["spcd"] < 1.10, bench
