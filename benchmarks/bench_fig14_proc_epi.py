"""E10 — Fig. 14: processor energy per instruction normalised to the OS."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig14_processor_energy_per_instruction(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("proc_epi_nj"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig14_proc_epi.txt",
        format_figure_table(
            series, title="Fig. 14 — processor energy per instruction (normalised to OS)"
        ),
    )
    # Energy per instruction improves beyond pure time scaling for the
    # chains (the paper's "more efficient execution" claim): normalised EPI
    # correlates with normalised energy since instruction counts are fixed.
    energy = suite.normalized_series("proc_energy_j")
    for bench, per_policy in series.items():
        for policy in per_policy:
            assert abs(per_policy[policy] - energy[bench][policy]) < 0.02
