"""E13 — Table II: absolute results of the SPCD mechanism.

For every benchmark: classification, execution time, L2/L3 MPKI,
cache-to-cache transactions, energies, number of migrations and the
detection/mapping overheads — with the relative difference to the OS
baseline in parentheses, exactly the paper's layout.
"""

from conftest import BENCH_SET, emit

from repro.analysis.report import format_table
from repro.workloads.npb import NPB_SPECS

METRICS = (
    ("exec_time_s", "Execution time (s)", "{:.3f}"),
    ("l2_mpki", "L2 cache MPKI", "{:.2f}"),
    ("l3_mpki", "L3 cache MPKI", "{:.2f}"),
    ("c2c_transactions", "Cache-to-cache transactions", "{:.0f}"),
    ("proc_energy_j", "Total processor energy (J)", "{:.2f}"),
    ("dram_energy_j", "Total DRAM energy (J)", "{:.3f}"),
    ("proc_epi_nj", "Proc. energy per inst. (nJ)", "{:.3f}"),
    ("dram_epi_nj", "DRAM energy per inst. (nJ)", "{:.4f}"),
)


def test_table2_absolute_results(benchmark, suite, results_dir):
    def collect():
        header = ["parameter"] + list(BENCH_SET)
        rows = [["Communication pattern"] + [
            NPB_SPECS[b].classification[:6] for b in BENCH_SET
        ]]
        for metric, label, fmt in METRICS:
            row = [label]
            for bench in BENCH_SET:
                spcd = suite.metric_stats(bench, "spcd", metric).mean
                base = suite.metric_stats(bench, "os", metric).mean
                delta = 100.0 * (spcd / base - 1.0) if base else 0.0
                row.append(f"{fmt.format(spcd)} ({delta:+.1f}%)")
            rows.append(row)
        rows.append(
            ["Number of migrations"]
            + [f"{suite.metric_stats(b, 'spcd', 'migrations').mean:.0f}" for b in BENCH_SET]
        )
        rows.append(
            ["Detection overhead"]
            + [f"{suite.metric_stats(b, 'spcd', 'detection_pct').mean:.2f}%" for b in BENCH_SET]
        )
        rows.append(
            ["Mapping overhead"]
            + [f"{suite.metric_stats(b, 'spcd', 'mapping_pct').mean:.2f}%" for b in BENCH_SET]
        )
        return header, rows

    header, rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        results_dir,
        "table2_absolute.txt",
        format_table(header, rows, title="Table II — absolute SPCD results"),
    )
    # Migrations stay in the paper's range (0..6 per benchmark).
    migration_row = rows[-3]
    for value in migration_row[1:]:
        assert 0 <= float(value) <= 6
