"""E17 — extension: SPCD-driven data mapping (paper Sec. IV, future work).

The paper notes its mechanisms "can be used to perform data mapping as
well".  This bench runs SP with parallel first-touch (where thread
migration strands memory on the wrong NUMA node) and compares thread-only
SPCD against thread+data SPCD: the data mapper should re-home stranded
pages and cut remote DRAM reads.
"""

from conftest import emit, engine_config

from repro.analysis.report import format_table
from repro.core.manager import SpcdConfig
from repro.engine.simulator import Simulator
from repro.units import MSEC
from repro.workloads.npb import make_npb


def run_one(data_mapping: bool, seed: int):
    cfg = engine_config(steps=250, pretouch="parallel")
    scfg = SpcdConfig(data_mapping=data_mapping, data_scan_period_ns=50 * MSEC)
    sim = Simulator(make_npb("SP"), "spcd", seed=seed, config=cfg, spcd_config=scfg)
    res = sim.run()
    moved = sim.manager.data_mapper.stats.pages_migrated if data_mapping else 0
    return res, moved


def test_ablation_data_mapping(benchmark, results_dir):
    def sweep():
        rows = []
        for data_mapping in (False, True):
            remote = local = time = moved_total = 0
            reps = 2
            for seed in (21, 22):
                res, moved = run_one(data_mapping, seed)
                remote += res.stats.dram_reads_remote / reps
                local += res.stats.dram_reads_local / reps
                time += res.exec_time_s / reps
                moved_total += moved / reps
            share = remote / (remote + local) if remote + local else 0.0
            rows.append(
                [
                    "thread+data" if data_mapping else "thread only",
                    f"{time:.3f}",
                    int(remote),
                    f"{share:.1%}",
                    int(moved_total),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_datamap.txt",
        format_table(
            ["SPCD mode", "time (s)", "remote DRAM reads", "remote share", "pages migrated"],
            rows,
            title="Extension — SPCD data mapping (SP, parallel first-touch)",
        ),
    )
    thread_only, thread_data = rows
    assert thread_data[4] > 0  # pages did migrate
    assert thread_data[2] <= thread_only[2] * 1.05  # remote reads not worse
