"""E9 — Fig. 13: total DRAM energy normalised to the OS scheduler."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig13_dram_energy(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("dram_energy_j"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig13_dram_energy.txt",
        format_figure_table(series, title="Fig. 13 — total DRAM energy (normalised to OS)"),
    )
    # DRAM energy couples background power (time) with miss traffic; chain
    # benchmarks save energy under the oracle mapping, as in the paper.
    for bench in ("BT", "LU", "SP", "UA"):
        if bench in series:
            assert series[bench]["oracle"] < 1.0, bench
    for bench in ("EP", "FT", "IS"):
        if bench in series:
            assert abs(series[bench]["oracle"] - 1.0) < 0.08, bench
