"""E7 — Fig. 11: cache-to-cache transactions normalised to the OS scheduler.

The paper's strongest effect: communication-aware mapping removes up to 76%
of cache-to-cache transactions for SP, while homogeneous benchmarks are
unaffected (EP/FT even increase slightly from residual migrations).
"""

from conftest import BENCH_SET, emit

from repro.analysis.report import format_figure_table, format_table


def test_fig11_cache_to_cache(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("c2c_transactions"), rounds=1, iterations=1
    )
    text = format_figure_table(
        series, title="Fig. 11 — cache-to-cache transactions (normalised to OS)"
    )
    abs_rows = [
        [b, int(suite.metric_stats(b, "os", "c2c_transactions").mean),
         int(suite.metric_stats(b, "spcd", "c2c_transactions").mean)]
        for b in BENCH_SET
    ]
    text += "\n\n" + format_table(
        ["bench", "OS (abs)", "SPCD (abs)"], abs_rows, title="absolute transaction counts"
    )
    emit(results_dir, "fig11_c2c.txt", text)

    # Shape: oracle cuts c2c hard for every chain benchmark — and harder
    # than it cuts execution time (the paper's Fig. 8 vs Fig. 11 contrast).
    for bench in ("BT", "LU", "SP", "UA"):
        if bench in series:
            assert series[bench]["oracle"] < 0.6, bench
            time_series = suite.normalized_series("exec_time_s")
            assert series[bench]["oracle"] < time_series[bench]["oracle"]
    # Homogeneous benchmarks see no oracle reduction.
    for bench in ("EP", "FT", "IS"):
        if bench in series:
            assert series[bench]["oracle"] > 0.9, bench
