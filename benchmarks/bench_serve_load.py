"""The full mapping-service load benchmark, runnable under pytest.

The acceptance sweep (1/4/8 tenants x 100k events per thread) takes
minutes; it is marked ``slow`` so routine benchmark sessions can skip it
with ``-m "not slow"`` while CI's scheduled runs (or an explicit
``pytest benchmarks -m slow``) still exercise the whole thing.  The
driver itself lives in :mod:`serve_loadbench` (standalone, no pytest
imports) and every tenant is verified bit-identical against an offline
replay before any throughput is reported.
"""

from __future__ import annotations

import json

import pytest

from conftest import emit
from serve_loadbench import run_bench


@pytest.mark.slow
def test_full_loadbench(results_dir):
    payload = run_bench()
    emit(results_dir, "BENCH_serve.json", json.dumps(payload, indent=1))
    acceptance = payload["rows"][-1]
    assert acceptance["tenants"] == 8
    assert acceptance["parity"] == "bit-identical"
    # the routed sweep pins workers {1,2,4} bit-identical to that row;
    # run_routed_sweep already asserted the host-gated >= 3x speedup
    assert [r["workers"] for r in payload["routed_rows"]] == [1, 2, 4]
    assert all(
        r["digest_parity_vs_single_process"] for r in payload["routed_rows"]
    )
    assert payload["trajectory_1m_events_per_s"]["status"] in (
        "measured",
        "projected",
    )
