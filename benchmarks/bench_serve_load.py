"""The full mapping-service load benchmark, runnable under pytest.

The acceptance sweep (1/4/8 tenants x 100k events per thread) takes
minutes; it is marked ``slow`` so routine benchmark sessions can skip it
with ``-m "not slow"`` while CI's scheduled runs (or an explicit
``pytest benchmarks -m slow``) still exercise the whole thing.  The
driver itself lives in :mod:`serve_loadbench` (standalone, no pytest
imports) and every tenant is verified bit-identical against an offline
replay before any throughput is reported.
"""

from __future__ import annotations

import json

import pytest

from conftest import emit
from serve_loadbench import run_bench


@pytest.mark.slow
def test_full_loadbench(results_dir):
    payload = run_bench()
    emit(results_dir, "BENCH_serve.json", json.dumps(payload, indent=1))
    acceptance = payload["rows"][-1]
    assert acceptance["tenants"] == 8
    assert acceptance["parity"] == "bit-identical"
