"""Mapping-engine comparison: Edmonds matching vs scalable hierarchical.

Two questions, two sections:

* **Quality** — on every paper-scale matrix (the Fig. 7 suite: all ten
  NPB ground-truth matrices at n = 32, plus the synthetic pair/chain/
  uniform patterns) the recursive-bisection mapper must place within 10%
  of the Edmonds engine's communication cost.
* **Scale** — decision latency on power-law communication matrices at
  n ∈ {128, 256, 512, 1024} threads (machines sized to match).  The
  Edmonds engine is O(n^3) per grouping level and is timed up to n = 512;
  the hierarchical engine consumes a :class:`SparseCommMatrix` through its
  ``row_items`` accessor and must decide the 1024-thread case in under
  0.5 s wall.

Emits ``BENCH_mapping.json``.  Standalone on purpose: no pytest/conftest
imports, so CI can run ``python benchmarks/bench_fig_mapping_scale.py
--smoke`` directly.  Only needs ``src`` on ``sys.path``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # pragma: no cover - CLI convenience
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.core.mapping import HierarchicalMapper, mapping_comm_cost
from repro.graphs.graph import partition_comm_matrix, partition_rows, powerlaw_graph
from repro.graphs.hiermap import ScalableHierarchicalMapper
from repro.graphs.sparse import SparseCommMatrix
from repro.machine.topology import build_machine, dual_xeon_e5_2650
from repro.workloads.npb import NPB_SPECS, make_npb
from repro.workloads.patterns import (
    chain_pattern,
    distant_pairs_pattern,
    neighbor_pairs_pattern,
    uniform_pattern,
)

QUALITY_GATE = 1.10  # hier cost <= 1.10 x Edmonds cost on every matrix
LATENCY_GATE_S = 0.5  # hier decision wall at n = 1024
EDMONDS_MAX_N = 512  # O(n^3): timing it at 1024 serves nobody

#: n_threads -> (sockets, cores/socket, smt) with exactly n PUs
SCALE_MACHINES = {
    128: (2, 32, 2),
    256: (2, 64, 2),
    512: (4, 64, 2),
    1024: (4, 128, 2),
}

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_mapping.json"


def _quality_matrices() -> "dict[str, np.ndarray]":
    out = {name: make_npb(name, 32).ground_truth().matrix for name in sorted(NPB_SPECS)}
    out["neighbor_pairs"] = neighbor_pairs_pattern(32, 100)
    out["distant_pairs"] = distant_pairs_pattern(32, 100)
    out["chain"] = chain_pattern(32)
    out["uniform"] = uniform_pattern(32, 10)
    return out


def _powerlaw_comm(n: int) -> SparseCommMatrix:
    """An irregular thread-level matrix: power-law graph, block-partitioned."""
    graph = powerlaw_graph(16 * n, 8.0, seed=n)
    dense = partition_comm_matrix(graph, partition_rows(16 * n, n), n)
    return SparseCommMatrix(n, dense)


def run_quality() -> dict:
    """Comm-cost ratio hier/Edmonds on every paper-scale matrix."""
    machine = dual_xeon_e5_2650()
    rows: dict[str, dict[str, float]] = {}
    for name, comm in _quality_matrices().items():
        cost_e = mapping_comm_cost(comm, HierarchicalMapper(machine).map(comm), machine)
        cost_h = mapping_comm_cost(
            comm, ScalableHierarchicalMapper(machine).map(comm), machine
        )
        rows[name] = {
            "edmonds_cost": cost_e,
            "hier_cost": cost_h,
            "ratio": cost_h / cost_e if cost_e else 1.0,
        }
    return rows


def run_scale(sizes: "tuple[int, ...]", reps: int) -> dict:
    """Decision latency per engine at each thread count (best of *reps*)."""
    rows: dict[str, dict[str, float]] = {}
    for n in sizes:
        sockets, cores, smt = SCALE_MACHINES[n]
        machine = build_machine(sockets, cores, smt, name=f"scale{n}")
        comm = _powerlaw_comm(n)
        hier_s = min(
            _time_once(ScalableHierarchicalMapper(machine), comm) for _ in range(reps)
        )
        row = {
            "hier_ms": hier_s * 1e3,
            "density": comm.density(),
            "nnz": float(comm.nnz()),
        }
        if n <= EDMONDS_MAX_N:
            row["edmonds_ms"] = (
                min(_time_once(HierarchicalMapper(machine), comm) for _ in range(reps))
                * 1e3
            )
        rows[str(n)] = row
    return rows


def _time_once(mapper, comm) -> float:
    t0 = perf_counter()
    mapper.map(comm)
    return perf_counter() - t0


def _format(payload: dict) -> str:
    lines = ["mapping quality at n=32 — comm cost, hier vs Edmonds"]
    lines.append(f"{'matrix':<16}{'edmonds':>12}{'hier':>12}{'ratio':>8}")
    for name, row in payload["quality"].items():
        lines.append(
            f"{name:<16}{row['edmonds_cost']:>12.1f}{row['hier_cost']:>12.1f}"
            f"{row['ratio']:>8.3f}"
        )
    lines.append(f"worst ratio: {payload['worst_ratio']:.3f} (gate {QUALITY_GATE})")
    lines.append("")
    lines.append("decision latency — power-law matrices (best of reps)")
    lines.append(f"{'n':>6}{'density':>10}{'edmonds ms':>12}{'hier ms':>10}")
    for n, row in payload["scale"].items():
        edmonds = f"{row['edmonds_ms']:.1f}" if "edmonds_ms" in row else "-"
        lines.append(
            f"{n:>6}{row['density']:>10.3f}{edmonds:>12}{row['hier_ms']:>10.1f}"
        )
    return "\n".join(lines)


def run_mapping_bench(*, sizes: "tuple[int, ...]", reps: int) -> dict:
    t0 = perf_counter()
    quality = run_quality()
    scale = run_scale(sizes, reps)
    return {
        "quality_gate": QUALITY_GATE,
        "latency_gate_s": LATENCY_GATE_S,
        "quality": quality,
        "scale": scale,
        "worst_ratio": max(r["ratio"] for r in quality.values()),
        "wall_s": perf_counter() - t0,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration: quality suite + latency at n <= 256; "
        "quality gate enforced, no result file, no latency gate",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_mapping_bench(sizes=(128, 256), reps=1)
        print(_format(payload))
        if payload["worst_ratio"] > QUALITY_GATE:
            print(f"FAIL: worst quality ratio {payload['worst_ratio']:.3f}")
            return 1
        print(f"smoke OK in {payload['wall_s']:.1f}s")
        return 0

    payload = run_mapping_bench(sizes=(128, 256, 512, 1024), reps=3)
    print(_format(payload))
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    failed = False
    if payload["worst_ratio"] > QUALITY_GATE:
        print(f"FAIL: worst quality ratio {payload['worst_ratio']:.3f}")
        failed = True
    hier_1024_s = payload["scale"]["1024"]["hier_ms"] / 1e3
    if hier_1024_s > LATENCY_GATE_S:
        print(f"FAIL: 1024-thread decision took {hier_1024_s:.3f}s")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
