"""Placement-engine comparison: thread-only vs data-only vs combined vs
combined+replication (the Phoenix/Mitosis extension of Fig. 8).

Runs each workload under serial first-touch — NPB-OMP initialises its
arrays from the serial master region, so every page lands on the
master's NUMA node and half the machine starts with a fully remote
working set — with NUMA-aware page-table-walk charging enabled, and
compares the placement policies end to end:

* ``os``               — the Linux baseline (no explicit placement);
* ``spcd``             — the paper's thread mapping, bit-for-bit;
* ``spcd-data``        — page migration only, shared pages vetoed;
* ``spcd-combined``    — one decision co-placing threads *and* pages,
  shared pages handed to the thread mapper instead of vetoed;
* ``spcd-replicated``  — combined plus Mitosis-style per-node page-table
  replicas (local walks, paid for with coherence broadcasts).

The acceptance gate is the Phoenix claim: for at least one workload the
combined policy must beat *both* single-mechanism policies on execution
time.  Emits ``BENCH_placement.json``.

Standalone on purpose: no pytest/conftest imports, so CI can run
``python benchmarks/bench_fig_placement.py --smoke`` directly and the
tier-1 smoke tests can import the driver.  Only needs ``src`` on
``sys.path``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from functools import partial
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # pragma: no cover - CLI convenience
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.engine.runner import run_replicated
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig
from repro.workloads.npb import make_npb

POLICIES = ("os", "spcd", "spcd-data", "spcd-combined", "spcd-replicated")
WORKLOADS = ("SP", "CG")
BASE_SEED = 42
FULL_STEPS = int(os.environ.get("REPRO_BENCH_PLACEMENT_STEPS", "500"))
SMOKE_STEPS = 40

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_placement.json"


def run_placement_bench(*, steps: int, reps: int) -> dict:
    """The full policy × workload sweep; returns the JSON payload."""
    config = EngineConfig(batch_size=256, steps=steps, pretouch="serial")
    settings = RunSettings(placement_walk=True)
    cells: dict[str, dict[str, dict[str, float]]] = {}
    t0 = perf_counter()
    for workload in WORKLOADS:
        cells[workload] = {}
        for policy in POLICIES:
            cell = run_replicated(
                partial(make_npb, workload),
                policy,
                reps=reps,
                base_seed=BASE_SEED,
                config=config,
                settings=settings,
            )
            cells[workload][policy] = {
                "exec_time_s": cell.mean("exec_time_s"),
                "l3_mpki": cell.mean("l3_mpki"),
                "c2c_transactions": cell.mean("c2c_transactions"),
                "migrations": cell.mean("migrations"),
                "mapping_pct": cell.mean("mapping_pct"),
            }
    combined_wins = [
        w
        for w in WORKLOADS
        if cells[w]["spcd-combined"]["exec_time_s"]
        < cells[w]["spcd"]["exec_time_s"]
        and cells[w]["spcd-combined"]["exec_time_s"]
        < cells[w]["spcd-data"]["exec_time_s"]
    ]
    return {
        "steps": steps,
        "reps": reps,
        "base_seed": BASE_SEED,
        "placement_walk": True,
        "pretouch": "serial",
        "policies": list(POLICIES),
        "workloads": list(WORKLOADS),
        "cells": cells,
        "combined_wins": combined_wins,
        "wall_s": perf_counter() - t0,
    }


def _format(payload: dict) -> str:
    lines = ["placement policies — mean exec time (s), normalised to os"]
    header = f"{'workload':<10}" + "".join(f"{p:>18}" for p in payload["policies"])
    lines += ["-" * len(header), header]
    for workload in payload["workloads"]:
        row = payload["cells"][workload]
        base = row["os"]["exec_time_s"]
        lines.append(
            f"{workload:<10}"
            + "".join(
                f"{row[p]['exec_time_s']:>10.4f} ({row[p]['exec_time_s'] / base:>4.2f})"
                for p in payload["policies"]
            )
        )
    lines.append(f"combined beats both single mechanisms on: {payload['combined_wins']}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration: prove every policy runs end to end; "
        "no result file, no performance assertion",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_placement_bench(steps=SMOKE_STEPS, reps=1)
        print(_format(payload))
        print(f"smoke OK in {payload['wall_s']:.1f}s")
        return 0

    payload = run_placement_bench(steps=FULL_STEPS, reps=2)
    print(_format(payload))
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    if not payload["combined_wins"]:
        print("FAIL: combined beat both single mechanisms on no workload")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
