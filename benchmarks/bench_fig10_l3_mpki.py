"""E6 — Fig. 10: L3 cache MPKI normalised to the OS scheduler."""

from conftest import emit

from repro.analysis.report import format_figure_table


def test_fig10_l3_mpki(benchmark, suite, results_dir):
    series = benchmark.pedantic(
        lambda: suite.normalized_series("l3_mpki"), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig10_l3_mpki.txt",
        format_figure_table(series, title="Fig. 10 — L3 MPKI (normalised to OS)"),
    )
    # Paper: L3 misses fall sharply for the communication-heavy chains when
    # mapped by the oracle (SP: -63%), and barely move for homogeneous apps.
    if "SP" in series:
        assert series["SP"]["oracle"] < 0.97
    for bench in ("EP", "FT", "IS"):
        if bench in series:
            assert abs(series[bench]["oracle"] - 1.0) < 0.06, bench
