"""E12 — Fig. 16: overhead of SPCD and the mapping mechanism.

Per benchmark: the virtual time spent in detection (fault hook + injection
walks) and in mapping (matrix analysis, matching, migrations), as a
percentage of total execution time — the paper reports <1.5% and <0.5%.
"""

from conftest import BENCH_SET, emit

from repro.analysis.report import format_table


def test_fig16_spcd_overhead(benchmark, suite, results_dir):
    def collect():
        rows = []
        for bench in BENCH_SET:
            det = suite.metric_stats(bench, "spcd", "detection_pct").mean
            mapping = suite.metric_stats(bench, "spcd", "mapping_pct").mean
            rows.append([bench, f"{det:.2f}%", f"{mapping:.2f}%", f"{det + mapping:.2f}%"])
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        results_dir,
        "fig16_overhead.txt",
        format_table(
            ["bench", "detection", "mapping", "total"],
            rows,
            title="Fig. 16 — SPCD overhead (% of execution time)",
        ),
    )
    # Paper Sec. V-F: detection < 1.5%, mapping < 0.5%, total < 2%.
    for bench, det, mapping, total in rows:
        assert float(det[:-1]) < 2.0, (bench, det)
        assert float(mapping[:-1]) < 1.0, (bench, mapping)
        assert float(total[:-1]) < 2.5, (bench, total)
