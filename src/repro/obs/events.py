"""Typed trace events — the vocabulary of the observability subsystem.

Every decision the SPCD mechanism makes during a run maps to exactly one
event type here: fault batches feeding the detector, injector wakes with
their adaptively chosen page counts, filter evaluations with their verdict,
proposed-vs-accepted mappings, migrations, TLB shootdowns, and the run's
book-ends (:class:`RunStart` / :class:`RunEnd`, which folds the
:class:`~repro.engine.perf.PerfCounters` snapshot into the stream).

Design rules that make traces *reconstructive* rather than merely
descriptive:

* events carry **virtual time** (``now_ns``) and **cumulative** overhead
  counters (``hook_time_ns``, ``inject_time_ns``, ``mapping_ns``,
  ``migration_cost_ns``) — the last value seen for each counter is exactly
  the simulator's final attribute value, so
  :mod:`repro.obs.report` reproduces the Fig. 16 detection/mapping split
  bit-for-bit instead of re-deriving it approximately;
* wall-clock (host) measurements appear **only** in :class:`RunEnd`'s
  ``perf`` field and :class:`MappingDecision`'s ``decide_wall_s``, so two
  runs with the same seed produce byte-identical streams once those fields
  are masked (pinned by ``tests/test_obs.py``).

Events serialise to plain dicts (``to_dict``) with a ``type`` tag; all
values are JSON-native (ints, floats, bools, strings, lists).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar

__all__ = [
    "CacheEpoch",
    "CellAttemptFailed",
    "CellCompleted",
    "CellFailed",
    "CellRetry",
    "FaultBatchSummary",
    "GridEnd",
    "GridStart",
    "InjectorWake",
    "MappingDecision",
    "Migration",
    "PlacementApplied",
    "RunEnd",
    "RunStart",
    "ServeEnd",
    "ServeEvaluation",
    "ServeSessionEnd",
    "ServeSessionStart",
    "ServeStart",
    "ServeTenantMigrated",
    "ServeWorkerCrash",
    "ServeWorkerStart",
    "SpcdEvaluation",
    "TlbShootdown",
    "TraceEvent",
    "event_types",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event has a ``type`` tag and serialises to a dict."""

    type: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """JSON-native dict with the ``type`` tag first."""
        d: dict[str, Any] = {"type": self.type}
        d.update(asdict(self))
        return d


@dataclass(frozen=True)
class RunStart(TraceEvent):
    """Emitted once, before the first simulation step."""

    type: ClassVar[str] = "run_start"

    workload: str
    policy: str
    seed: int
    n_threads: int
    steps: int
    batch_size: int


@dataclass(frozen=True)
class FaultBatchSummary(TraceEvent):
    """One thread batch's resolved faults (the detector's raw input).

    ``hook_time_ns`` and ``fault_time_ns`` are the pipeline's *cumulative*
    virtual-time counters after this batch.
    """

    type: ClassVar[str] = "fault_batch"

    step: int
    now_ns: int
    thread_id: int
    pu_id: int
    first_touch: int
    injected: int
    fault_time_ns: float
    hook_time_ns: float


@dataclass(frozen=True)
class InjectorWake(TraceEvent):
    """One injector wakeup and the budget controller's decision.

    ``budget`` is what the adaptive controller wanted to clear this wake;
    ``cleared`` is what it actually cleared (bounded by the candidate set).
    ``inject_time_ns`` is cumulative.
    """

    type: ClassVar[str] = "injector_wake"

    now_ns: int
    wake: int
    budget: int
    candidates: int
    cleared: int
    cleared_total: int
    inject_time_ns: float


@dataclass(frozen=True)
class TlbShootdown(TraceEvent):
    """A bulk TLB shootdown (injector IPI after clearing present bits)."""

    type: ClassVar[str] = "tlb_shootdown"

    now_ns: int
    n_vpns: int
    entries_removed: int
    shootdowns: int


@dataclass(frozen=True)
class SpcdEvaluation(TraceEvent):
    """One periodic SPCD evaluation and the communication filter's verdict.

    ``verdict`` is one of ``insufficient-evidence``, ``cooldown``,
    ``pattern-unchanged``, ``no-communication``, ``vetoed``, ``no-move``,
    ``migrated`` — plus, with the placement engine, ``static`` (non-SPCD
    policies), ``data-idle`` (data-only policy, nothing to move) and
    ``data-migrated`` (data-only policy moved pages this evaluation).
    ``partners`` is the per-thread partner vector of the
    matrix at evaluation time and ``matrix_digest`` a BLAKE2 digest of the
    matrix payload, so pattern-change decisions can be audited offline.
    """

    type: ClassVar[str] = "spcd_evaluation"

    now_ns: int
    evaluation: int
    verdict: str
    fresh_events: float
    partners: list[int]
    matrix_digest: str
    mapping_ns: float


@dataclass(frozen=True)
class MappingDecision(TraceEvent):
    """A mapper invocation: the proposed mapping against the current one.

    ``accepted`` is False when the improvement gate vetoed the migration
    (``cost_new > min_improvement * cost_now``).  ``algorithm`` names the
    engine that produced the proposal (``edmonds`` or ``hierarchical``),
    ``matrix_density`` is the nonzero fraction of the decided matrix, and
    ``decide_wall_s`` is the engine's host wall-clock — the second
    wall-clock field of a trace besides :class:`RunEnd`'s ``perf``, masked
    by the same determinism test, so decision cost at scale is observable
    per decision rather than only as a run-level aggregate.  Defaults keep
    traces from older recorders readable.
    """

    type: ClassVar[str] = "mapping_decision"

    now_ns: int
    current: list[int]
    proposed: list[int]
    cost_now: float
    cost_new: float
    accepted: bool
    algorithm: str = "edmonds"
    matrix_density: float = 0.0
    decide_wall_s: float = 0.0


@dataclass(frozen=True)
class Migration(TraceEvent):
    """An applied mapping that actually moved threads (Table II event)."""

    type: ClassVar[str] = "migration"

    now_ns: int
    n_moved: int
    mapping: list[int]
    migration_events: int
    cost_ns: float


@dataclass(frozen=True)
class PlacementApplied(TraceEvent):
    """A placement decision with data/replication effects was applied.

    Emitted by :meth:`repro.core.manager.SpcdManager.apply_decision` only
    when the decision carried more than a thread remap (page migrations,
    shared-page deferrals, or a replication directive) — thread-only runs
    therefore produce traces byte-identical to the pre-placement engine.
    ``copy_time_ns`` is the data mapper's cumulative page-copy bill at
    apply time; ``replication_cost_ns`` the activation cost of this
    decision's replication directive (0.0 unless ``replicated``).
    """

    type: ClassVar[str] = "placement_applied"

    now_ns: int
    policy: str
    verdict: str
    thread_moves: int
    page_migrations: int
    shared_deferred: int
    replicated: bool
    replication_cost_ns: float
    copy_time_ns: float


@dataclass(frozen=True)
class CacheEpoch(TraceEvent):
    """Cache-hierarchy counters at an epoch boundary (cumulative)."""

    type: ClassVar[str] = "cache_epoch"

    step: int
    now_ns: int
    stats: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RunEnd(TraceEvent):
    """Emitted once, after the last step: totals + the PerfCounters fold.

    ``perf`` is the host wall-clock breakdown (the one non-deterministic
    field of a trace); ``perf_other_s`` is its raw, *unclamped* residual.
    ``replication_ns`` is the page-table replication share of
    ``mapping_ns`` — carried here because replica-coherence broadcasts
    accrue silently inside fault handling, so no per-decision event can
    reconstruct the final bill (0.0 whenever replication is off).
    """

    type: ClassVar[str] = "run_end"

    total_ns: float
    steps_run: int
    migrations: int
    os_migrations: int
    first_touch_faults: int
    injected_faults: int
    detection_ns: float
    mapping_ns: float
    detection_pct: float
    mapping_pct: float
    replication_ns: float = 0.0
    perf: dict[str, float] = field(default_factory=dict)
    perf_other_s: float = 0.0


# ---------------------------------------------------------------------------
# mapping-service events (the serve daemon's decision trail)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServeStart(TraceEvent):
    """Emitted once when the mapping service starts listening.

    ``workers`` is the detection-worker process count of the routed
    topology; 0 means the classic single-process server (the default keeps
    pre-router traces readable).
    """

    type: ClassVar[str] = "serve_start"

    host: str
    port: int
    machine: str
    max_sessions: int
    max_table_mb: float
    shards: int
    workers: int = 0


@dataclass(frozen=True)
class ServeWorkerStart(TraceEvent):
    """A detection worker process came up (initial spawn or respawn)."""

    type: ClassVar[str] = "serve_worker_start"

    worker_id: int
    pid: int
    #: 1 for the initial spawn, >1 for respawns after a crash
    spawn: int
    ring_bytes: int


@dataclass(frozen=True)
class ServeWorkerCrash(TraceEvent):
    """A detection worker died without being asked to stop."""

    type: ClassVar[str] = "serve_worker_crash"

    worker_id: int
    spawn: int
    exitcode: "int | None"
    #: sessions that were assigned to the worker when it died
    sessions: int
    respawns_left: int


@dataclass(frozen=True)
class ServeTenantMigrated(TraceEvent):
    """A tenant's journal was replayed into a worker after a crash.

    ``reason`` is ``respawn`` (same worker id, fresh process) or
    ``retired`` (the worker exhausted its respawn budget and the tenant
    moved to the next worker on the hash ring).  Replay regenerates the
    worker-side detection state deterministically, so the tenant's matrix
    digests are unchanged by the migration.
    """

    type: ClassVar[str] = "serve_tenant_migrated"

    tenant: str
    session_id: int
    from_worker: int
    to_worker: int
    reason: str
    replayed_batches: int
    replayed_flushes: int


@dataclass(frozen=True)
class ServeSessionStart(TraceEvent):
    """A tenant session was admitted (post-HELLO, pre-WELCOME)."""

    type: ClassVar[str] = "serve_session_start"

    tenant: str
    session_id: int
    n_threads: int
    table_size: int
    shards: int
    eval_every_events: int
    memory_bytes: int


@dataclass(frozen=True)
class ServeEvaluation(TraceEvent):
    """One session evaluation tick: the serve twin of :class:`SpcdEvaluation`.

    ``verdict`` uses the same vocabulary; ``matrix_digest`` is the digest of
    the shard-merged matrix the decision was computed from, which must match
    the offline replay of the same stream bit for bit.  ``mapping`` is only
    present for ``migrated`` verdicts.
    """

    type: ClassVar[str] = "serve_evaluation"

    tenant: str
    session_id: int
    evaluation: int
    events_seen: int
    comm_events: int
    verdict: str
    matrix_digest: str
    mapping: "list[int] | None" = None


@dataclass(frozen=True)
class ServeSessionEnd(TraceEvent):
    """A session finished draining; its final matrix digest is flushed here.

    ``reason`` is ``bye`` (client finished), ``disconnect`` (EOF without
    BYE), ``error`` (protocol violation) or ``drain`` (server shutdown).
    """

    type: ClassVar[str] = "serve_session_end"

    tenant: str
    session_id: int
    reason: str
    events: int
    batches: int
    comm_events: int
    windowed_out: int
    evaluations: int
    remaps: int
    matrix_digest: str
    mapping: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class ServeEnd(TraceEvent):
    """Emitted once when the service exits (after every session drained).

    ``metrics`` is the :meth:`~repro.serve.metrics.MetricsRegistry.snapshot`
    dump — the bridge that folds live service metrics into
    ``python -m repro.obs.report``.
    """

    type: ClassVar[str] = "serve_end"

    reason: str
    sessions_served: int
    sessions_refused: int
    events_total: int
    batches_total: int
    remaps_total: int
    metrics: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# grid reliability events (the sweep scheduler's decision trail)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GridStart(TraceEvent):
    """Emitted once per ``run_grid`` invocation, before any cell executes.

    ``resumed_done`` / ``resumed_failed`` count the cells whose terminal
    state was recovered from the checkpoint manifest — nonzero means this
    invocation is resuming an interrupted sweep.
    """

    type: ClassVar[str] = "grid_start"

    grid_key: str
    workloads: list[str]
    policies: list[str]
    reps: int
    cells: int
    cached: int
    resumed_done: int
    resumed_failed: int
    to_run: int
    workers: int
    #: per-cell timeout in seconds; 0.0 when unbounded
    timeout_s: float
    retries: int
    strict: bool


@dataclass(frozen=True)
class CellAttemptFailed(TraceEvent):
    """One attempt at a cell ended without a result.

    ``kind`` is ``timeout`` (deadline exceeded, process killed), ``crash``
    (worker died without delivering a result) or ``error`` (the simulation
    raised).
    """

    type: ClassVar[str] = "cell_attempt_failed"

    workload: str
    policy: str
    rep: int
    attempt: int
    kind: str
    message: str


@dataclass(frozen=True)
class CellRetry(TraceEvent):
    """The scheduler requeued a failed cell for another attempt."""

    type: ClassVar[str] = "cell_retry"

    workload: str
    policy: str
    rep: int
    attempt: int
    backoff_s: float


@dataclass(frozen=True)
class CellCompleted(TraceEvent):
    """A cell reached a result (freshly simulated, never from the cache)."""

    type: ClassVar[str] = "cell_completed"

    workload: str
    policy: str
    rep: int
    attempts: int


@dataclass(frozen=True)
class CellFailed(TraceEvent):
    """A cell exhausted its attempt budget (a :class:`CellFailure` entry)."""

    type: ClassVar[str] = "cell_failed"

    workload: str
    policy: str
    rep: int
    attempts: int
    kind: str
    message: str


@dataclass(frozen=True)
class GridEnd(TraceEvent):
    """Emitted once per ``run_grid`` invocation, after the sweep drains."""

    type: ClassVar[str] = "grid_end"

    grid_key: str
    cells: int
    cache_hits: int
    cache_misses: int
    completed: int
    failed: int
    retries: int
    timeouts: int
    crashes: int


def event_types() -> dict[str, type[TraceEvent]]:
    """``type`` tag -> event class, for deserialising report tooling."""
    return {
        cls.type: cls
        for cls in (
            RunStart,
            FaultBatchSummary,
            InjectorWake,
            TlbShootdown,
            SpcdEvaluation,
            MappingDecision,
            Migration,
            PlacementApplied,
            CacheEpoch,
            RunEnd,
            ServeStart,
            ServeWorkerStart,
            ServeWorkerCrash,
            ServeTenantMigrated,
            ServeSessionStart,
            ServeEvaluation,
            ServeSessionEnd,
            ServeEnd,
            GridStart,
            CellAttemptFailed,
            CellRetry,
            CellCompleted,
            CellFailed,
            GridEnd,
        )
    }
