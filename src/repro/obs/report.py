"""Reconstruct run-level results from a trace alone.

``python -m repro.obs.report trace.jsonl [more.jsonl ...] [--json]``

The reconstruction uses only the per-decision event stream — migration
events for the paper's Table II migration counts, the cumulative overhead
counters carried by fault-batch / injector-wake / evaluation / migration
events for the Fig. 16 detection-vs-mapping split — and reproduces the
corresponding :class:`~repro.engine.simulator.SimulationResult` fields
*exactly* (same floats, same integers; pinned by ``tests/test_obs.py``).
The ``run_end`` summary event is used only for the run's total virtual
time and as a cross-check: a mismatch between the reconstruction and the
summary means the trace is incomplete or the instrumentation drifted, and
is reported as an error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["RunReport", "iter_events", "load_events", "reconstruct_runs", "main"]


@dataclass
class RunReport:
    """Everything reconstructable about one run from its event stream."""

    workload: str = "?"
    policy: str = "?"
    seed: int = 0
    total_ns: float = 0.0
    steps_run: int = 0
    #: Table II: applied mappings that moved at least one thread
    migrations: int = 0
    #: Fig. 16 numerators (virtual ns)
    detection_ns: float = 0.0
    mapping_ns: float = 0.0
    first_touch_faults: int = 0
    injected_faults: int = 0
    injector_wakes: int = 0
    pages_cleared: int = 0
    evaluations: int = 0
    verdicts: Counter = field(default_factory=Counter)
    mapper_calls: int = 0
    vetoed_mappings: int = 0
    tlb_shootdowns: int = 0
    events: int = 0
    #: inconsistencies against the run_end summary (empty = trace is sound)
    errors: list[str] = field(default_factory=list)

    @property
    def detection_pct(self) -> float:
        """Detection overhead as % of execution time (Fig. 16)."""
        return 100.0 * self.detection_ns / self.total_ns if self.total_ns else 0.0

    @property
    def mapping_pct(self) -> float:
        """Mapping overhead as % of execution time (Fig. 16)."""
        return 100.0 * self.mapping_ns / self.total_ns if self.total_ns else 0.0

    @property
    def injected_ratio(self) -> float:
        """Share of faults that were SPCD-injected."""
        total = self.first_touch_faults + self.injected_faults
        return self.injected_faults / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (for ``--json`` and downstream tooling)."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "total_ns": self.total_ns,
            "steps_run": self.steps_run,
            "migrations": self.migrations,
            "detection_pct": self.detection_pct,
            "mapping_pct": self.mapping_pct,
            "detection_ns": self.detection_ns,
            "mapping_ns": self.mapping_ns,
            "first_touch_faults": self.first_touch_faults,
            "injected_faults": self.injected_faults,
            "injected_ratio": self.injected_ratio,
            "injector_wakes": self.injector_wakes,
            "pages_cleared": self.pages_cleared,
            "evaluations": self.evaluations,
            "verdicts": dict(self.verdicts),
            "mapper_calls": self.mapper_calls,
            "vetoed_mappings": self.vetoed_mappings,
            "tlb_shootdowns": self.tlb_shootdowns,
            "events": self.events,
            "errors": list(self.errors),
        }


def iter_events(path: "str | Path") -> Iterator[dict[str, Any]]:
    """Yield the JSONL events of one trace file."""
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not a JSONL trace line: {exc}"
                ) from exc


def load_events(path: "str | Path") -> list[dict[str, Any]]:
    """All events of one trace file, in order."""
    return list(iter_events(path))


def reconstruct_runs(events: Iterable[dict[str, Any]]) -> list[RunReport]:
    """Fold an event stream into per-run reports.

    A stream may contain several runs back to back (each bracketed by
    ``run_start`` / ``run_end``); events outside any bracket are attached
    to the nearest started run.
    """
    runs: list[RunReport] = []
    run: RunReport | None = None
    # cumulative-counter tails of the current run
    hook_ns = inject_ns = mapper_ns = migrate_ns = 0.0

    for ev in events:
        kind = ev.get("type", "?")
        if kind == "run_start" or run is None:
            run = RunReport(
                workload=str(ev.get("workload", "?")),
                policy=str(ev.get("policy", "?")),
                seed=int(ev.get("seed", 0)),
            )
            runs.append(run)
            hook_ns = inject_ns = mapper_ns = migrate_ns = 0.0
            if kind == "run_start":
                run.events += 1
                continue
        run.events += 1
        if kind == "fault_batch":
            run.first_touch_faults += int(ev["first_touch"])
            run.injected_faults += int(ev["injected"])
            hook_ns = float(ev["hook_time_ns"])
        elif kind == "injector_wake":
            run.injector_wakes += 1
            run.pages_cleared += int(ev["cleared"])
            inject_ns = float(ev["inject_time_ns"])
        elif kind == "tlb_shootdown":
            run.tlb_shootdowns += 1
        elif kind == "spcd_evaluation":
            run.evaluations += 1
            run.verdicts[str(ev["verdict"])] += 1
            mapper_ns = float(ev["mapping_ns"])
        elif kind == "mapping_decision":
            run.mapper_calls += 1
            if not ev["accepted"]:
                run.vetoed_mappings += 1
        elif kind == "migration":
            run.migrations += 1
            migrate_ns = float(ev["cost_ns"])
        elif kind == "run_end":
            run.total_ns = float(ev["total_ns"])
            run.steps_run = int(ev["steps_run"])
            # Same additions, same order, as SpcdManager.detection_time_ns /
            # mapping_time_ns — the split is reproduced bit-for-bit.
            run.detection_ns = hook_ns + inject_ns
            run.mapping_ns = mapper_ns + migrate_ns
            _cross_check(run, ev)
            run = None
    return runs


def _cross_check(run: RunReport, end: dict[str, Any]) -> None:
    """Compare the reconstruction against the run_end summary."""
    checks = (
        ("migrations", run.migrations, int(end["migrations"])),
        ("first_touch_faults", run.first_touch_faults, int(end["first_touch_faults"])),
        ("injected_faults", run.injected_faults, int(end["injected_faults"])),
        ("detection_ns", run.detection_ns, float(end["detection_ns"])),
        ("mapping_ns", run.mapping_ns, float(end["mapping_ns"])),
        ("detection_pct", run.detection_pct, float(end["detection_pct"])),
        ("mapping_pct", run.mapping_pct, float(end["mapping_pct"])),
    )
    for name, got, want in checks:
        if got != want:
            run.errors.append(f"{name}: reconstructed {got!r} != summary {want!r}")


def report_paths(paths: Iterable["str | Path"]) -> list[RunReport]:
    """Reconstruct every run found in *paths* (one or more trace files)."""
    reports: list[RunReport] = []
    for p in paths:
        reports.extend(reconstruct_runs(iter_events(p)))
    return reports


def _format_table(reports: list[RunReport]) -> str:
    header = (
        f"{'workload':<14} {'policy':<8} {'migr':>5} {'detect%':>8} "
        f"{'map%':>8} {'faults':>9} {'inj%':>6} {'wakes':>6} {'evals':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        faults = r.first_touch_faults + r.injected_faults
        lines.append(
            f"{r.workload:<14.14} {r.policy:<8.8} {r.migrations:>5d} "
            f"{r.detection_pct:>8.3f} {r.mapping_pct:>8.3f} {faults:>9d} "
            f"{100.0 * r.injected_ratio:>6.1f} {r.injector_wakes:>6d} "
            f"{r.evaluations:>6d}"
        )
        for err in r.errors:
            lines.append(f"  !! {err}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Reconstruct Table II / Fig. 16 numbers from REPRO_TRACE files.",
    )
    parser.add_argument("traces", nargs="+", type=Path, help="JSONL trace file(s)")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    args = parser.parse_args(argv)

    reports = report_paths(args.traces)
    if not reports:
        print("no runs found in the given traces", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    else:
        print(_format_table(reports))
    return 1 if any(r.errors for r in reports) else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
