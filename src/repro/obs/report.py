"""Reconstruct run-level results — and sweep reliability — from traces.

``python -m repro.obs.report trace.jsonl [more.jsonl ...] [--json]``

The reconstruction uses only the per-decision event stream — migration
events for the paper's Table II migration counts, the cumulative overhead
counters carried by fault-batch / injector-wake / evaluation / migration
events for the Fig. 16 detection-vs-mapping split — and reproduces the
corresponding :class:`~repro.engine.simulator.SimulationResult` fields
*exactly* (same floats, same integers; pinned by ``tests/test_obs.py``).
The ``run_end`` summary event is used only for the run's total virtual
time and as a cross-check: a mismatch between the reconstruction and the
summary means the trace is incomplete or the instrumentation drifted, and
is reported as an error.

Grid traces (the ``grid-*.jsonl`` files :func:`repro.engine.gridrunner.run_grid`
writes under ``REPRO_TRACE``) are summarised the same way: the per-decision
scheduler events (cell attempts, retries, timeouts, crashes, resume counts)
are folded into one :class:`GridReport` per invocation and cross-checked
against the ``grid_end`` summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "GridReport",
    "RunReport",
    "ServeReport",
    "grid_report_paths",
    "iter_events",
    "load_events",
    "reconstruct_grids",
    "reconstruct_runs",
    "reconstruct_serves",
    "serve_report_paths",
    "main",
]

#: event types belonging to the grid scheduler's stream, not to any run
GRID_EVENT_TYPES = frozenset(
    {
        "grid_start",
        "grid_end",
        "cell_attempt_failed",
        "cell_retry",
        "cell_completed",
        "cell_failed",
    }
)

#: event types belonging to the mapping daemon's stream, not to any run
SERVE_EVENT_TYPES = frozenset(
    {
        "serve_start",
        "serve_worker_start",
        "serve_worker_crash",
        "serve_tenant_migrated",
        "serve_session_start",
        "serve_evaluation",
        "serve_session_end",
        "serve_end",
    }
)


@dataclass
class RunReport:
    """Everything reconstructable about one run from its event stream."""

    workload: str = "?"
    policy: str = "?"
    seed: int = 0
    total_ns: float = 0.0
    steps_run: int = 0
    #: Table II: applied mappings that moved at least one thread
    migrations: int = 0
    #: Fig. 16 numerators (virtual ns)
    detection_ns: float = 0.0
    mapping_ns: float = 0.0
    first_touch_faults: int = 0
    injected_faults: int = 0
    injector_wakes: int = 0
    pages_cleared: int = 0
    evaluations: int = 0
    verdicts: Counter = field(default_factory=Counter)
    mapper_calls: int = 0
    vetoed_mappings: int = 0
    #: mapping decisions per engine ("edmonds"/"hierarchical")
    mapper_algorithms: Counter = field(default_factory=Counter)
    #: host wall-clock spent inside mapping decisions (sum of the
    #: per-decision ``decide_wall_s`` fields; 0.0 for pre-graphs traces)
    decide_wall_s: float = 0.0
    #: nonzero fraction of the last decided matrix (density trajectory tail)
    matrix_density: float = 0.0
    tlb_shootdowns: int = 0
    #: placement-engine effects (all zero for thread-only policies)
    page_migrations: int = 0
    shared_deferred: int = 0
    pt_replications: int = 0
    #: replication share of mapping_ns; summary-sourced like total_ns,
    #: because replica broadcasts accrue silently inside fault handling
    replication_ns: float = 0.0
    events: int = 0
    #: host wall-clock breakdown from run_end's PerfCounters fold (the one
    #: non-deterministic part of a trace; empty for pre-perf traces)
    perf: dict[str, float] = field(default_factory=dict)
    #: inconsistencies against the run_end summary (empty = trace is sound)
    errors: list[str] = field(default_factory=list)

    @property
    def detection_pct(self) -> float:
        """Detection overhead as % of execution time (Fig. 16)."""
        return 100.0 * self.detection_ns / self.total_ns if self.total_ns else 0.0

    @property
    def mapping_pct(self) -> float:
        """Mapping overhead as % of execution time (Fig. 16)."""
        return 100.0 * self.mapping_ns / self.total_ns if self.total_ns else 0.0

    @property
    def injected_ratio(self) -> float:
        """Share of faults that were SPCD-injected."""
        total = self.first_touch_faults + self.injected_faults
        return self.injected_faults / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (for ``--json`` and downstream tooling)."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "total_ns": self.total_ns,
            "steps_run": self.steps_run,
            "migrations": self.migrations,
            "detection_pct": self.detection_pct,
            "mapping_pct": self.mapping_pct,
            "detection_ns": self.detection_ns,
            "mapping_ns": self.mapping_ns,
            "first_touch_faults": self.first_touch_faults,
            "injected_faults": self.injected_faults,
            "injected_ratio": self.injected_ratio,
            "injector_wakes": self.injector_wakes,
            "pages_cleared": self.pages_cleared,
            "evaluations": self.evaluations,
            "verdicts": dict(self.verdicts),
            "mapper_calls": self.mapper_calls,
            "vetoed_mappings": self.vetoed_mappings,
            "mapper_algorithms": dict(self.mapper_algorithms),
            "decide_wall_s": self.decide_wall_s,
            "matrix_density": self.matrix_density,
            "tlb_shootdowns": self.tlb_shootdowns,
            "page_migrations": self.page_migrations,
            "shared_deferred": self.shared_deferred,
            "pt_replications": self.pt_replications,
            "replication_ns": self.replication_ns,
            "events": self.events,
            "perf": dict(self.perf),
            "errors": list(self.errors),
        }


@dataclass
class GridReport:
    """Reliability summary of one ``run_grid`` invocation's trace."""

    grid_key: str = "?"
    workloads: list[str] = field(default_factory=list)
    policies: list[str] = field(default_factory=list)
    reps: int = 0
    cells: int = 0
    cached: int = 0
    #: cells whose terminal state was recovered from the checkpoint manifest
    resumed_done: int = 0
    resumed_failed: int = 0
    to_run: int = 0
    workers: int = 0
    timeout_s: float = 0.0
    retry_budget: int = 0
    strict: bool = False
    completed: int = 0
    #: cells that exhausted their attempt budget, as display strings
    failed_cells: list[str] = field(default_factory=list)
    retries: int = 0
    #: attempt-failure counts by kind (timeout / crash / error)
    attempt_failures: Counter = field(default_factory=Counter)
    events: int = 0
    #: inconsistencies against the grid_end summary (empty = trace is sound)
    errors: list[str] = field(default_factory=list)

    @property
    def failed(self) -> int:
        """Cells that never produced a result."""
        return len(self.failed_cells)

    @property
    def resumed(self) -> bool:
        """True when this invocation continued an interrupted sweep."""
        return bool(self.resumed_done or self.resumed_failed)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (tagged ``"type": "grid"`` so run and grid
        entries can share one output list)."""
        return {
            "type": "grid",
            "grid_key": self.grid_key,
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "reps": self.reps,
            "cells": self.cells,
            "cached": self.cached,
            "resumed_done": self.resumed_done,
            "resumed_failed": self.resumed_failed,
            "to_run": self.to_run,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retry_budget": self.retry_budget,
            "strict": self.strict,
            "completed": self.completed,
            "failed": self.failed,
            "failed_cells": list(self.failed_cells),
            "retries": self.retries,
            "attempt_failures": dict(self.attempt_failures),
            "events": self.events,
            "errors": list(self.errors),
        }


@dataclass
class ServeReport:
    """Summary of one mapping-daemon lifetime (serve_start .. serve_end)."""

    host: str = "?"
    port: int = 0
    machine: str = "?"
    max_sessions: int = 0
    shards: int = 0
    #: detection worker processes (0 = single-process server)
    workers: int = 0
    #: worker process spawns seen (initial + respawns)
    worker_spawns: int = 0
    worker_crashes: int = 0
    #: tenant journal replays (respawn replays and hash-ring moves)
    migrations: int = 0
    reason: str = "?"
    #: serve_session_end payloads, in drain order
    sessions: list[dict[str, Any]] = field(default_factory=list)
    sessions_refused: int = 0
    #: evaluation verdict counts across every session
    verdicts: Counter = field(default_factory=Counter)
    events_total: int = 0
    batches_total: int = 0
    remaps_total: int = 0
    #: the ServeEnd metrics snapshot (live-registry fold)
    metrics: dict[str, Any] = field(default_factory=dict)
    events: int = 0
    #: inconsistencies against the serve_end summary (empty = trace is sound)
    errors: list[str] = field(default_factory=list)

    @property
    def sessions_served(self) -> int:
        """Sessions that were admitted and drained."""
        return len(self.sessions)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (tagged ``"type": "serve"``)."""
        return {
            "type": "serve",
            "host": self.host,
            "port": self.port,
            "machine": self.machine,
            "max_sessions": self.max_sessions,
            "shards": self.shards,
            "workers": self.workers,
            "worker_spawns": self.worker_spawns,
            "worker_crashes": self.worker_crashes,
            "migrations": self.migrations,
            "reason": self.reason,
            "sessions_served": self.sessions_served,
            "sessions_refused": self.sessions_refused,
            "sessions": list(self.sessions),
            "verdicts": dict(self.verdicts),
            "events_total": self.events_total,
            "batches_total": self.batches_total,
            "remaps_total": self.remaps_total,
            "metrics": dict(self.metrics),
            "events": self.events,
            "errors": list(self.errors),
        }


def reconstruct_serves(events: Iterable[dict[str, Any]]) -> list[ServeReport]:
    """Fold a serve event stream into per-daemon-lifetime reports.

    Totals are rebuilt from the per-session ``serve_session_end`` events
    and cross-checked against the ``serve_end`` summary; non-serve events
    are ignored.
    """
    serves: list[ServeReport] = []
    serve: ServeReport | None = None

    for ev in events:
        kind = ev.get("type", "?")
        if kind not in SERVE_EVENT_TYPES:
            continue
        if kind == "serve_start" or serve is None:
            serve = ServeReport(
                host=str(ev.get("host", "?")),
                port=int(ev.get("port", 0)),
                machine=str(ev.get("machine", "?")),
                max_sessions=int(ev.get("max_sessions", 0)),
                shards=int(ev.get("shards", 0)),
                workers=int(ev.get("workers", 0)),
            )
            serves.append(serve)
            if kind == "serve_start":
                serve.events += 1
                continue
        serve.events += 1
        if kind == "serve_evaluation":
            serve.verdicts[str(ev.get("verdict", "?"))] += 1
        elif kind == "serve_worker_start":
            serve.worker_spawns += 1
        elif kind == "serve_worker_crash":
            serve.worker_crashes += 1
        elif kind == "serve_tenant_migrated":
            serve.migrations += 1
        elif kind == "serve_session_end":
            session = {k: v for k, v in ev.items() if k != "type"}
            serve.sessions.append(session)
            serve.events_total += int(ev.get("events", 0))
            serve.batches_total += int(ev.get("batches", 0))
            serve.remaps_total += int(ev.get("remaps", 0))
        elif kind == "serve_end":
            serve.reason = str(ev.get("reason", "?"))
            serve.sessions_refused = int(ev.get("sessions_refused", 0))
            serve.metrics = dict(ev.get("metrics", {}))
            _cross_check_serve(serve, ev)
            serve = None
    return serves


def _cross_check_serve(serve: ServeReport, end: dict[str, Any]) -> None:
    """Compare the per-session reconstruction against the serve_end summary."""
    checks = (
        ("sessions_served", serve.sessions_served, int(end.get("sessions_served", 0))),
        ("events_total", serve.events_total, int(end.get("events_total", 0))),
        ("batches_total", serve.batches_total, int(end.get("batches_total", 0))),
    )
    for name, got, want in checks:
        if got != want:
            serve.errors.append(f"{name}: reconstructed {got!r} != summary {want!r}")


def reconstruct_grids(events: Iterable[dict[str, Any]]) -> list[GridReport]:
    """Fold a grid event stream into per-invocation reliability reports.

    A stream may contain several invocations back to back (each bracketed
    by ``grid_start`` / ``grid_end``, e.g. an interrupted sweep and its
    resumption); non-grid events are ignored.
    """
    grids: list[GridReport] = []
    grid: GridReport | None = None
    fresh_completions = 0

    for ev in events:
        kind = ev.get("type", "?")
        if kind not in GRID_EVENT_TYPES:
            continue
        if kind == "grid_start" or grid is None:
            grid = GridReport(
                grid_key=str(ev.get("grid_key", "?")),
                workloads=[str(w) for w in ev.get("workloads", [])],
                policies=[str(p) for p in ev.get("policies", [])],
                reps=int(ev.get("reps", 0)),
                cells=int(ev.get("cells", 0)),
                cached=int(ev.get("cached", 0)),
                resumed_done=int(ev.get("resumed_done", 0)),
                resumed_failed=int(ev.get("resumed_failed", 0)),
                to_run=int(ev.get("to_run", 0)),
                workers=int(ev.get("workers", 0)),
                timeout_s=float(ev.get("timeout_s", 0.0)),
                retry_budget=int(ev.get("retries", 0)),
                strict=bool(ev.get("strict", False)),
            )
            grids.append(grid)
            fresh_completions = 0
            if kind == "grid_start":
                grid.events += 1
                continue
        grid.events += 1
        if kind == "cell_attempt_failed":
            grid.attempt_failures[str(ev.get("kind", "?"))] += 1
        elif kind == "cell_retry":
            grid.retries += 1
        elif kind == "cell_completed":
            fresh_completions += 1
        elif kind == "cell_failed":
            grid.failed_cells.append(
                f"{ev.get('workload', '?')}/{ev.get('policy', '?')}"
                f"/rep{ev.get('rep', 0)} after {ev.get('attempts', 0)} attempts "
                f"({ev.get('kind', '?')}: {ev.get('message', '')})"
            )
        elif kind == "grid_end":
            grid.completed = grid.cached + fresh_completions
            _cross_check_grid(grid, ev)
            grid = None
    return grids


def _cross_check_grid(grid: GridReport, end: dict[str, Any]) -> None:
    """Compare the reconstruction against the grid_end summary."""
    checks = (
        ("completed", grid.completed, int(end.get("completed", 0))),
        ("failed", grid.failed, int(end.get("failed", 0))),
        ("retries", grid.retries, int(end.get("retries", 0))),
        ("timeouts", grid.attempt_failures["timeout"], int(end.get("timeouts", 0))),
        ("crashes", grid.attempt_failures["crash"], int(end.get("crashes", 0))),
    )
    for name, got, want in checks:
        if got != want:
            grid.errors.append(f"{name}: reconstructed {got!r} != summary {want!r}")


def iter_events(path: "str | Path") -> Iterator[dict[str, Any]]:
    """Yield the JSONL events of one trace file."""
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not a JSONL trace line: {exc}"
                ) from exc


def load_events(path: "str | Path") -> list[dict[str, Any]]:
    """All events of one trace file, in order."""
    return list(iter_events(path))


def reconstruct_runs(events: Iterable[dict[str, Any]]) -> list[RunReport]:
    """Fold an event stream into per-run reports.

    A stream may contain several runs back to back (each bracketed by
    ``run_start`` / ``run_end``); events outside any bracket are attached
    to the nearest started run.
    """
    runs: list[RunReport] = []
    run: RunReport | None = None
    # cumulative-counter tails of the current run
    hook_ns = inject_ns = mapper_ns = migrate_ns = 0.0

    for ev in events:
        kind = ev.get("type", "?")
        if kind in GRID_EVENT_TYPES or kind in SERVE_EVENT_TYPES:
            continue  # scheduler/daemon streams, not part of any run
        if kind == "run_start" or run is None:
            run = RunReport(
                workload=str(ev.get("workload", "?")),
                policy=str(ev.get("policy", "?")),
                seed=int(ev.get("seed", 0)),
            )
            runs.append(run)
            hook_ns = inject_ns = mapper_ns = migrate_ns = 0.0
            if kind == "run_start":
                run.events += 1
                continue
        run.events += 1
        if kind == "fault_batch":
            run.first_touch_faults += int(ev["first_touch"])
            run.injected_faults += int(ev["injected"])
            hook_ns = float(ev["hook_time_ns"])
        elif kind == "injector_wake":
            run.injector_wakes += 1
            run.pages_cleared += int(ev["cleared"])
            inject_ns = float(ev["inject_time_ns"])
        elif kind == "tlb_shootdown":
            run.tlb_shootdowns += 1
        elif kind == "spcd_evaluation":
            run.evaluations += 1
            run.verdicts[str(ev["verdict"])] += 1
            mapper_ns = float(ev["mapping_ns"])
        elif kind == "mapping_decision":
            run.mapper_calls += 1
            if not ev["accepted"]:
                run.vetoed_mappings += 1
            # Decision-cost observability (graphs subsystem); .get() keeps
            # pre-graphs traces readable.
            run.mapper_algorithms[str(ev.get("algorithm", "edmonds"))] += 1
            run.decide_wall_s += float(ev.get("decide_wall_s", 0.0))
            run.matrix_density = float(ev.get("matrix_density", 0.0))
        elif kind == "migration":
            run.migrations += 1
            migrate_ns = float(ev["cost_ns"])
        elif kind == "placement_applied":
            run.page_migrations += int(ev.get("page_migrations", 0))
            run.shared_deferred += int(ev.get("shared_deferred", 0))
            if ev.get("replicated"):
                run.pt_replications += 1
        elif kind == "run_end":
            run.total_ns = float(ev["total_ns"])
            run.steps_run = int(ev["steps_run"])
            run.perf = {k: float(v) for k, v in ev.get("perf", {}).items()}
            # The replication bill has no per-decision event (coherence
            # broadcasts ride inside fault handling), so it is summary-
            # sourced; zero for every pre-replication trace.
            run.replication_ns = float(ev.get("replication_ns", 0.0))
            # Same additions, same order, as SpcdManager.detection_time_ns /
            # mapping_time_ns — the split is reproduced bit-for-bit.
            run.detection_ns = hook_ns + inject_ns
            run.mapping_ns = mapper_ns + migrate_ns + run.replication_ns
            _cross_check(run, ev)
            run = None
    return runs


def _cross_check(run: RunReport, end: dict[str, Any]) -> None:
    """Compare the reconstruction against the run_end summary."""
    checks = (
        ("migrations", run.migrations, int(end["migrations"])),
        ("first_touch_faults", run.first_touch_faults, int(end["first_touch_faults"])),
        ("injected_faults", run.injected_faults, int(end["injected_faults"])),
        ("detection_ns", run.detection_ns, float(end["detection_ns"])),
        ("mapping_ns", run.mapping_ns, float(end["mapping_ns"])),
        ("detection_pct", run.detection_pct, float(end["detection_pct"])),
        ("mapping_pct", run.mapping_pct, float(end["mapping_pct"])),
    )
    for name, got, want in checks:
        if got != want:
            run.errors.append(f"{name}: reconstructed {got!r} != summary {want!r}")


def report_paths(paths: Iterable["str | Path"]) -> list[RunReport]:
    """Reconstruct every run found in *paths* (one or more trace files)."""
    reports: list[RunReport] = []
    for p in paths:
        reports.extend(reconstruct_runs(iter_events(p)))
    return reports


def grid_report_paths(paths: Iterable["str | Path"]) -> list[GridReport]:
    """Reconstruct every grid invocation found in *paths*."""
    grids: list[GridReport] = []
    for p in paths:
        grids.extend(reconstruct_grids(iter_events(p)))
    return grids


def serve_report_paths(paths: Iterable["str | Path"]) -> list[ServeReport]:
    """Reconstruct every mapping-daemon lifetime found in *paths*."""
    serves: list[ServeReport] = []
    for p in paths:
        serves.extend(reconstruct_serves(iter_events(p)))
    return serves


def _format_table(reports: list[RunReport]) -> str:
    header = (
        f"{'workload':<14} {'policy':<8} {'migr':>5} {'detect%':>8} "
        f"{'map%':>8} {'faults':>9} {'inj%':>6} {'wakes':>6} {'evals':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        faults = r.first_touch_faults + r.injected_faults
        lines.append(
            f"{r.workload:<14.14} {r.policy:<8.8} {r.migrations:>5d} "
            f"{r.detection_pct:>8.3f} {r.mapping_pct:>8.3f} {faults:>9d} "
            f"{100.0 * r.injected_ratio:>6.1f} {r.injector_wakes:>6d} "
            f"{r.evaluations:>6d}"
        )
        if r.page_migrations or r.shared_deferred or r.pt_replications:
            lines.append(
                f"  placement: {r.page_migrations} page migration(s), "
                f"{r.shared_deferred} shared deferral(s), "
                f"{r.pt_replications} PT replication(s) "
                f"({r.replication_ns:.0f} ns)"
            )
        if r.mapper_calls:
            engines = ", ".join(
                f"{name} x{count}" for name, count in sorted(r.mapper_algorithms.items())
            ) or "edmonds (pre-graphs trace)"
            lines.append(
                f"  mapping: {engines} | decide wall "
                f"{1e3 * r.decide_wall_s:.2f} ms | matrix density "
                f"{r.matrix_density:.3f}"
            )
        if r.perf:
            p = r.perf
            lines.append(
                "  host: "
                f"wall {p.get('wall_s', 0.0):.3f}s | "
                f"hierarchy {p.get('hierarchy_s', 0.0):.3f} | "
                f"coherence {p.get('coherence_s', 0.0):.3f} | "
                f"fault {p.get('fault_s', 0.0):.3f} "
                f"(detect {p.get('detect_s', 0.0):.3f}) | "
                f"spcd {p.get('spcd_s', 0.0):.3f} "
                f"(match {p.get('match_s', 0.0):.3f}) | "
                f"workload {p.get('workload_s', 0.0):.3f}"
            )
        for err in r.errors:
            lines.append(f"  !! {err}")
    return "\n".join(lines)


def _format_grid_table(grids: list[GridReport]) -> str:
    lines = ["sweep reliability"]
    lines.append("-" * len(lines[0]))
    for g in grids:
        resumed = (
            f", resumed ({g.resumed_done} done, {g.resumed_failed} failed)"
            if g.resumed
            else ""
        )
        timeout = f"{g.timeout_s:g}s" if g.timeout_s else "none"
        lines.append(
            f"grid {g.grid_key}: {g.cells} cells ({g.cached} cached, "
            f"{g.to_run} to run{resumed}) on {g.workers} worker(s), "
            f"timeout {timeout}, {g.retry_budget} retries"
        )
        failures = ", ".join(f"{k} x{n}" for k, n in sorted(g.attempt_failures.items()))
        lines.append(
            f"  completed {g.completed}/{g.cells}, failed {g.failed}, "
            f"retries {g.retries}" + (f" ({failures})" if failures else "")
        )
        for cell in g.failed_cells:
            lines.append(f"  failed: {cell}")
        for err in g.errors:
            lines.append(f"  !! {err}")
    return "\n".join(lines)


def _format_serve_table(serves: list[ServeReport]) -> str:
    lines = ["mapping service"]
    lines.append("-" * len(lines[0]))
    for s in serves:
        topology = f", {s.workers} workers" if s.workers else ""
        lines.append(
            f"serve {s.host}:{s.port} on {s.machine} "
            f"({s.shards} shards/session, cap {s.max_sessions}{topology}): "
            f"{s.sessions_served} sessions, {s.sessions_refused} refused, "
            f"exit reason {s.reason}"
        )
        if s.worker_spawns or s.worker_crashes or s.migrations:
            lines.append(
                f"  workers: {s.worker_spawns} spawns, "
                f"{s.worker_crashes} crashes, {s.migrations} tenant replays"
            )
        verdicts = ", ".join(f"{k} x{n}" for k, n in sorted(s.verdicts.items()))
        lines.append(
            f"  {s.events_total} events in {s.batches_total} batches, "
            f"{s.remaps_total} remaps" + (f" ({verdicts})" if verdicts else "")
        )
        header = (
            f"  {'tenant':<14} {'reason':<10} {'events':>9} {'comm':>9} "
            f"{'evals':>6} {'remaps':>6}  {'digest':<16}"
        )
        lines.append(header)
        for sess in s.sessions:
            lines.append(
                f"  {str(sess.get('tenant', '?')):<14.14} "
                f"{str(sess.get('reason', '?')):<10.10} "
                f"{int(sess.get('events', 0)):>9d} "
                f"{int(sess.get('comm_events', 0)):>9d} "
                f"{int(sess.get('evaluations', 0)):>6d} "
                f"{int(sess.get('remaps', 0)):>6d}  "
                f"{str(sess.get('matrix_digest', '?')):<16}"
            )
        for err in s.errors:
            lines.append(f"  !! {err}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Reconstruct Table II / Fig. 16 numbers — and grid sweep "
        "reliability — from REPRO_TRACE files.",
    )
    parser.add_argument("traces", nargs="+", type=Path, help="JSONL trace file(s)")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    args = parser.parse_args(argv)

    reports = report_paths(args.traces)
    grids = grid_report_paths(args.traces)
    serves = serve_report_paths(args.traces)
    if not reports and not grids and not serves:
        print("no runs found in the given traces", file=sys.stderr)
        return 1
    if args.json:
        payload = (
            [r.as_dict() for r in reports]
            + [g.as_dict() for g in grids]
            + [s.as_dict() for s in serves]
        )
        print(json.dumps(payload, indent=2))
    else:
        sections = []
        if reports:
            sections.append(_format_table(reports))
        if grids:
            sections.append(_format_grid_table(grids))
        if serves:
            sections.append(_format_serve_table(serves))
        print("\n\n".join(sections))
    return (
        1
        if any(r.errors for r in reports)
        or any(g.errors for g in grids)
        or any(s.errors for s in serves)
        else 0
    )


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
