"""Structured tracing / observability for the SPCD mechanism.

The paper's evaluation hinges on *decisions* — how many migrations SPCD
performed (Table II), how its overhead splits into detection and mapping
(Fig. 16), when the communication filter judged the pattern changed — and
this package makes every such decision an observable, typed event:

* :mod:`repro.obs.events` — the event vocabulary;
* :mod:`repro.obs.recorder` — the JSONL sink (``REPRO_TRACE=<path>``) and
  the zero-cost disabled form;
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``,
  which reconstructs the run's Table II / Fig. 16 numbers from the trace
  alone and cross-checks them against the run summary.
"""

from repro.obs.events import (
    CacheEpoch,
    FaultBatchSummary,
    InjectorWake,
    MappingDecision,
    Migration,
    RunEnd,
    RunStart,
    SpcdEvaluation,
    TlbShootdown,
    TraceEvent,
    event_types,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    NullRecorder,
    TraceRecorder,
    cell_trace_path,
    run_trace_path,
    trace_base_from_env,
)

# NOTE: repro.obs.report is intentionally NOT imported here — importing it
# from the package would shadow ``python -m repro.obs.report`` with a
# double-execution RuntimeWarning.  Import it directly where needed.

__all__ = [
    "CacheEpoch",
    "FaultBatchSummary",
    "InjectorWake",
    "JsonlRecorder",
    "MappingDecision",
    "Migration",
    "NULL_RECORDER",
    "NullRecorder",
    "RunEnd",
    "RunStart",
    "SpcdEvaluation",
    "TlbShootdown",
    "TraceEvent",
    "TraceRecorder",
    "cell_trace_path",
    "event_types",
    "run_trace_path",
    "trace_base_from_env",
]
