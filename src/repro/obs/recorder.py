"""Trace sinks: the JSONL recorder and its zero-cost disabled form.

``REPRO_TRACE=<path>`` enables tracing globally: a path ending in
``.jsonl`` names the trace file itself; anything else is treated as a
directory into which each run writes an auto-named
``run-<workload>-<policy>-seed<seed>.jsonl``.  Grid runs derive one file
per cell (see :func:`cell_trace_path`), so concurrent workers never share
a sink.

Atomicity: a :class:`JsonlRecorder` writes to ``<final>.<pid>.tmp`` and
renames it over the final path on :meth:`close`, so readers only ever see
complete traces and a crashed worker leaves at most a ``*.tmp`` file
behind.

When tracing is disabled components hold ``None`` instead of a recorder
and guard emission with a single ``if rec is not None`` branch — the hot
paths pay one pointer test per fault batch.  :data:`NULL_RECORDER` is
additionally provided for call sites that prefer an object; it is falsy
and drops everything.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.obs.events import TraceEvent

__all__ = [
    "JsonlRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "cell_trace_path",
    "grid_trace_path",
    "run_trace_path",
    "serve_trace_path",
    "trace_base_from_env",
]


class TraceRecorder:
    """Interface: :meth:`emit` events, :meth:`close` the sink."""

    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        """Record one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and seal the sink (idempotent)."""

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __bool__(self) -> bool:
        return self.enabled


class NullRecorder(TraceRecorder):
    """Falsy recorder that drops every event (tracing disabled)."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass


#: shared no-op instance
NULL_RECORDER = NullRecorder()


class JsonlRecorder(TraceRecorder):
    """Writes one JSON object per line, atomically published on close.

    The file is opened lazily on the first :meth:`emit`, so constructing a
    recorder for a run that never starts leaves no file behind.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = Path(path)
        self.events_written = 0
        self._file = None
        self._tmp: Path | None = None
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        """Append *event* as one JSONL line."""
        if self._closed:
            return
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
            self._file = open(self._tmp, "w", encoding="utf-8")
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Seal the trace: flush and atomically rename into place."""
        if self._closed:
            return
        self._closed = True
        if self._file is None:
            return
        self._file.close()
        self._file = None
        assert self._tmp is not None
        os.replace(self._tmp, self.path)


def trace_base_from_env() -> Path | None:
    """The ``REPRO_TRACE`` base path, or ``None`` when tracing is off.

    Delegates to :class:`repro.engine.settings.RunSettings` — the single
    home of every ``REPRO_*`` environment read.  (Imported lazily: this
    module is imported by the engine itself.)
    """
    from repro.engine.settings import RunSettings

    trace = RunSettings.from_env().trace
    return Path(trace) if trace else None


def _slug(text: str) -> str:
    """Filesystem-safe fragment of a workload/policy name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text) or "x"


def run_trace_path(base: Path, workload: str, policy: str, seed: int) -> Path:
    """Trace file for one ad-hoc :class:`~repro.engine.simulator.Simulator` run.

    A ``.jsonl`` *base* is used verbatim; otherwise *base* is a directory
    and the file is auto-named from the run's identity.
    """
    if base.suffix == ".jsonl":
        return base
    return base / f"run-{_slug(workload)}-{_slug(policy)}-seed{seed}.jsonl"


def cell_trace_path(base: Path, workload: str, policy: str, rep: int) -> Path:
    """Per-cell trace file for a grid run under *base*.

    A ``.jsonl`` *base* becomes a prefix (``<stem>-<cell>.jsonl`` next to
    it); otherwise *base* is a directory holding one file per cell.
    """
    name = f"{_slug(workload)}-{_slug(policy)}-rep{rep}.jsonl"
    if base.suffix == ".jsonl":
        return base.with_name(f"{base.stem}-{name}")
    return base / name


def serve_trace_path(base: Path) -> Path:
    """Trace file for one ``python -m repro.serve`` daemon run.

    A ``.jsonl`` *base* is used verbatim; otherwise *base* is a directory
    and the daemon writes ``serve.jsonl`` inside it.
    """
    if base.suffix == ".jsonl":
        return base
    return base / "serve.jsonl"


def grid_trace_path(base: Path, grid_key: str) -> Path:
    """Trace file for one ``run_grid`` invocation's reliability events.

    Named after the grid's checkpoint key, with an incrementing suffix so
    a resumed sweep's events sit beside (never overwrite) the interrupted
    invocation's.
    """
    stem = f"grid-{grid_key[:8]}" if grid_key else "grid"
    if base.suffix == ".jsonl":
        directory, prefix = base.parent, f"{base.stem}-{stem}"
    else:
        directory, prefix = base, stem
    n = 0
    while True:
        p = directory / (f"{prefix}.jsonl" if n == 0 else f"{prefix}-{n}.jsonl")
        if not p.exists():
            return p
        n += 1
