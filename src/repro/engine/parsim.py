"""Core-sharded process-parallel simulator core.

The MESI hierarchy and the workload generators dominate a run's host
wall-clock; both are embarrassingly parallel *if* the partition respects
the protocol's data dependencies.  This module partitions them across
worker processes by **set stripe**: shard ``s`` of ``S`` (a power of two)
owns every cache line with ``line & (S - 1) == s``.  Because the stripe
bits are the low bits of the set index at *every* cache level (``S`` may
not exceed the smallest ``num_sets``), two different stripes never share
a cache set, a directory entry, or an LRU ordering — every MESI
transaction a line can trigger (lookups, refills, invalidations,
cache-to-cache transfers, inclusive-L3 back-invalidations) touches only
lines of the same stripe.  Each worker therefore runs a complete
:class:`~repro.cachesim.hierarchy.CoherentHierarchy` and simply drops
accesses outside its stripe; summing the per-shard counters reproduces
the single-process counters **bit for bit**, for any shard count.

Workers double as workload generators: worker ``w`` owns threads
``t % S == w`` and their rng streams (the same ``RngFactory`` label
derivation as the serial engine, so the streams are identical).  The
per-step protocol, coordinated by :class:`ShardPool` from inside
:meth:`repro.engine.simulator.Simulator.run`:

1. **generate** (parallel) — every worker produces its threads' access
   batches for the step's clock value and ships them to the coordinator;
2. **fault resolution** (serial, coordinator) — page faults resolve in
   the step's thread permutation order against the shared page table,
   frame allocator and SPCD hooks, exactly as in the serial engine;
3. **coherence** (parallel) — the coordinator broadcasts every thread's
   lines/writes/home-nodes plus the permutation, each worker drains its
   stripe in permutation order, and returns per-thread counter deltas;
4. **barrier merge** (coordinator) — shard deltas sum into the exact
   per-batch :class:`CacheStats` the time model needs; the virtual clock
   advances and kernel threads (SPCD injector/evaluator, balancer) fire.

Fault tolerance reuses the supervision idioms of :mod:`repro.engine.pool`
(pipe-EOF crash detection, deadline kills, graceful reaps) adapted to
*stateful* workers: every broadcast is journaled, and a dead worker is
respawned and replayed — the journal deterministically reconstructs its
rng streams, workload cursors and hierarchy state — before the step
continues.  A shard that keeps dying exhausts its attempts and surfaces
as a :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, fields
from multiprocessing import connection as mpc
from multiprocessing import get_all_start_methods, get_context
from time import perf_counter

import numpy as np

from repro.cachesim.hierarchy import CoherentHierarchy
from repro.cachesim.stats import CacheStats
from repro.errors import ConfigurationError, SimulationError
from repro.machine.topology import Machine
from repro.rng import RngFactory
from repro.units import CACHE_LINE_SHIFT
from repro.workloads.base import Workload

__all__ = ["ShardPool", "ShardSpec", "max_shards"]


def max_shards(machine: Machine) -> int:
    """Largest stripe count the machine's cache geometry permits."""
    return min(
        machine.l1_params.num_sets,
        machine.l2_params.num_sets,
        machine.l3_params.num_sets,
    )


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its slice of the simulation."""

    machine: Machine
    workload: Workload
    seed: int
    n_threads: int
    batch_size: int
    shard: int
    n_shards: int
    fast_path: bool
    batch_mesi: bool


def _shard_worker_main(conn, spec: ShardSpec) -> None:  # pragma: no cover - subprocess
    """Worker loop: generate owned threads' batches, drain the owned stripe.

    Messages arrive as pickled tuples (the coordinator journals the exact
    bytes for crash replay): ``("gen", now_ns)``, ``("mesi", order, pus,
    slices_by_tid)`` where each slice is this stripe's pre-partitioned
    ``(lines, writes, homes)`` in original access order, ``("stats",)``
    and ``("close",)``.  Any exception ships to the coordinator as an
    ``("error", message)`` reply before the worker exits.
    """
    try:
        hierarchy = CoherentHierarchy(
            spec.machine, fast_path=spec.fast_path, batch_mesi=spec.batch_mesi
        )
        workload = spec.workload
        rngs = RngFactory(spec.seed)
        owned = list(range(spec.shard, spec.n_threads, spec.n_shards))
        thread_rngs = {t: rngs.rng("workload", t) for t in owned}
        while True:
            msg = pickle.loads(conn.recv_bytes())
            tag = msg[0]
            if tag == "gen":
                now_ns = msg[1]
                out = {}
                for tid in owned:
                    ab = workload.generate(
                        tid, spec.batch_size, now_ns, thread_rngs[tid]
                    )
                    out[tid] = (ab.vaddrs, ab.is_write)
                conn.send(("gen", out))
            elif tag == "mesi":
                _, order, pus, slices_by = msg
                stats = hierarchy.stats
                deltas = []
                zero = None
                for tid in order:
                    sl = slices_by.get(tid)
                    if sl is None:
                        if zero is None:
                            zero = tuple(0 for _ in stats.snapshot())
                        deltas.append(zero)
                        continue
                    lines, writes, homes = sl
                    before = stats.snapshot()
                    hierarchy.access_batch_pu(pus[tid], lines, writes, homes)
                    after = stats.snapshot()
                    deltas.append(tuple(a - b for a, b in zip(after, before)))
                conn.send(("mesi", deltas))
            elif tag == "stats":
                conn.send(("stats", hierarchy.stats))
            elif tag == "close":
                break
            else:  # unknown message: protocol bug, fail loudly
                conn.send(("error", f"unknown message tag {tag!r}"))
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    except BaseException as exc:  # noqa: BLE001 - forwarded to the coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Shard:
    """One live worker: its process, duplex pipe and replay bookkeeping."""

    index: int
    proc: object
    conn: object


class ShardPool:
    """Coordinates ``n_shards`` stripe workers for one simulation run.

    The pool is deterministic state, not policy: the
    :class:`~repro.engine.simulator.Simulator` drives the step protocol
    and owns everything serial (clock, faults, scheduler).  All
    broadcasts are journaled so a crashed worker can be respawned and
    replayed mid-run (``max_respawns`` attempts per worker per call).
    """

    def __init__(
        self,
        machine: Machine,
        workload: Workload,
        *,
        seed: int,
        n_threads: int,
        batch_size: int,
        n_shards: int,
        fast_path: bool = True,
        batch_mesi: bool = True,
        step_timeout_s: "float | None" = 600.0,
        max_respawns: int = 1,
        mp_context=None,
    ) -> None:
        if n_shards < 2:
            raise ConfigurationError("ShardPool needs at least 2 shards")
        if n_shards & (n_shards - 1):
            raise ConfigurationError("n_shards must be a power of two")
        limit = max_shards(machine)
        if n_shards > limit:
            raise ConfigurationError(
                f"n_shards={n_shards} exceeds the machine's smallest cache "
                f"set count ({limit}); stripes would share cache sets and "
                "the sharded run would not be bit-identical"
            )
        self.n_shards = n_shards
        self._specs = [
            ShardSpec(
                machine=machine,
                workload=workload,
                seed=seed,
                n_threads=n_threads,
                batch_size=batch_size,
                shard=s,
                n_shards=n_shards,
                fast_path=fast_path,
                batch_mesi=batch_mesi,
            )
            for s in range(n_shards)
        ]
        self._ctx = mp_context or get_context(
            "fork" if "fork" in get_all_start_methods() else "spawn"
        )
        self._step_timeout_s = step_timeout_s
        self._max_respawns = max_respawns
        #: replay log: one list of per-shard payload bytes per broadcast
        #: (broadcasts that are identical for every shard store one object
        #: ``n_shards`` times — a reference, not a copy)
        self._journal: list[list[bytes]] = []
        self._shards: list[_Shard] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn every worker (idempotent)."""
        if self._shards:
            return
        self._shards = [self._spawn(s) for s in range(self.n_shards)]

    def close(self) -> None:
        """Shut workers down; terminate any that ignore the request."""
        for shard in self._shards:
            try:
                shard.conn.send_bytes(pickle.dumps(("close",), protocol=-1))
            except Exception:
                pass
        for shard in self._shards:
            self._reap(shard)
        self._shards = []

    def __enter__(self) -> "ShardPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn(self, index: int) -> _Shard:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self._specs[index]),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Shard(index=index, proc=proc, conn=parent_conn)

    def _reap(self, shard: _Shard) -> None:
        """Join a worker without ever blocking the run (pool.py idiom)."""
        try:
            shard.conn.close()
        except Exception:
            pass
        shard.proc.join(timeout=5.0)
        if shard.proc.is_alive():  # pragma: no cover - stuck in kernel space
            shard.proc.kill()
            shard.proc.join(timeout=5.0)

    # -- supervised request/response -----------------------------------
    def _respawn_and_replay(self, pos: int) -> _Shard:
        """Fresh worker for slot *pos*, fast-forwarded through the journal.

        Replay feeds every journaled broadcast back in order; the worker's
        generators, workload cursors and hierarchy state are deterministic
        functions of that history, so it rejoins the run bit-identical.
        Replay replies are drained and discarded (their content was already
        consumed when the original worker produced it).
        """
        dead = self._shards[pos]
        dead.proc.terminate()
        self._reap(dead)
        shard = self._spawn(dead.index)
        for entry in self._journal:
            shard.conn.send_bytes(entry[shard.index])
            reply = shard.conn.recv()  # drain; blocks only while replaying
            if reply[0] == "error":
                self._reap(shard)
                raise SimulationError(
                    f"shard {shard.index} failed during replay: {reply[1]}"
                )
        self._shards[pos] = shard
        return shard

    def _roundtrip(self, payloads: "list[bytes]", *, journal: bool) -> list:
        """Send each shard its payload, collect every reply, survive crashes.

        All sends happen *before* any reply is awaited — the workers run
        their phase concurrently; the collection loop is the step barrier.
        A worker that dies or stalls (pipe EOF, reset, or timeout) is
        respawned, fast-forwarded through the journal, re-sent the
        in-flight payload and re-awaited, up to ``max_respawns`` times.
        """
        if not self._shards:
            raise SimulationError("ShardPool is not running (call start())")
        if journal:
            self._journal.append(payloads)
        for pos in range(self.n_shards):
            try:
                self._shards[pos].conn.send_bytes(payloads[pos])
            except (OSError, ValueError):
                pass  # dead pipe: caught (and respawned) by the await below
        replies: list = [None] * self.n_shards
        for pos in range(self.n_shards):
            attempts = 0
            while True:
                shard = self._shards[pos]
                try:
                    if not shard.conn.poll(self._step_timeout_s):
                        raise TimeoutError(
                            f"no reply within {self._step_timeout_s:g}s"
                        )
                    reply = shard.conn.recv()
                except (EOFError, OSError, TimeoutError) as exc:
                    attempts += 1
                    if attempts > self._max_respawns:
                        raise SimulationError(
                            f"shard {shard.index} died and exhausted its "
                            f"{self._max_respawns} respawn(s): {exc}"
                        ) from exc
                    # The journal's last entry is this very broadcast;
                    # replay everything *before* it, then re-send it live
                    # to get a fresh reply.
                    tail = None
                    if journal and self._journal and self._journal[-1] is payloads:
                        tail = self._journal.pop()
                    shard = self._respawn_and_replay(pos)
                    if tail is not None:
                        self._journal.append(tail)
                    shard.conn.send_bytes(payloads[pos])
                    continue
                if reply[0] == "error":
                    raise SimulationError(
                        f"shard {shard.index} failed: {reply[1]}"
                    )
                replies[pos] = reply
                break
        return replies

    # -- step protocol --------------------------------------------------
    def generate(self, now_ns: int) -> dict:
        """Phase 1: every worker generates its threads' batches at *now_ns*.

        Returns ``{tid: (vaddrs, is_write)}`` covering every thread.
        """
        payload = pickle.dumps(("gen", now_ns), protocol=-1)
        batches: dict = {}
        for reply in self._roundtrip([payload] * self.n_shards, journal=True):
            batches.update(reply[1])
        return batches

    def coherence(
        self,
        order: "list[int]",
        pus: dict,
        vaddrs_by: dict,
        writes_by: dict,
        homes_by: dict,
    ) -> "list[tuple[int, ...]]":
        """Phase 3: drain every stripe, return per-thread merged deltas.

        Each thread's batch is partitioned by stripe here (one stable
        argsort per thread) so every worker receives only its own slice,
        in original access order — the coherence payload shrinks by
        ``1/n_shards`` and workers skip the per-batch stripe scan.

        The result is aligned with *order*: element ``i`` is the summed
        :meth:`CacheStats.snapshot` delta of thread ``order[i]``'s batch
        across all shards — exactly the serial engine's per-batch delta.
        """
        n_shards = self.n_shards
        mask = n_shards - 1
        edges = np.arange(n_shards + 1)
        slices: list[dict] = [{} for _ in range(n_shards)]
        for tid in order:
            lines = vaddrs_by[tid] >> CACHE_LINE_SHIFT
            writes = writes_by[tid]
            homes = homes_by[tid]
            stripe = lines & mask
            by = np.argsort(stripe, kind="stable")  # stable: keeps access order
            bounds = np.searchsorted(stripe[by], edges)
            for s in range(n_shards):
                ix = by[bounds[s] : bounds[s + 1]]
                if ix.size:
                    slices[s][tid] = (lines[ix], writes[ix], homes[ix])
        payloads = [
            pickle.dumps(("mesi", order, pus, slices[s]), protocol=-1)
            for s in range(n_shards)
        ]
        replies = self._roundtrip(payloads, journal=True)
        merged = replies[0][1]
        for reply in replies[1:]:
            merged = [
                tuple(a + b for a, b in zip(acc, cur))
                for acc, cur in zip(merged, reply[1])
            ]
        return merged

    def final_stats(self) -> CacheStats:
        """Field-wise sum of every shard's counters (== serial counters)."""
        payload = pickle.dumps(("stats",), protocol=-1)
        total = CacheStats()
        for reply in self._roundtrip([payload] * self.n_shards, journal=False):
            total = total.merged(reply[1])
        return total

    @property
    def journal_bytes(self) -> int:
        """Total size of the replay journal (observability/tests)."""
        return sum(len(p) for entry in self._journal for p in entry)
