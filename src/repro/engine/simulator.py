"""The execution-driven simulator.

One :class:`Simulator` instance runs one workload under one mapping policy.
Per simulation step it lets every thread issue a batch of memory accesses
(threads run concurrently, so the step's duration is the slowest batch),
resolves page faults through the fault pipeline (where SPCD's detector is
hooked), feeds every access to the MESI hierarchy, advances the virtual
clock, and fires due kernel threads (SPCD's injector and evaluator, the
baseline scheduler's balancer).

Sampling semantics: simulating every access of an NPB run is infeasible, so
the access stream is a sample — each simulated access stands for
``time_scale`` real ones.  The clock advances by scaled batch time, so the
10 ms injector period, the temporal window and phase periods are meaningful;
event *counts* (faults, misses) stay raw and are scaled only where physical
units require it (energy).  Ratios such as MPKI are scale-free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable

import numpy as np

from repro.cachesim.hierarchy import CoherentHierarchy
from repro.cachesim.stats import CacheStats
from repro.core.commmatrix import CommunicationMatrix
from repro.core.manager import SpcdConfig, SpcdManager
from repro.engine.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.engine.metrics import TimeModel, TimeParams
from repro.engine.perf import PerfCounters
from repro.engine.policies import Policy
from repro.engine.settings import RunSettings
from repro.errors import ConfigurationError, SimulationError
from repro.kernelsim.clock import VirtualClock
from repro.kernelsim.kthread import TimerWheel
from repro.kernelsim.scheduler import PinnedScheduler
from repro.machine.numa import NumaModel
from repro.machine.topology import Machine, dual_xeon_e5_2650
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.ptreplica import ReplicatedPageTable
from repro.mem.tlb import TlbArray
from repro.obs.events import CacheEpoch, FaultBatchSummary, RunEnd, RunStart
from repro.obs.recorder import JsonlRecorder, TraceRecorder, run_trace_path
from repro.placement import PlacementPolicy, resolve_policy
from repro.rng import RngFactory
from repro.units import CACHE_LINE_SHIFT, PAGE_SHIFT
from repro.workloads.base import Workload
from repro.workloads.trace import TraceCollector

StepCallback = Callable[["Simulator", int, int], None]


@dataclass
class EngineConfig:
    """Simulation parameters."""

    batch_size: int = 256
    steps: int = 400
    #: sampling factor: each simulated access represents this many real ones
    time_scale: float = 1500.0
    time_params: TimeParams = field(default_factory=TimeParams)
    energy_params: EnergyParams = field(default_factory=EnergyParams)
    #: capacity of the flat page table (pages)
    capacity_pages: int = 1 << 17
    collect_trace: bool = False
    #: how the workload's memory is first touched: "serial" pre-faults every
    #: region page from thread 0 before the parallel phase (NPB-OMP
    #: initialises its arrays in the serial master region, so all data lands
    #: on the master's NUMA node); "parallel" leaves demand first-touch to
    #: whichever thread reaches a page first.
    pretouch: str = "serial"

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.steps <= 0 or self.time_scale <= 0:
            raise ConfigurationError("batch_size, steps and time_scale must be positive")
        if self.pretouch not in ("serial", "parallel"):
            raise ConfigurationError("pretouch must be 'serial' or 'parallel'")


@dataclass
class SimulationResult:
    """Everything one run produces (the paper's Table II row, per policy)."""

    workload: str
    policy: str
    exec_time_s: float
    instructions: float
    l2_mpki: float
    l3_mpki: float
    c2c_transactions: int
    c2c_inter: int
    invalidations: int
    proc_energy_j: float
    dram_energy_j: float
    proc_epi_nj: float
    dram_epi_nj: float
    migrations: int
    os_migrations: int
    detection_pct: float
    mapping_pct: float
    first_touch_faults: int
    injected_faults: int
    injected_ratio: float
    stats: CacheStats
    energy: EnergyBreakdown
    detected_matrix: CommunicationMatrix | None = None
    #: host-side wall-clock breakdown of the run (not simulated time)
    perf: PerfCounters | None = None

    def metric(self, name: str) -> float:
        """Uniform numeric access for the analysis layer."""
        return float(getattr(self, name))


class Simulator:
    """Runs one workload under one policy on one machine."""

    def __init__(
        self,
        workload: Workload,
        policy: "PlacementPolicy | str | Policy",
        *,
        machine: Machine | None = None,
        seed: int = 0,
        config: EngineConfig | None = None,
        spcd_config: SpcdConfig | None = None,
        recorder: TraceRecorder | None = None,
        settings: RunSettings | None = None,
    ) -> None:
        self.workload = workload
        #: the typed placement policy; ``policy`` accepts an instance, a
        #: name string, or (deprecated, warns) a legacy ``Policy`` member
        self.placement: PlacementPolicy = resolve_policy(policy)
        #: the policy's stable name (seed derivation, result rows, traces)
        self.policy: str = self.placement.name
        self.machine = machine or dual_xeon_e5_2650()
        self.config = config or EngineConfig()
        self.seed = seed
        self.rngs = RngFactory(seed)
        # Execution-environment knobs (slow reference paths, tracing):
        # an explicit settings object wins; otherwise the environment
        # (RunSettings.from_env()) decides, exactly as before.
        self.settings = settings if settings is not None else RunSettings.from_env()
        # Tracing: an explicit recorder wins; otherwise the settings' trace
        # base enables a JSONL recorder (a NullRecorder or no trace base
        # leaves tracing off, and the hot paths then pay a single None test
        # per fault batch).
        if recorder is None and self.settings.trace:
            recorder = JsonlRecorder(
                run_trace_path(
                    Path(self.settings.trace), workload.name, self.policy, seed
                )
            )
        self.recorder: TraceRecorder | None = recorder if recorder else None

        n = workload.n_threads
        self.clock = VirtualClock()
        # Page-table choice: replication-capable tables are created only
        # when a policy or env knob asks for them, so default runs keep the
        # plain table (and its digests) bit-identical.
        page_table = None
        if self.placement.replicate_pt or self.settings.pt_replicate:
            page_table = ReplicatedPageTable(
                self.config.capacity_pages, self.machine.n_numa_nodes
            )
            if self.settings.pt_replicate:
                # Env-forced replication is active from the first fault;
                # policy-directed replication waits for a PlacementDecision.
                page_table.activate()
        self.address_space = AddressSpace(
            self.config.capacity_pages, page_table=page_table
        )
        workload.setup(self.address_space)
        self.tlbs = TlbArray(self.machine.n_pus)
        frames = FrameAllocator.for_memory(
            self.machine.n_numa_nodes, self.machine.memory_per_node
        )
        self.pipeline = FaultPipeline(
            self.address_space,
            frames,
            self.tlbs,
            node_of_pu=self.machine.numa_node_of,
            scalar_resolve_max=self.settings.batch_cutover_resolve,
        )
        # NUMA-aware page-table-walk charging (REPRO_PLACEMENT_WALK):
        # enabled before the pretouch so the serial init phase homes the
        # page-table directory pages on the master's node — exactly the
        # all-walks-remote starting point Phoenix/Mitosis address.
        if self.settings.placement_walk:
            numa = NumaModel(self.machine)
            local_ns = (
                self.settings.placement_walk_local_ns
                if self.settings.placement_walk_local_ns is not None
                else numa.pt_walk_level_ns(local=True)
            )
            remote_ns = (
                self.settings.placement_walk_remote_ns
                if self.settings.placement_walk_remote_ns is not None
                else numa.pt_walk_level_ns(local=False)
            )
            self.pipeline.enable_numa_walk(local_ns, remote_ns)
        #: REPRO_SLOW_SPCD=1 keeps the per-fault reference path end to end
        #: (scalar resolution loop + dict detection engine)
        self._batch_faults = not self.settings.slow_spcd
        self.hierarchy = CoherentHierarchy(
            self.machine,
            fast_path=not self.settings.slow_hierarchy,
            batch_mesi=not self.settings.slow_mesi,
        )
        self.time_model = TimeModel(self.machine, params=self.config.time_params)
        self.energy_model = EnergyModel(self.machine, params=self.config.energy_params)
        self.wheel = TimerWheel()
        self.scheduler = self.placement.make_scheduler(
            self.machine, workload, self.rngs.rng("policy")
        )
        # Serial pretouch runs before SPCD hooks the fault pipeline, exactly
        # as an application's init phase precedes the detector's attachment.
        if self.config.pretouch == "serial":
            self._pretouch_serial()
        self.manager: SpcdManager | None = None
        if self.placement.uses_spcd:
            if not isinstance(self.scheduler, PinnedScheduler):
                raise SimulationError("SPCD requires a pinnable scheduler")
            # Settings flow into the SPCD config, but only where the config
            # left the knob at its default — an explicit SpcdConfig wins, and
            # default runs keep default semantics (and digests) untouched.
            effective_spcd = spcd_config or SpcdConfig()
            overrides: dict[str, object] = {}
            if self.settings.sparse_comm and not effective_spcd.sparse_matrix:
                overrides["sparse_matrix"] = True
            if effective_spcd.hierarchical_min_n is None:
                overrides["hierarchical_min_n"] = self.settings.map_hierarchical_min_n
            if overrides:
                effective_spcd = dataclasses.replace(effective_spcd, **overrides)
            self.manager = SpcdManager(
                self.machine,
                n,
                self.pipeline,
                self.scheduler,
                self.rngs.rng("injector"),
                tlbs=self.tlbs,
                timer_wheel=self.wheel,
                config=effective_spcd,
                recorder=self.recorder,
                scalar_touch_max=self.settings.batch_cutover_touch,
                placement=self.placement,
            )
        self.trace = TraceCollector() if self.config.collect_trace else None
        self._thread_rngs = [self.rngs.rng("workload", t) for t in range(n)]
        self._sched_rng = self.rngs.rng("scheduler")
        self._order_rng = self.rngs.rng("step-order")
        self.instructions = 0.0
        self._accounted_overhead_ns = 0.0
        self.steps_run = 0
        self.perf = PerfCounters()
        #: REPRO_SIM_SHARDS>1: merged shard counters, fetched once the
        #: sharded run finishes (the coordinator's own hierarchy stays idle)
        self._merged_stats: CacheStats | None = None
        #: live ShardPool while a sharded run() is in flight (observability)
        self._pool = None

    def _stats(self) -> CacheStats:
        """The run's cache counters, whichever engine produced them."""
        return self._merged_stats if self._merged_stats is not None else self.hierarchy.stats

    def _pretouch_serial(self) -> None:
        """Fault in every region page from thread 0 (serial init phase)."""
        pu0 = int(self.scheduler.pu_of(0))
        if self._batch_faults:
            # One bulk first-touch mapping per region: identical page-table
            # state, frames and counters as the per-VPN reference loop.
            for region in self.address_space.regions():
                vpns = region.vpns()
                if vpns.size == 0:
                    continue
                self.pipeline.handle_fault_batch(
                    0,
                    pu0,
                    vpns << PAGE_SHIFT,
                    np.ones(vpns.size, dtype=bool),
                    now_ns=self.clock.now_ns,
                )
            return
        for region in self.address_space.regions():
            for vpn in region.vpns():
                self.pipeline.handle_fault(
                    0,
                    pu0,
                    int(vpn) << PAGE_SHIFT,
                    is_write=True,
                    now_ns=self.clock.now_ns,
                )

    # ------------------------------------------------------------------
    def run(self, step_callback: StepCallback | None = None) -> SimulationResult:
        """Execute the configured number of steps and return the metrics."""
        cfg = self.config
        rec = self.recorder
        if rec is not None:
            rec.emit(
                RunStart(
                    workload=self.workload.name,
                    policy=self.policy,
                    seed=self.seed,
                    n_threads=self.workload.n_threads,
                    steps=cfg.steps,
                    batch_size=cfg.batch_size,
                )
            )
            # The serial pretouch phase faulted before run() — summarise it
            # as a step -1 batch so fault totals reconstruct from the trace.
            if self.pipeline.total_faults:
                rec.emit(
                    FaultBatchSummary(
                        step=-1,
                        now_ns=self.clock.now_ns,
                        thread_id=0,
                        pu_id=int(self.scheduler.pu_of(0)),
                        first_touch=self.pipeline.first_touch_faults,
                        injected=self.pipeline.injected_faults,
                        fault_time_ns=self.pipeline.fault_time_ns,
                        hook_time_ns=self.pipeline.hook_time_ns,
                    )
                )
        t0 = perf_counter()
        pool = None
        try:
            if self.settings.sim_shards > 1:
                from repro.engine.parsim import ShardPool

                pool = ShardPool(
                    self.machine,
                    self.workload,
                    seed=self.seed,
                    n_threads=self.workload.n_threads,
                    batch_size=cfg.batch_size,
                    n_shards=self.settings.sim_shards,
                    fast_path=not self.settings.slow_hierarchy,
                    batch_mesi=not self.settings.slow_mesi,
                )
                pool.start()
                self._pool = pool
            for step in range(cfg.steps):
                if pool is not None:
                    self._step_sharded(pool)
                else:
                    self._step()
                if step_callback is not None:
                    step_callback(self, step, self.clock.now_ns)
            if pool is not None:
                self._merged_stats = pool.final_stats()
        finally:
            if pool is not None:
                pool.close()
                self._pool = None
        self.perf.wall_s += perf_counter() - t0
        if self.manager is not None:
            self.perf.match_s = self.manager.map_wall_s
        table = self.address_space.page_table
        self.perf.pt_walk_levels_local = table.walk_levels_local
        self.perf.pt_walk_levels_remote = table.walk_levels_remote
        result = self._result()
        if rec is not None:
            self._emit_run_end(rec, result)
            rec.close()
        return result

    def _step(self) -> None:
        cfg = self.config
        workload = self.workload
        hierarchy = self.hierarchy
        table = self.address_space.page_table
        now = self.clock.now_ns
        batch = cfg.batch_size
        scale = cfg.time_scale

        placement = self.scheduler.placement()
        perf = self.perf
        step_time_ns = 0.0
        # Randomised thread order: with a fixed order the same thread would
        # always be first to re-fault on a cleared shared page, so its
        # partners would never be recorded in the sharing table.  Real
        # hardware interleaves threads arbitrarily.
        for tid in self._order_rng.permutation(workload.n_threads):
            tid = int(tid)
            pu = int(placement[tid])
            t_gen = perf_counter()
            ab = workload.generate(tid, batch, now, self._thread_rngs[tid])
            perf.workload_s += perf_counter() - t_gen
            vaddrs = ab.vaddrs
            writes = ab.is_write
            if self.trace is not None:
                self.trace.record(tid, now, vaddrs, writes)
            vpns = vaddrs >> PAGE_SHIFT
            fault_ns = self._handle_thread_faults(tid, pu, vaddrs, vpns, writes, now)

            homes = table.home_nodes(vpns)
            table.mark_accessed_batch(vpns)
            lines = vaddrs >> CACHE_LINE_SHIFT
            stats_before = hierarchy.stats.snapshot()
            t_hier = perf_counter()
            hierarchy.access_batch_pu(pu, lines, writes, homes)
            perf.hierarchy_s += perf_counter() - t_hier
            perf.accesses += batch
            delta = hierarchy.stats.delta_since(stats_before)

            instructions = batch * workload.instructions_per_access
            self.instructions += instructions
            self.scheduler.tasks[tid].instructions += int(instructions)
            batch_ns = scale * self.time_model.batch_time_ns(instructions, delta)
            batch_ns += fault_ns
            step_time_ns = max(step_time_ns, batch_ns)

        self._advance_step(step_time_ns)

    def _step_sharded(self, pool) -> None:
        """One step through the :class:`~repro.engine.parsim.ShardPool`.

        Same semantics as :meth:`_step`, re-ordered around the two parallel
        phases: workers generate every thread's batch up front, the
        coordinator resolves faults serially in the step's permutation order
        (computing each thread's home nodes at its turn, exactly as the
        serial loop does), then one coherence round trip drains all stripes
        and returns the per-thread counter deltas the time model needs.
        """
        cfg = self.config
        workload = self.workload
        table = self.address_space.page_table
        now = self.clock.now_ns
        batch = cfg.batch_size
        scale = cfg.time_scale
        placement = self.scheduler.placement()
        perf = self.perf

        t_gen = perf_counter()
        batches = pool.generate(now)
        perf.workload_s += perf_counter() - t_gen

        order = [int(t) for t in self._order_rng.permutation(workload.n_threads)]
        pus = {tid: int(placement[tid]) for tid in order}
        vaddrs_by: dict = {}
        writes_by: dict = {}
        homes_by: dict = {}
        fault_ns_by: dict = {}
        for tid in order:
            vaddrs, writes = batches[tid]
            if self.trace is not None:
                self.trace.record(tid, now, vaddrs, writes)
            vpns = vaddrs >> PAGE_SHIFT
            fault_ns_by[tid] = self._handle_thread_faults(
                tid, pus[tid], vaddrs, vpns, writes, now
            )
            homes_by[tid] = table.home_nodes(vpns)
            table.mark_accessed_batch(vpns)
            vaddrs_by[tid] = vaddrs
            writes_by[tid] = writes

        t_coh = perf_counter()
        deltas = pool.coherence(order, pus, vaddrs_by, writes_by, homes_by)
        perf.coherence_s += perf_counter() - t_coh

        step_time_ns = 0.0
        for tid, delta_tuple in zip(order, deltas):
            delta = CacheStats(*delta_tuple)
            perf.accesses += batch
            instructions = batch * workload.instructions_per_access
            self.instructions += instructions
            self.scheduler.tasks[tid].instructions += int(instructions)
            batch_ns = scale * self.time_model.batch_time_ns(instructions, delta)
            batch_ns += fault_ns_by[tid]
            step_time_ns = max(step_time_ns, batch_ns)

        self._advance_step(step_time_ns)

    def _handle_thread_faults(
        self, tid: int, pu: int, vaddrs, vpns, writes, now: int
    ) -> float:
        """Resolve one thread's faulting accesses; returns the fault charge (ns)."""
        pipeline = self.pipeline
        perf = self.perf
        t_fault = perf_counter()
        fault_ns_0 = pipeline.fault_time_ns + pipeline.hook_time_ns
        hook_wall_0 = pipeline.hook_wall_s
        fault_mask = pipeline.faulting_mask(vpns)
        had_faults = bool(fault_mask.any())
        ft_0 = pipeline.first_touch_faults
        inj_0 = pipeline.injected_faults
        if had_faults:
            if self._batch_faults:
                fb = pipeline.handle_fault_batch(
                    tid,
                    pu,
                    vaddrs[fault_mask],
                    writes[fault_mask],
                    now_ns=now,
                )
                perf.faults += fb.n_faults
            else:
                fault_vpns, first_idx = np.unique(vpns[fault_mask], return_index=True)
                fault_positions = np.flatnonzero(fault_mask)[first_idx]
                for pos in fault_positions:
                    pipeline.handle_fault(
                        tid,
                        pu,
                        int(vaddrs[pos]),
                        is_write=bool(writes[pos]),
                        now_ns=now,
                    )
                perf.faults += len(fault_positions)
        fault_ns = (pipeline.fault_time_ns + pipeline.hook_time_ns) - fault_ns_0
        perf.detect_s += pipeline.hook_wall_s - hook_wall_0
        perf.fault_s += perf_counter() - t_fault
        if had_faults and self.recorder is not None:
            self.recorder.emit(
                FaultBatchSummary(
                    step=self.steps_run,
                    now_ns=now,
                    thread_id=tid,
                    pu_id=pu,
                    first_touch=pipeline.first_touch_faults - ft_0,
                    injected=pipeline.injected_faults - inj_0,
                    fault_time_ns=pipeline.fault_time_ns,
                    hook_time_ns=pipeline.hook_time_ns,
                )
            )
        return fault_ns

    def _advance_step(self, step_time_ns: float) -> None:
        """Shared step tail: clock advance, kernel threads, SPCD charging."""
        self.clock.advance(step_time_ns)
        # Charge SPCD's asynchronous work (injection walks, mapping,
        # migrations) as it accrues.
        t_spcd = perf_counter()
        overhead_now = self._spcd_async_overhead_ns()
        self.wheel.tick(self.clock.now_ns)
        self.scheduler.on_quantum(self.clock.now_ns, self._sched_rng)
        overhead_delta = self._spcd_async_overhead_ns() - overhead_now
        if overhead_delta > 0:
            self.clock.advance(overhead_delta)
        self.perf.spcd_s += perf_counter() - t_spcd
        self.steps_run += 1

    def _emit_run_end(self, rec: TraceRecorder, result: SimulationResult) -> None:
        """Seal the trace: cache epoch snapshot + run summary (PerfCounters)."""
        rec.emit(
            CacheEpoch(
                step=self.steps_run,
                now_ns=self.clock.now_ns,
                stats=self._stats().as_dict(),
            )
        )
        detection_ns = mapping_ns = replication_ns = 0.0
        if self.manager is not None:
            detection_ns = self.manager.detection_time_ns()
            mapping_ns = self.manager.mapping_time_ns()
            replication_ns = self.manager.replication_time_ns()
        rec.emit(
            RunEnd(
                total_ns=float(self.clock.now_ns),
                steps_run=self.steps_run,
                migrations=result.migrations,
                os_migrations=result.os_migrations,
                first_touch_faults=result.first_touch_faults,
                injected_faults=result.injected_faults,
                detection_ns=detection_ns,
                mapping_ns=mapping_ns,
                detection_pct=result.detection_pct,
                mapping_pct=result.mapping_pct,
                replication_ns=replication_ns,
                perf=self.perf.as_dict(),
                perf_other_s=self.perf.other_s,
            )
        )

    def _spcd_async_overhead_ns(self) -> float:
        if self.manager is None:
            return 0.0
        total = self.manager.injector.inject_time_ns + self.manager.mapping_time_ns()
        if self.manager.data_mapper is not None:
            total += self.manager.data_mapper.stats.copy_time_ns
        return total

    # ------------------------------------------------------------------
    def _result(self) -> SimulationResult:
        cfg = self.config
        stats = self._stats()
        total_ns = float(self.clock.now_ns)
        instructions = self.instructions
        energy = self.energy_model.compute(
            total_ns, instructions, stats, scale=cfg.time_scale
        )
        scaled_instr = instructions * cfg.time_scale
        detection_pct = mapping_pct = 0.0
        migrations = 0
        detected: CommunicationMatrix | None = None
        if self.manager is not None:
            detection_pct = 100.0 * self.manager.detection_time_ns() / total_ns
            mapping_pct = 100.0 * self.manager.mapping_time_ns() / total_ns
            migrations = self.manager.migration_count
            detected = self.manager.detector.snapshot_matrix()
        os_migrations = self.scheduler.total_migrations()
        return SimulationResult(
            workload=self.workload.name,
            policy=self.policy,
            exec_time_s=total_ns * 1e-9,
            instructions=instructions,
            l2_mpki=stats.mpki(2, int(instructions)),
            l3_mpki=stats.mpki(3, int(instructions)),
            c2c_transactions=stats.c2c_total,
            c2c_inter=stats.c2c_inter,
            invalidations=stats.invalidations,
            proc_energy_j=energy.processor_j,
            dram_energy_j=energy.dram_j,
            proc_epi_nj=energy.proc_epi_nj(scaled_instr),
            dram_epi_nj=energy.dram_epi_nj(scaled_instr),
            migrations=migrations,
            os_migrations=os_migrations,
            detection_pct=detection_pct,
            mapping_pct=mapping_pct,
            first_touch_faults=self.pipeline.first_touch_faults,
            injected_faults=self.pipeline.injected_faults,
            injected_ratio=self.pipeline.injected_fraction(),
            stats=stats,
            energy=energy,
            detected_matrix=detected,
            perf=self.perf,
        )
