"""Execution-driven simulation engine.

Interleaves per-thread access streams over the machine model, drives the
fault pipeline, the MESI hierarchy and the SPCD kernel threads in virtual
time, and produces the paper's metrics: execution time, L2/L3 MPKI,
cache-to-cache transactions, processor and DRAM energy, and SPCD overheads.
"""

from repro.engine.cache import ResultCache, code_version
from repro.engine.energy import EnergyModel, EnergyParams
from repro.engine.gridrunner import CellFailure, GridResult, run_cell, run_grid
from repro.engine.metrics import TimeModel, TimeParams
from repro.engine.policies import Policy
from repro.engine.runner import (
    MetricStats,
    run_replicated,
    run_single,
    summarize,
)
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator

__all__ = [
    "CellFailure",
    "EnergyModel",
    "EnergyParams",
    "EngineConfig",
    "GridResult",
    "MetricStats",
    "Policy",
    "ResultCache",
    "RunSettings",
    "SimulationResult",
    "Simulator",
    "TimeModel",
    "TimeParams",
    "code_version",
    "run_cell",
    "run_grid",
    "run_replicated",
    "run_single",
    "summarize",
]
