"""Energy model (stands in for the paper's RAPL measurements).

Processor energy = per-socket static power x time + dynamic energy per
instruction + per-event energies for cache traffic and interconnect
transfers.  DRAM energy = per-node background power x time + per-access
dynamic energy (NUMA-distance dependent).  The model couples energy to
execution time *and* to interconnect/DRAM traffic, which is exactly the
structure behind the paper's observation that mapping saves more DRAM energy
than execution time on domain-decomposition codes (Figs. 12-15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.stats import CacheStats
from repro.machine.interconnect import InterconnectModel
from repro.machine.numa import NumaModel
from repro.machine.topology import CommDistance, Machine
from repro.units import CACHE_LINE_SIZE


@dataclass(frozen=True)
class EnergyParams:
    """Energy-model constants (SandyBridge-era magnitudes)."""

    #: leakage + uncore power per socket, watts
    static_w_per_socket: float = 25.0
    #: dynamic core energy per instruction, nanojoules
    epi_dynamic_nj: float = 0.35
    #: per-event cache energies, nanojoules
    l2_access_nj: float = 0.03
    l3_access_nj: float = 0.45
    #: DRAM background (refresh/standby) power per node, watts
    dram_background_w_per_node: float = 0.6
    #: DRAM dynamic energy per line transfer, nanojoules
    dram_access_nj: float = 18.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules, split the way the paper reports them."""

    processor_j: float
    dram_j: float
    processor_static_j: float
    processor_dynamic_j: float
    dram_background_j: float
    dram_dynamic_j: float

    def proc_epi_nj(self, instructions: float) -> float:
        """Processor energy per instruction in nJ (Fig. 14 metric)."""
        return 1e9 * self.processor_j / instructions if instructions else 0.0

    def dram_epi_nj(self, instructions: float) -> float:
        """DRAM energy per instruction in nJ (Fig. 15 metric)."""
        return 1e9 * self.dram_j / instructions if instructions else 0.0


class EnergyModel:
    """Computes run energy from total time and aggregate cache statistics."""

    def __init__(
        self,
        machine: Machine,
        interconnect: InterconnectModel | None = None,
        numa: NumaModel | None = None,
        params: EnergyParams | None = None,
    ) -> None:
        self.machine = machine
        self.interconnect = interconnect or InterconnectModel()
        self.numa = numa or NumaModel(machine, self.interconnect)
        self.params = params or EnergyParams()

    def compute(
        self, total_time_ns: float, instructions: float, stats: CacheStats, scale: float = 1.0
    ) -> EnergyBreakdown:
        """Energy for a run.

        Args:
            total_time_ns: virtual wall time of the run.
            instructions: instructions retired (unscaled).
            stats: aggregate cache statistics (unscaled event counts).
            scale: sampling factor — each simulated event/instruction stands
                for *scale* real ones (see ``EngineConfig.time_scale``).
        """
        p = self.params
        seconds = total_time_ns * 1e-9
        ic = self.interconnect

        static_j = p.static_w_per_socket * self.machine.n_sockets * seconds
        ring_pj = ic.transfer_pj(CommDistance.SAME_SOCKET, CACHE_LINE_SIZE)
        qpi_pj = ic.transfer_pj(CommDistance.CROSS_SOCKET, CACHE_LINE_SIZE)
        dynamic_nj = scale * (
            instructions * p.epi_dynamic_nj
            + (stats.l2_hits + stats.l2_misses) * p.l2_access_nj
            + (stats.l3_hits + stats.l3_misses) * p.l3_access_nj
            + (stats.l3_hits + stats.c2c_intra) * ring_pj * 1e-3
            + (stats.c2c_inter + stats.dram_reads_remote) * qpi_pj * 1e-3
            + stats.invalidations * ring_pj * 1e-3
        )
        dynamic_j = dynamic_nj * 1e-9

        dram_background_j = (
            p.dram_background_w_per_node * self.machine.n_numa_nodes * seconds
        )
        dram_dynamic_j = (
            scale * stats.dram_accesses * p.dram_access_nj * 1e-9
        )
        return EnergyBreakdown(
            processor_j=static_j + dynamic_j,
            dram_j=dram_background_j + dram_dynamic_j,
            processor_static_j=static_j,
            processor_dynamic_j=dynamic_j,
            dram_background_j=dram_background_j,
            dram_dynamic_j=dram_dynamic_j,
        )
