"""Execution-time model.

Time per batch = compute time (instructions x base CPI) plus exposed memory
stall time derived from the cache-event deltas of that batch.  L1 hits are
considered pipelined into the base CPI (as on real out-of-order cores);
deeper events pay their level's latency, cache-to-cache transfers pay the
interconnect, and DRAM accesses pay NUMA-dependent latency.  A memory-level-
parallelism factor exposes only part of each stall, which keeps relative
magnitudes (the paper's misses fall much faster than its execution time —
Fig. 8 vs. Figs. 9-11 — precisely because stalls overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.stats import CacheStats
from repro.machine.interconnect import InterconnectModel
from repro.machine.numa import NumaModel
from repro.machine.topology import CommDistance, Machine


@dataclass(frozen=True)
class TimeParams:
    """Tunables of the time model."""

    cpi_base: float = 0.8
    #: fraction of memory stall time actually exposed (1 - overlap by MLP)
    stall_exposure: float = 0.6


class TimeModel:
    """Computes batch durations from instruction counts and cache deltas."""

    def __init__(
        self,
        machine: Machine,
        interconnect: InterconnectModel | None = None,
        numa: NumaModel | None = None,
        params: TimeParams | None = None,
    ) -> None:
        self.machine = machine
        self.interconnect = interconnect or InterconnectModel()
        self.numa = numa or NumaModel(machine, self.interconnect)
        self.params = params or TimeParams()
        self.cycle_ns = 1.0 / machine.frequency_ghz
        # Pre-compute per-event latencies.
        ic = self.interconnect
        self._lat_l2 = machine.l2_params.latency_ns
        self._lat_l3 = machine.l3_params.latency_ns + ic.transfer_ns(CommDistance.SAME_SOCKET)
        self._lat_c2c_intra = machine.l3_params.latency_ns + 2 * ic.transfer_ns(
            CommDistance.SAME_SOCKET
        )
        self._lat_c2c_inter = machine.l3_params.latency_ns + ic.transfer_ns(
            CommDistance.CROSS_SOCKET
        )
        self._lat_dram_local = machine.l3_params.latency_ns + self.numa.dram_latency_ns + ic.transfer_ns(
            CommDistance.SAME_SOCKET
        )
        self._lat_dram_remote = machine.l3_params.latency_ns + self.numa.dram_latency_ns + ic.transfer_ns(
            CommDistance.CROSS_SOCKET
        )

    def compute_time_ns(self, instructions: float) -> float:
        """Pure compute time of *instructions* at the base CPI."""
        return instructions * self.params.cpi_base * self.cycle_ns

    def stall_time_ns(self, delta: CacheStats) -> float:
        """Exposed memory stall time for one batch's cache-event delta.

        Hits counted at a level already exclude deeper events (an L2 hit is
        not also an L3 hit), so the sum is not double counted.  DRAM reads
        and cache-to-cache transfers replace the plain L3-hit latency for
        those accesses.
        """
        stall = (
            delta.l2_hits * self._lat_l2
            + (delta.l3_hits - delta.c2c_intra) * self._lat_l3
            + delta.c2c_intra * self._lat_c2c_intra
            + delta.c2c_inter * self._lat_c2c_inter
            + delta.dram_reads_local * self._lat_dram_local
            + delta.dram_reads_remote * self._lat_dram_remote
        )
        return max(0.0, stall) * self.params.stall_exposure

    def batch_time_ns(self, instructions: float, delta: CacheStats) -> float:
        """Total modelled time of one batch."""
        return self.compute_time_ns(instructions) + self.stall_time_ns(delta)
