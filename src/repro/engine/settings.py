"""Typed run configuration — the single home of every ``REPRO_*`` env read.

Historically the grid runner, the trace recorder and the slow-path
selectors each read their own environment variable at their own call
site, so the set of knobs that shaped a run was scattered across four
modules.  :class:`RunSettings` consolidates them: a frozen dataclass
holding every execution knob, built either explicitly (library use) or
from the environment via :meth:`RunSettings.from_env` (CLI / CI use).
No other module in ``src/repro`` may read a ``REPRO_*`` variable —
``tools/check_env_reads.py`` enforces the ban in CI.

Resolution order used by :func:`repro.engine.gridrunner.run_grid` and
friends: an explicit keyword argument beats a field of an explicit
``settings=`` object, which beats the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigurationError

__all__ = [
    "ENV_BATCH_CUTOVER_RESOLVE",
    "ENV_BATCH_CUTOVER_TOUCH",
    "ENV_CELL_RETRIES",
    "ENV_CELL_TIMEOUT",
    "ENV_GRID_STRICT",
    "ENV_GRID_WORKERS",
    "ENV_MAP_HIERARCHICAL_MIN_N",
    "ENV_PLACEMENT_WALK",
    "ENV_PLACEMENT_WALK_LOCAL_NS",
    "ENV_PLACEMENT_WALK_REMOTE_NS",
    "ENV_PT_REPLICATE",
    "ENV_RESULT_CACHE",
    "ENV_RETRY_BACKOFF",
    "ENV_SERVE_CREDIT_WINDOW",
    "ENV_SERVE_EVAL_EVERY",
    "ENV_SERVE_HOST",
    "ENV_SERVE_MAX_SESSIONS",
    "ENV_SERVE_MAX_TABLE_MB",
    "ENV_SERVE_METRICS_PORT",
    "ENV_SERVE_PORT",
    "ENV_SERVE_SHARDS",
    "ENV_SERVE_WORKERS",
    "ENV_SIM_SHARDS",
    "ENV_SLOW_HIERARCHY",
    "ENV_SLOW_MESI",
    "ENV_SLOW_SPCD",
    "ENV_SPARSE_COMM",
    "ENV_TRACE",
    "RunSettings",
    "available_cpus",
]

#: process-pool size for grid execution (0/1 = serial, in-process)
ENV_GRID_WORKERS = "REPRO_GRID_WORKERS"
#: result-cache directory (empty/unset = caching disabled)
ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"
#: trace sink: a ``.jsonl`` file or a directory (empty/unset = tracing off)
ENV_TRACE = "REPRO_TRACE"
#: select the per-access reference cache hierarchy
ENV_SLOW_HIERARCHY = "REPRO_SLOW_HIERARCHY"
#: select the per-fault reference fault/SPCD path
ENV_SLOW_SPCD = "REPRO_SLOW_SPCD"
#: select the scalar reference MESI drain (keep Legacy L2s, per-run loops)
ENV_SLOW_MESI = "REPRO_SLOW_MESI"
#: coherence-stripe worker processes per simulation (1 = single-process)
ENV_SIM_SHARDS = "REPRO_SIM_SHARDS"
#: largest sharing-table touch batch handled by the scalar path
ENV_BATCH_CUTOVER_TOUCH = "REPRO_BATCH_CUTOVER_TOUCH"
#: largest fault batch resolved by the scalar path
ENV_BATCH_CUTOVER_RESOLVE = "REPRO_BATCH_CUTOVER_RESOLVE"
#: per-cell wall-clock timeout in seconds (unset = no timeout)
ENV_CELL_TIMEOUT = "REPRO_CELL_TIMEOUT_S"
#: retries after a cell's first failed attempt (default 2)
ENV_CELL_RETRIES = "REPRO_CELL_RETRIES"
#: base of the exponential retry backoff, seconds (default 0.25)
ENV_RETRY_BACKOFF = "REPRO_RETRY_BACKOFF_S"
#: strict mode: a cell that exhausts retries fails the whole sweep
ENV_GRID_STRICT = "REPRO_GRID_STRICT"
#: mapping-service bind address
ENV_SERVE_HOST = "REPRO_SERVE_HOST"
#: mapping-service port (0 = ephemeral, printed on stdout at startup)
ENV_SERVE_PORT = "REPRO_SERVE_PORT"
#: plaintext /metrics HTTP port (unset = disabled, 0 = ephemeral)
ENV_SERVE_METRICS_PORT = "REPRO_SERVE_METRICS_PORT"
#: maximum concurrently admitted sessions
ENV_SERVE_MAX_SESSIONS = "REPRO_SERVE_MAX_SESSIONS"
#: per-tenant detection-state memory cap, MiB
ENV_SERVE_MAX_TABLE_MB = "REPRO_SERVE_MAX_TABLE_MB"
#: sharing-table shards per session
ENV_SERVE_SHARDS = "REPRO_SERVE_SHARDS"
#: events between two mapping evaluations of a session
ENV_SERVE_EVAL_EVERY = "REPRO_SERVE_EVAL_EVERY"
#: credit window granted to each client, in events
ENV_SERVE_CREDIT_WINDOW = "REPRO_SERVE_CREDIT_WINDOW"
#: detection worker processes behind the serve router (1 = single-process)
ENV_SERVE_WORKERS = "REPRO_SERVE_WORKERS"
#: charge NUMA-aware page-table-walk latency on every fault
ENV_PLACEMENT_WALK = "REPRO_PLACEMENT_WALK"
#: per-level walk latency when the directory page is node-local, ns
ENV_PLACEMENT_WALK_LOCAL_NS = "REPRO_PLACEMENT_WALK_LOCAL_NS"
#: per-level walk latency when the directory page is remote, ns
ENV_PLACEMENT_WALK_REMOTE_NS = "REPRO_PLACEMENT_WALK_REMOTE_NS"
#: force per-node page-table replication from the first fault on
ENV_PT_REPLICATE = "REPRO_PT_REPLICATE"
#: store detection matrices sparsely (dict-of-rows, digest-identical)
ENV_SPARSE_COMM = "REPRO_SPARSE_COMM"
#: thread count at which mapping auto-switches from Edmonds matching to
#: the scalable hierarchical partitioner
ENV_MAP_HIERARCHICAL_MIN_N = "REPRO_MAP_HIERARCHICAL_MIN_N"

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("", "0", "false", "no", "off")


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _get(environ: "dict[str, str] | None", name: str) -> str:
    source = os.environ if environ is None else environ
    return source.get(name, "").strip()


def _env_bool(environ: "dict[str, str] | None", name: str) -> bool:
    raw = _get(environ, name)
    if raw.lower() in _TRUE:
        return True
    if raw.lower() in _FALSE:
        return False
    raise ConfigurationError(f"bad {name} value {raw!r} (expected a boolean flag)")


def _env_int(environ: "dict[str, str] | None", name: str, default: int) -> int:
    raw = _get(environ, name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"bad {name} value {raw!r}") from exc


def _env_float(
    environ: "dict[str, str] | None", name: str, default: "float | None"
) -> "float | None":
    raw = _get(environ, name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"bad {name} value {raw!r}") from exc


@dataclass(frozen=True)
class RunSettings:
    """Every knob shaping how experiments execute, in one frozen object.

    Construct directly for programmatic use (fields are validated), or
    with :meth:`from_env` to honor the ``REPRO_*`` environment.  Instances
    are immutable; derive variants with :meth:`with_overrides`.
    """

    #: process-pool size for grid execution; 1 = serial, in-process
    workers: int = 1
    #: result-cache directory; ``None`` disables the on-disk cache
    cache_dir: "str | None" = None
    #: trace sink (``.jsonl`` file or directory); ``None`` disables tracing
    trace: "str | None" = None
    #: run the per-access reference cache hierarchy (differential testing)
    slow_hierarchy: bool = False
    #: run the per-fault reference fault/SPCD path (differential testing)
    slow_spcd: bool = False
    #: run the scalar reference MESI drain (differential testing)
    slow_mesi: bool = False
    #: coherence-stripe worker processes per simulation; 1 = single-process
    sim_shards: int = 1
    #: batches of at most this many sharing-table touches stay scalar
    batch_cutover_touch: int = 12
    #: fault batches of at most this many faults stay scalar
    batch_cutover_resolve: int = 4
    #: per-cell wall-clock timeout in seconds; ``None`` = no timeout
    cell_timeout_s: "float | None" = None
    #: retries after a cell's first failed attempt (0 = fail immediately)
    cell_retries: int = 2
    #: base of the exponential retry backoff (attempt *n* waits
    #: ``retry_backoff_s * 2**(n-1)`` seconds)
    retry_backoff_s: float = 0.25
    #: strict mode: a cell that exhausts retries raises
    #: :class:`~repro.errors.GridExecutionError` instead of degrading to a
    #: :class:`~repro.engine.gridrunner.CellFailure` entry
    strict: bool = False
    #: mapping-service bind address (``python -m repro.serve``)
    serve_host: str = "127.0.0.1"
    #: mapping-service port; 0 binds an ephemeral port
    serve_port: int = 0
    #: plaintext ``/metrics`` HTTP port; ``None`` disables the listener,
    #: 0 binds an ephemeral port
    serve_metrics_port: "int | None" = None
    #: maximum concurrently admitted serve sessions
    serve_max_sessions: int = 64
    #: per-tenant detection-state memory cap in MiB
    serve_max_table_mb: float = 64.0
    #: sharing-table shards per serve session
    serve_shards: int = 4
    #: events between two mapping evaluations of a serve session
    serve_eval_every: int = 8192
    #: per-client send window, in events (credit-based backpressure)
    serve_credit_window: int = 65536
    #: detection worker processes behind the serve router; 1 runs the
    #: classic single-process server (no router tier).  Deliberately NOT
    #: capped at :func:`available_cpus` — routed parity tests and drills
    #: legitimately oversubscribe a small host.
    serve_workers: int = 1
    #: charge NUMA-aware per-level page-table-walk latency on every fault
    #: (the Fig. 16 walk split); off keeps flat-cost digests bit-identical
    placement_walk: bool = False
    #: per-level walk latency override when the directory page is local;
    #: ``None`` derives it from the machine's :class:`NumaModel`
    placement_walk_local_ns: "float | None" = None
    #: per-level walk latency override when the directory page is remote;
    #: ``None`` derives it from the machine's :class:`NumaModel`
    placement_walk_remote_ns: "float | None" = None
    #: activate per-node page-table replicas from the first fault on
    #: (policy-independent Mitosis baseline; ``spcd-replicated`` instead
    #: replicates when its first placement decision directs it)
    pt_replicate: bool = False
    #: store detection matrices as :class:`~repro.graphs.sparse.SparseCommMatrix`
    #: (bit-identical digests; O(nnz) memory and mapper input at scale)
    sparse_comm: bool = False
    #: thread count at which the SPCD manager auto-selects the scalable
    #: hierarchical mapper over Edmonds matching (paper-scale runs — and
    #: their digests — sit below the default and are untouched)
    map_hierarchical_min_n: int = 128

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigurationError("cell_timeout_s must be positive (or None)")
        if self.cell_retries < 0:
            raise ConfigurationError("cell_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        if self.sim_shards < 1:
            raise ConfigurationError("sim_shards must be >= 1")
        if self.sim_shards & (self.sim_shards - 1):
            raise ConfigurationError("sim_shards must be a power of two")
        if self.batch_cutover_touch < 0:
            raise ConfigurationError("batch_cutover_touch must be >= 0")
        if self.batch_cutover_resolve < 0:
            raise ConfigurationError("batch_cutover_resolve must be >= 0")
        if not 0 <= self.serve_port <= 65535:
            raise ConfigurationError("serve_port must be in [0, 65535]")
        if self.serve_metrics_port is not None and not 0 <= self.serve_metrics_port <= 65535:
            raise ConfigurationError("serve_metrics_port must be in [0, 65535] (or None)")
        if self.serve_max_sessions < 1:
            raise ConfigurationError("serve_max_sessions must be >= 1")
        if self.serve_max_table_mb <= 0:
            raise ConfigurationError("serve_max_table_mb must be positive")
        if self.serve_shards < 1:
            raise ConfigurationError("serve_shards must be >= 1")
        if self.serve_eval_every < 1:
            raise ConfigurationError("serve_eval_every must be >= 1")
        if self.serve_credit_window < 1:
            raise ConfigurationError("serve_credit_window must be >= 1")
        if self.serve_workers < 1:
            raise ConfigurationError("serve_workers must be >= 1")
        if self.placement_walk_local_ns is not None and self.placement_walk_local_ns <= 0:
            raise ConfigurationError("placement_walk_local_ns must be positive (or None)")
        if self.placement_walk_remote_ns is not None and self.placement_walk_remote_ns <= 0:
            raise ConfigurationError("placement_walk_remote_ns must be positive (or None)")
        if self.map_hierarchical_min_n < 2:
            raise ConfigurationError("map_hierarchical_min_n must be >= 2")

    @classmethod
    def from_env(cls, environ: "dict[str, str] | None" = None) -> "RunSettings":
        """Settings from the ``REPRO_*`` environment (*environ* overrides
        :data:`os.environ`, for tests).

        ``REPRO_GRID_WORKERS`` is capped at the CPUs actually available to
        the process: oversubscribing a grid of CPU-bound simulations only
        adds scheduling overhead, so on a constrained machine the env
        default degrades to serial rather than running slower than it.  An
        explicitly constructed :class:`RunSettings` (or an explicit
        ``workers=`` argument to :func:`~repro.engine.gridrunner.run_grid`)
        is honored verbatim.
        """
        raw_workers = _get(environ, ENV_GRID_WORKERS)
        if not raw_workers:
            workers = 1
        else:
            try:
                requested = max(1, int(raw_workers))
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad {ENV_GRID_WORKERS} value {raw_workers!r}"
                ) from exc
            workers = min(requested, available_cpus())
        return cls(
            workers=workers,
            cache_dir=_get(environ, ENV_RESULT_CACHE) or None,
            trace=_get(environ, ENV_TRACE) or None,
            slow_hierarchy=_env_bool(environ, ENV_SLOW_HIERARCHY),
            slow_spcd=_env_bool(environ, ENV_SLOW_SPCD),
            slow_mesi=_env_bool(environ, ENV_SLOW_MESI),
            sim_shards=_env_int(environ, ENV_SIM_SHARDS, 1),
            batch_cutover_touch=_env_int(environ, ENV_BATCH_CUTOVER_TOUCH, 12),
            batch_cutover_resolve=_env_int(environ, ENV_BATCH_CUTOVER_RESOLVE, 4),
            cell_timeout_s=_env_float(environ, ENV_CELL_TIMEOUT, None),
            cell_retries=_env_int(environ, ENV_CELL_RETRIES, 2),
            retry_backoff_s=_env_float(environ, ENV_RETRY_BACKOFF, 0.25) or 0.0,
            strict=_env_bool(environ, ENV_GRID_STRICT),
            serve_host=_get(environ, ENV_SERVE_HOST) or "127.0.0.1",
            serve_port=_env_int(environ, ENV_SERVE_PORT, 0),
            serve_metrics_port=(
                _env_int(environ, ENV_SERVE_METRICS_PORT, 0)
                if _get(environ, ENV_SERVE_METRICS_PORT)
                else None
            ),
            serve_max_sessions=_env_int(environ, ENV_SERVE_MAX_SESSIONS, 64),
            serve_max_table_mb=_env_float(environ, ENV_SERVE_MAX_TABLE_MB, 64.0) or 64.0,
            serve_shards=_env_int(environ, ENV_SERVE_SHARDS, 4),
            serve_eval_every=_env_int(environ, ENV_SERVE_EVAL_EVERY, 8192),
            serve_credit_window=_env_int(environ, ENV_SERVE_CREDIT_WINDOW, 65536),
            serve_workers=_env_int(environ, ENV_SERVE_WORKERS, 1),
            placement_walk=_env_bool(environ, ENV_PLACEMENT_WALK),
            placement_walk_local_ns=_env_float(environ, ENV_PLACEMENT_WALK_LOCAL_NS, None),
            placement_walk_remote_ns=_env_float(
                environ, ENV_PLACEMENT_WALK_REMOTE_NS, None
            ),
            pt_replicate=_env_bool(environ, ENV_PT_REPLICATE),
            sparse_comm=_env_bool(environ, ENV_SPARSE_COMM),
            map_hierarchical_min_n=_env_int(environ, ENV_MAP_HIERARCHICAL_MIN_N, 128),
        )

    def with_overrides(self, **overrides: object) -> "RunSettings":
        """A copy with every non-``None`` override applied.

        ``None`` means "keep my value", matching the keyword-argument
        convention of :func:`~repro.engine.gridrunner.run_grid`; fields
        whose ``None`` is meaningful (``cache_dir``, ``trace``,
        ``cell_timeout_s``) cannot be *cleared* through this method — pass
        an explicitly constructed :class:`RunSettings` instead.
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(f"unknown RunSettings fields: {sorted(unknown)}")
        effective = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **effective) if effective else self

    def as_dict(self) -> "dict[str, object]":
        """Plain-dict view (JSON-friendly, for manifests and traces)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
