"""Fault-tolerant process pool for grid cells.

``multiprocessing.Pool`` is the wrong substrate for long experiment
sweeps: a single hung simulation stalls ``pool.map`` forever, and a
worker killed by the OOM killer (or a segfaulting native extension)
either hangs the pool or poisons every queued task.  This module runs
each cell in its **own** child process and supervises it from the
parent:

* **per-cell timeouts** — a cell exceeding its deadline is terminated
  (SIGTERM, then SIGKILL) and retried;
* **crash detection** — a child that exits without delivering a result
  (killed, crashed, ``os._exit``) is detected through its closed result
  pipe and retried in a fresh process — one lost worker never takes the
  sweep down;
* **bounded retry with exponential backoff** — attempt *n*'s retry waits
  ``backoff_s * 2**(n-1)`` seconds before respawning, so a transiently
  overloaded machine gets room to recover;
* **graceful degradation** — a cell that exhausts its attempts yields a
  :class:`CellOutcome` carrying the failure history instead of raising;
  the caller decides whether that is fatal (strict mode).

The pool is generic (``worker(payload) -> result``); cell semantics —
caching, checkpointing, trace events — live in the caller
(:mod:`repro.engine.gridrunner`), wired through the completion and
*on_event* callbacks, which fire **as cells finish** so progress is
durable even if the sweep itself is later killed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = [
    "AttemptFailure",
    "CellOutcome",
    "CellTask",
    "SupervisedProcess",
    "run_tasks",
]

#: attempt-failure kinds
TIMEOUT = "timeout"
CRASH = "crash"
ERROR = "error"


@dataclass(frozen=True)
class CellTask:
    """One unit of work: an opaque payload plus a human-readable label."""

    index: int
    payload: Any
    label: str = ""


@dataclass(frozen=True)
class AttemptFailure:
    """Why one attempt at a task did not produce a result."""

    #: ``"timeout"`` (deadline exceeded), ``"crash"`` (process died without
    #: delivering a result) or ``"error"`` (the worker raised)
    kind: str
    message: str
    attempt: int


@dataclass
class CellOutcome:
    """Terminal state of one task: a result, or the full failure history."""

    task: CellTask
    result: Any = None
    ok: bool = False
    attempts: int = 0
    failures: list[AttemptFailure] = field(default_factory=list)


#: ``on_event(kind, task, detail)`` with kind one of ``"retry"``,
#: ``"timeout"``, ``"crash"``, ``"error"``, ``"failed"``, ``"done"``
EventCallback = Callable[[str, CellTask, dict], None]


def _child_main(conn, worker, payload) -> None:  # pragma: no cover - subprocess
    """Child entry point: run the worker, ship the result (or the error)."""
    try:
        result = worker(payload)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send((ERROR, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        return
    try:
        conn.send(("ok", result))
    except Exception:
        pass
    finally:
        conn.close()


@dataclass
class _Running:
    task: CellTask
    proc: Any
    conn: Any
    attempt: int
    deadline: "float | None"


def _pick_context(mp_context):
    if mp_context is not None:
        return mp_context
    return get_context("fork" if "fork" in get_all_start_methods() else "spawn")


class SupervisedProcess:
    """Supervision for one **long-lived** child (a serving-tier worker).

    :func:`run_tasks` supervises run-to-completion cells; the serving
    tier needs the same guarantees — SIGTERM→SIGKILL teardown, crash
    detection, a bounded respawn budget with exponential backoff — for a
    child that is expected to live as long as the parent.  This class
    factors those guarantees out of the cell scheduler: the owner
    provides a *start* callable that builds and starts a **fresh** child
    (new pipes, new shared-memory ring, …) and decides *when* to respawn
    (typically after replaying a journal); the supervisor tracks the
    budget and computes the backoff, which the owner may sleep off with
    ``time.sleep`` or ``asyncio.sleep`` as its runtime demands.

    Backoff matches :func:`run_tasks`: respawn *n* waits
    ``backoff_s * 2**(n-1)`` seconds.
    """

    def __init__(
        self,
        label: str,
        start: Callable[[], Any],
        *,
        max_respawns: int = 2,
        backoff_s: float = 0.25,
    ) -> None:
        if max_respawns < 0:
            raise ConfigurationError("max_respawns must be >= 0")
        self.label = label
        self._start = start
        self.max_respawns = max_respawns
        self.backoff_s = backoff_s
        self.spawns = 0
        self.proc: Any = None

    def start(self) -> Any:
        """Start a fresh child via the factory; counts against the budget."""
        self.proc = self._start()
        self.spawns += 1
        return self.proc

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    @property
    def respawns_left(self) -> int:
        """How many more times :meth:`start` may be called after a crash."""
        return max(0, 1 + self.max_respawns - self.spawns)

    def next_backoff_s(self) -> "float | None":
        """Seconds to wait before the next respawn; ``None`` = budget spent."""
        if self.respawns_left == 0:
            return None
        return self.backoff_s * (2.0 ** (self.spawns - 1))

    def terminate(self) -> None:
        """Tear the child down: SIGTERM, bounded join, SIGKILL fallback."""
        if self.proc is None:
            return
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck in kernel space
            self.proc.kill()
            self.proc.join(timeout=5.0)


def run_tasks(
    tasks: "list[CellTask]",
    worker: Callable[[Any], Any],
    *,
    workers: int = 1,
    timeout_s: "float | None" = None,
    retries: int = 2,
    backoff_s: float = 0.25,
    mp_context=None,
    on_event: "EventCallback | None" = None,
    on_result: "Callable[[CellTask, Any, int], None] | None" = None,
) -> "list[CellOutcome]":
    """Run every task through *worker* in supervised child processes.

    Returns one :class:`CellOutcome` per task, in task order, never
    raising for per-task failures.  At most *workers* children run at a
    time; each task gets ``1 + retries`` attempts, each bounded by
    *timeout_s* (``None`` = unbounded).  *on_event* observes the
    scheduler's decisions (retries, timeouts, crashes, completions) as
    they happen; *on_result* fires with ``(task, result, attempts)`` the
    moment a task completes, so callers can persist progress (cache,
    checkpoint manifest) before the sweep finishes.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    ctx = _pick_context(mp_context)
    outcomes = {t.index: CellOutcome(task=t) for t in tasks}
    #: (task, attempt, not_before) awaiting a process slot
    queue: list[tuple[CellTask, int, float]] = [(t, 1, 0.0) for t in tasks]
    inflight: dict[Any, _Running] = {}  # parent conn -> running attempt

    def emit(event: str, task: CellTask, **detail) -> None:
        if on_event is not None:
            on_event(event, task, detail)

    def spawn(task: CellTask, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(child_conn, worker, task.payload), daemon=True
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        inflight[parent_conn] = _Running(task, proc, parent_conn, attempt, deadline)

    def reap(run: _Running) -> None:
        """Join a finished/killed child without ever blocking the sweep."""
        run.conn.close()
        run.proc.join(timeout=5.0)
        if run.proc.is_alive():  # pragma: no cover - stuck in kernel space
            run.proc.kill()
            run.proc.join(timeout=5.0)

    def attempt_failed(run: _Running, kind: str, message: str) -> None:
        out = outcomes[run.task.index]
        out.attempts = run.attempt
        out.failures.append(AttemptFailure(kind=kind, message=message, attempt=run.attempt))
        emit(kind, run.task, attempt=run.attempt, message=message)
        if run.attempt <= retries:
            wait = backoff_s * (2.0 ** (run.attempt - 1))
            emit("retry", run.task, attempt=run.attempt + 1, backoff_s=wait)
            queue.append((run.task, run.attempt + 1, time.monotonic() + wait))
        else:
            emit(
                "failed",
                run.task,
                attempts=run.attempt,
                kind=kind,
                message=message,
            )

    try:
        while queue or inflight:
            now = time.monotonic()
            # fill free slots with eligible (backoff-expired) queued attempts
            for entry in sorted(queue, key=lambda e: (e[2], e[0].index)):
                if len(inflight) >= workers:
                    break
                task, attempt, not_before = entry
                if not_before > now:
                    continue
                queue.remove(entry)
                spawn(task, attempt)

            if not inflight:
                if not queue:
                    break
                # every queued attempt is inside its backoff window: sleep it off
                time.sleep(max(0.0, min(e[2] for e in queue) - now) or 0.001)
                continue

            # wait for a result, a death, or the nearest deadline/backoff edge
            wait: "float | None" = None
            deadlines = [r.deadline for r in inflight.values() if r.deadline is not None]
            if deadlines:
                wait = max(0.0, min(deadlines) - now)
            if queue and len(inflight) < workers:
                edge = max(0.0, min(e[2] for e in queue) - now)
                wait = edge if wait is None else min(wait, edge)
            ready = connection.wait(list(inflight), timeout=wait)

            for conn in ready:
                run = inflight.pop(conn)
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    reap(run)
                    code = run.proc.exitcode
                    attempt_failed(
                        run, CRASH, f"worker died without a result (exitcode {code})"
                    )
                    continue
                reap(run)
                if status == "ok":
                    out = outcomes[run.task.index]
                    out.result = value
                    out.ok = True
                    out.attempts = run.attempt
                    if on_result is not None:
                        on_result(run.task, value, run.attempt)
                    emit("done", run.task, attempt=run.attempt)
                else:
                    attempt_failed(run, ERROR, str(value))

            now = time.monotonic()
            for conn, run in list(inflight.items()):
                if run.deadline is not None and now >= run.deadline:
                    del inflight[conn]
                    run.proc.terminate()
                    reap(run)
                    attempt_failed(
                        run, TIMEOUT, f"cell exceeded its {timeout_s:g}s timeout"
                    )
    finally:
        # sweep aborted (strict-mode raise, KeyboardInterrupt): reap children
        for run in inflight.values():
            run.proc.terminate()
        for run in inflight.values():
            reap(run)
        inflight.clear()

    return [outcomes[t.index] for t in tasks]
