"""Parallel, disk-cached experiment grids.

The paper's figures are projections of one expensive grid: every NPB
benchmark under every mapping policy, replicated with derived seeds
(Sec. V-A).  :func:`run_grid` executes such a grid as independent
``(workload, policy, rep)`` cells, fanning cell simulations over a process
pool (``REPRO_GRID_WORKERS``) and memoizing each cell's
:class:`~repro.engine.simulator.SimulationResult` in a content-addressed
on-disk cache (``REPRO_RESULT_CACHE``).

Determinism: a cell's seed is ``derive_seed(base_seed, "rep", rep,
policy)`` — exactly what the serial :func:`repro.engine.runner.run_replicated`
protocol uses — and each cell simulation is fully determined by its seed,
so grid results are byte-identical no matter how cells are scheduled
across processes, and identical to the serial path.

Caching: the cell key is a BLAKE2 hash of everything a result depends on —
the workload spec, policy, derived seed, machine description, engine and
SPCD configurations, and a digest of the ``src/repro`` source tree — so
results survive across processes and sessions, unrelated edits (tests,
benchmarks, docs) keep cache hits, and any engine change invalidates
cleanly.  Cache files are written through a temp file + atomic rename, so
concurrent grids can share a cache directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from functools import partial
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Callable, Sequence

from repro.core.manager import SpcdConfig
from repro.engine.policies import Policy
from repro.engine.runner import (
    REPORT_METRICS,
    ReplicatedResult,
    WorkloadFactory,
    summarize,
)
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator
from repro.errors import ConfigurationError
from repro.machine.topology import Machine, dual_xeon_e5_2650
from repro.obs.recorder import JsonlRecorder, cell_trace_path, trace_base_from_env
from repro.rng import derive_seed
from repro.workloads.npb import make_npb

__all__ = [
    "GridResult",
    "ResultCache",
    "code_version",
    "default_workers",
    "run_cell",
    "run_grid",
]

#: a workload in a grid: an NPB benchmark name, a zero-arg factory, or an
#: explicit ``(name, factory)`` pair
WorkloadSpec = "str | WorkloadFactory | tuple[str, WorkloadFactory]"

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Digest of the ``src/repro`` python sources (cache-key component).

    Any change to the engine invalidates cached results; edits outside the
    package (tests, benchmarks, docs) do not.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        h = hashlib.blake2b(digest_size=16)
        root = Path(__file__).resolve().parents[1]
        for p in sorted(root.rglob("*.py")):
            h.update(str(p.relative_to(root)).encode())
            h.update(b"\0")
            h.update(p.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers() -> int:
    """Pool size from ``REPRO_GRID_WORKERS`` (0/1 = serial, in-process).

    Capped at the CPUs actually available to this process: oversubscribing
    a grid of CPU-bound simulations only adds scheduling overhead, so on a
    constrained machine the env default degrades to serial rather than
    running slower than it.  An explicit ``workers=`` argument to
    :func:`run_grid` is honored verbatim.
    """
    raw = os.environ.get("REPRO_GRID_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        requested = max(1, int(raw))
    except ValueError as exc:
        raise ConfigurationError(f"bad REPRO_GRID_WORKERS value {raw!r}") from exc
    return min(requested, _available_cpus())


def _resolve_spec(spec: "WorkloadSpec") -> tuple[str, WorkloadFactory]:
    """Normalise a workload spec to ``(name, factory)``."""
    if isinstance(spec, str):
        return spec, partial(make_npb, spec)
    if isinstance(spec, tuple):
        name, factory = spec
        return str(name), factory
    if callable(spec):
        name = getattr(spec, "__name__", None)
        if name is None and isinstance(spec, partial):
            name = getattr(spec.func, "__name__", "workload")
            if spec.args:
                name = f"{name}:{','.join(map(str, spec.args))}"
        return name or "workload", spec
    raise ConfigurationError(f"cannot interpret workload spec {spec!r}")


def _factory_token(factory: WorkloadFactory) -> tuple:
    """A stable, content-addressable identity for a workload factory.

    Built from import path + arguments, never ``repr`` (which leaks memory
    addresses).  Named module-level functions and :func:`functools.partial`
    over named functions yield stable tokens.  Factories *without* a stable
    import path — lambdas, closures (``<locals>`` in the qualname), objects
    with no ``__qualname__`` at all — raise :class:`ConfigurationError`:
    every lambda in a module shares the qualname ``<lambda>``, so two
    different ad-hoc factories would otherwise collide in the cell key and
    silently serve each other's cached results.  Callers bypass the cache
    for such factories (see :func:`_cache_token`).
    """
    if isinstance(factory, partial):
        return (
            "partial",
            _factory_token(factory.func),
            tuple(factory.args),
            tuple(sorted(factory.keywords.items())),
        )
    module = getattr(factory, "__module__", "?")
    qualname = getattr(factory, "__qualname__", getattr(factory, "__name__", None))
    if qualname is None or "<lambda>" in qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"workload factory {qualname or factory!r} (module {module}) has no "
            "stable import path, so its cached results would collide with any "
            "other such factory; define the factory at module level or use "
            "functools.partial over a named function"
        )
    return ("fn", module, qualname)


def _cache_token(factory: WorkloadFactory) -> tuple | None:
    """The factory's cache token, or ``None`` to bypass the cache.

    A factory with no stable identity cannot be safely cached; degrade to
    an uncached run (with a warning) rather than failing the experiment or
    — worse — colliding silently.
    """
    try:
        return _factory_token(factory)
    except ConfigurationError as exc:
        warnings.warn(f"{exc}; running without the result cache", stacklevel=3)
        return None


@dataclass(frozen=True)
class _Cell:
    """One grid cell: a fully specified single simulation."""

    workload: str
    policy: str
    rep: int
    seed: int
    key: str  # content-addressed cache key


class ResultCache:
    """Content-addressed pickle store for :class:`SimulationResult`.

    Layout: ``<root>/<key[:2]>/<key>.pkl``.  Writes go through a temp file
    in the target directory followed by :func:`os.replace`, so readers
    never observe partial files and concurrent writers are safe.

    A writer killed between ``mkstemp`` and the rename (SIGKILL, OOM, power
    loss — paths the in-process ``except`` cannot cover) leaves an orphaned
    ``*.tmp`` file behind; construction sweeps any such file older than
    *stale_tmp_age_s* (young ones may belong to a live concurrent writer).
    """

    def __init__(
        self, root: str | os.PathLike, *, stale_tmp_age_s: float = 3600.0
    ) -> None:
        self.root = Path(root)
        #: orphaned temp files removed by the construction-time sweep
        self.swept_tmp_files = self._sweep_stale_tmp(stale_tmp_age_s)

    def _sweep_stale_tmp(self, max_age_s: float) -> int:
        """Delete orphaned ``*.tmp`` files older than *max_age_s* seconds."""
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:  # pragma: no cover - raced by a concurrent sweep
                continue
        return swept

    def path(self, key: str) -> Path:
        """On-disk location for *key*."""
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> SimulationResult | None:
        """Cached result for *key*, or ``None`` (missing or unreadable)."""
        try:
            with open(self.path(key), "rb") as f:
                return pickle.load(f)
        except (OSError, EOFError, pickle.PickleError, AttributeError, ImportError):
            return None

    def store(self, key: str, result: SimulationResult) -> None:
        """Atomically persist *result* under *key*."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _resolve_cache(cache_dir: str | os.PathLike | None) -> ResultCache | None:
    """Cache from explicit dir, else ``REPRO_RESULT_CACHE``, else disabled."""
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_RESULT_CACHE", "").strip() or None
    return ResultCache(cache_dir) if cache_dir is not None else None


def _cell_key(
    wl_token: tuple,
    policy: str,
    seed: int,
    machine: Machine,
    config: EngineConfig,
    spcd_config: SpcdConfig,
) -> str:
    blob = repr((wl_token, policy, seed, repr(machine), repr(config), repr(spcd_config)))
    h = hashlib.blake2b(digest_size=20)
    h.update(code_version().encode())
    h.update(blob.encode())
    return h.hexdigest()


def _run_cell_job(payload: tuple) -> SimulationResult:
    """Pool worker: run one cell simulation (module-level for pickling)."""
    factory, policy, seed, machine, config, spcd_config, trace_path = payload
    recorder = JsonlRecorder(trace_path) if trace_path else None
    sim = Simulator(
        factory(),
        policy,
        machine=machine,
        seed=seed,
        config=config,
        spcd_config=spcd_config,
        recorder=recorder,
    )
    return sim.run()


def run_cell(
    workload: "WorkloadSpec",
    policy: Policy | str,
    rep: int = 0,
    *,
    base_seed: int = 42,
    machine: Machine | None = None,
    config: EngineConfig | None = None,
    spcd_config: SpcdConfig | None = None,
    cache: ResultCache | None = None,
    cache_dir: str | os.PathLike | None = None,
    trace: str | os.PathLike | None = None,
) -> tuple[SimulationResult, bool]:
    """One grid cell, through the cache; returns ``(result, was_cached)``.

    With *trace* (default: ``REPRO_TRACE``) set, a freshly simulated cell
    writes its JSONL trace to :func:`repro.obs.recorder.cell_trace_path`;
    cells served from the cache do not re-run and produce no trace.  The
    recorder never participates in the cache key.
    """
    policy = Policy.parse(policy)
    name, factory = _resolve_spec(workload)
    machine = machine or dual_xeon_e5_2650()
    config = config or EngineConfig()
    spcd_config = spcd_config or SpcdConfig()
    seed = derive_seed(base_seed, "rep", rep, policy.value)
    if cache is None:
        cache = _resolve_cache(cache_dir)
    key = ""
    if cache is not None:
        token = _cache_token(factory)
        if token is None:
            cache = None  # no stable identity: bypass, never collide
        else:
            key = _cell_key(token, policy.value, seed, machine, config, spcd_config)
            hit = cache.load(key)
            if hit is not None:
                return hit, True
    trace_root = Path(trace) if trace is not None else trace_base_from_env()
    trace_path = (
        str(cell_trace_path(trace_root, name, policy.value, rep))
        if trace_root is not None
        else None
    )
    result = _run_cell_job((factory, policy, seed, machine, config, spcd_config, trace_path))
    if cache is not None:
        cache.store(key, result)
    return result, False


@dataclass
class GridResult:
    """All cells of one grid run."""

    #: ``(workload name, policy) -> ReplicatedResult``
    cells: dict[tuple[str, str], ReplicatedResult] = field(default_factory=dict)
    #: cells served from the on-disk cache
    cache_hits: int = 0
    #: cells actually simulated
    cache_misses: int = 0

    def cell(self, workload: str, policy: str) -> ReplicatedResult:
        """The replicated summary of one ``(workload, policy)`` cell."""
        return self.cells[(workload, str(Policy.parse(policy).value))]

    def by_workload(self, workload: str) -> dict[str, ReplicatedResult]:
        """``{policy: ReplicatedResult}`` for one workload (for
        :func:`repro.engine.runner.normalized_to`)."""
        return {p: r for (w, p), r in self.cells.items() if w == workload}

    @property
    def workloads(self) -> list[str]:
        """Workload names present, in insertion order."""
        seen: dict[str, None] = {}
        for w, _ in self.cells:
            seen.setdefault(w)
        return list(seen)


def run_grid(
    workloads: Sequence["WorkloadSpec"],
    policies: Sequence[Policy | str] = ("os", "random", "oracle", "spcd"),
    reps: int = 3,
    *,
    base_seed: int = 42,
    machine: Machine | None = None,
    config: EngineConfig | None = None,
    spcd_config: SpcdConfig | None = None,
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    keep_runs: bool = False,
    progress: Callable[[str], None] | None = None,
    trace: str | os.PathLike | None = None,
) -> GridResult:
    """Run a ``workloads x policies x reps`` grid of simulations.

    Cells already in the result cache are loaded in the parent; the
    remaining cells are simulated on a process pool of *workers* (default:
    ``REPRO_GRID_WORKERS``, serial when unset).  Results are byte-identical
    to running every cell serially with
    :func:`repro.engine.runner.run_replicated` under the same *base_seed*.

    With *trace* (default: ``REPRO_TRACE``) set, every freshly simulated
    cell writes one JSONL trace file (per-cell paths via
    :func:`repro.obs.recorder.cell_trace_path`; cached cells do not re-run
    and emit none).  Trace configuration is deliberately excluded from the
    cell cache keys: tracing never changes results.
    """
    if reps <= 0:
        raise ConfigurationError("reps must be positive")
    if not workloads or not policies:
        raise ConfigurationError("run_grid needs at least one workload and one policy")
    machine = machine or dual_xeon_e5_2650()
    config = config or EngineConfig()
    spcd_config = spcd_config or SpcdConfig()
    if workers is None:
        workers = default_workers()
    cache = _resolve_cache(cache_dir)

    specs = [_resolve_spec(w) for w in workloads]
    pols = [Policy.parse(p) for p in policies]

    cells: list[_Cell] = []
    factories: dict[str, WorkloadFactory] = {}
    for name, factory in specs:
        factories[name] = factory
        token = _cache_token(factory) if cache is not None else None
        for pol in pols:
            for rep in range(reps):
                seed = derive_seed(base_seed, "rep", rep, pol.value)
                key = (
                    _cell_key(token, pol.value, seed, machine, config, spcd_config)
                    if token is not None
                    else ""
                )
                cells.append(_Cell(name, pol.value, rep, seed, key))

    results: dict[tuple[str, str, int], SimulationResult] = {}
    misses: list[_Cell] = []
    hits = 0
    for cell in cells:
        cached = cache.load(cell.key) if cache is not None and cell.key else None
        if cached is not None:
            results[(cell.workload, cell.policy, cell.rep)] = cached
            hits += 1
        else:
            misses.append(cell)
    if progress is not None and cells:
        progress(f"grid: {hits}/{len(cells)} cells cached, {len(misses)} to run")

    trace_root = Path(trace) if trace is not None else trace_base_from_env()
    payloads = [
        (
            factories[c.workload],
            Policy.parse(c.policy),
            c.seed,
            machine,
            config,
            spcd_config,
            str(cell_trace_path(trace_root, c.workload, c.policy, c.rep))
            if trace_root is not None
            else None,
        )
        for c in misses
    ]
    if misses:
        if workers > 1 and len(misses) > 1:
            method = "fork" if "fork" in get_all_start_methods() else "spawn"
            ctx = get_context(method)
            with ctx.Pool(processes=min(workers, len(misses))) as pool:
                fresh = pool.map(_run_cell_job, payloads, chunksize=1)
        else:
            fresh = [_run_cell_job(p) for p in payloads]
        for cell, result in zip(misses, fresh):
            results[(cell.workload, cell.policy, cell.rep)] = result
            if cache is not None and cell.key:
                cache.store(cell.key, result)

    grid = GridResult(cache_hits=hits, cache_misses=len(misses))
    for name, _ in specs:
        for pol in pols:
            runs = [results[(name, pol.value, rep)] for rep in range(reps)]
            metrics = {
                m: summarize([r.metric(m) for r in runs]) for m in REPORT_METRICS
            }
            grid.cells[(name, pol.value)] = ReplicatedResult(
                workload=runs[0].workload,
                policy=pol.value,
                metrics=metrics,
                runs=runs if keep_runs else [],
            )
    return grid
