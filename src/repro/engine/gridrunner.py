"""Fault-tolerant, resumable, disk-cached experiment grids.

The paper's figures are projections of one expensive grid: every NPB
benchmark under every mapping policy, replicated with derived seeds
(Sec. V-A).  :func:`run_grid` executes such a grid as independent
``(workload, policy, rep)`` cells with the robustness of a production
job scheduler:

* **parallel execution** — cells fan out over supervised worker
  processes (:mod:`repro.engine.pool`), sized by
  :class:`~repro.engine.settings.RunSettings` (``REPRO_GRID_WORKERS``);
* **fault tolerance** — a hung cell is killed at its per-cell timeout, a
  crashed worker is detected and respawned, and failed attempts retry
  with exponential backoff; a cell that exhausts its budget degrades to
  a typed :class:`CellFailure` entry instead of aborting the sweep
  (opt-in strict mode raises :class:`~repro.errors.GridExecutionError`);
* **resumability** — each cell's terminal state is durably appended to a
  checkpoint manifest (:mod:`repro.engine.checkpoint`) the moment it
  lands, so re-invoking an interrupted sweep with the same settings
  re-runs only unfinished cells and produces byte-identical aggregates;
* **caching** — each cell's :class:`~repro.engine.simulator.SimulationResult`
  is memoized in a content-addressed on-disk cache
  (:mod:`repro.engine.cache`, ``REPRO_RESULT_CACHE``);
* **observability** — scheduler decisions (retries, timeouts, crashes,
  resumes) are traced through :mod:`repro.obs`, and
  ``python -m repro.obs.report`` summarizes a sweep's reliability.

Determinism: a cell's seed is ``derive_seed(base_seed, "rep", rep,
policy)`` — exactly what the serial :func:`repro.engine.runner.run_replicated`
protocol uses — and each cell simulation is fully determined by its seed,
so grid results are byte-identical no matter how cells are scheduled,
killed, retried or resumed across processes and invocations.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Callable, Sequence

from repro.core.manager import SpcdConfig
from repro.engine import cache as _cache_mod
from repro.engine import checkpoint as _checkpoint
from repro.engine import pool as _pool
from repro.engine.policies import Policy
from repro.engine.runner import (
    REPORT_METRICS,
    ReplicatedResult,
    WorkloadFactory,
    summarize,
)
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator
from repro.errors import ConfigurationError, GridExecutionError
from repro.machine.topology import Machine, dual_xeon_e5_2650
from repro.obs.events import (
    CellAttemptFailed,
    CellCompleted,
    CellFailed,
    CellRetry,
    GridEnd,
    GridStart,
)
from repro.obs.recorder import JsonlRecorder, cell_trace_path, grid_trace_path
from repro.placement import PlacementPolicy, resolve_policy
from repro.rng import derive_seed
from repro.workloads.npb import make_npb

__all__ = [
    "CellFailure",
    "GridResult",
    "ResultCache",
    "code_version",
    "default_workers",
    "run_cell",
    "run_grid",
]

#: a workload in a grid: an NPB benchmark name, a zero-arg factory, or an
#: explicit ``(name, factory)`` pair
WorkloadSpec = "str | WorkloadFactory | tuple[str, WorkloadFactory]"

#: sentinel distinguishing "not passed" from an explicit ``None``
_UNSET = object()

# names that moved to repro.engine.cache / repro.engine.settings; served
# through the module-level __getattr__ deprecation shim below
_MOVED = {
    "ResultCache": "repro.engine.cache",
    "code_version": "repro.engine.cache",
    "default_workers": "repro.engine.settings (RunSettings.from_env().workers)",
}


def _deprecated_default_workers() -> int:
    """Former ``REPRO_GRID_WORKERS`` reader; superseded by RunSettings."""
    return RunSettings.from_env().workers


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.engine.gridrunner.{name} moved to {_MOVED[name]}; "
            "the old import path will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        if name == "default_workers":
            return _deprecated_default_workers
        return getattr(_cache_mod, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _resolve_spec(spec: "WorkloadSpec") -> tuple[str, WorkloadFactory]:
    """Normalise a workload spec to ``(name, factory)``."""
    if isinstance(spec, str):
        return spec, partial(make_npb, spec)
    if isinstance(spec, tuple):
        name, factory = spec
        return str(name), factory
    if callable(spec):
        name = getattr(spec, "__name__", None)
        if name is None and isinstance(spec, partial):
            name = getattr(spec.func, "__name__", "workload")
            if spec.args:
                name = f"{name}:{','.join(map(str, spec.args))}"
        return name or "workload", spec
    raise ConfigurationError(f"cannot interpret workload spec {spec!r}")


def _factory_token(factory: WorkloadFactory) -> tuple:
    """A stable, content-addressable identity for a workload factory.

    Built from import path + arguments, never ``repr`` (which leaks memory
    addresses).  Named module-level functions and :func:`functools.partial`
    over named functions yield stable tokens.  Factories *without* a stable
    import path — lambdas, closures (``<locals>`` in the qualname), objects
    with no ``__qualname__`` at all — raise :class:`ConfigurationError`:
    every lambda in a module shares the qualname ``<lambda>``, so two
    different ad-hoc factories would otherwise collide in the cell key and
    silently serve each other's cached results.  Callers bypass the cache
    for such factories (see :func:`_cache_token`).
    """
    if isinstance(factory, partial):
        return (
            "partial",
            _factory_token(factory.func),
            tuple(factory.args),
            tuple(sorted(factory.keywords.items())),
        )
    module = getattr(factory, "__module__", "?")
    qualname = getattr(factory, "__qualname__", getattr(factory, "__name__", None))
    if qualname is None or "<lambda>" in qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"workload factory {qualname or factory!r} (module {module}) has no "
            "stable import path, so its cached results would collide with any "
            "other such factory; define the factory at module level or use "
            "functools.partial over a named function"
        )
    return ("fn", module, qualname)


def _cache_token(factory: WorkloadFactory) -> "tuple | None":
    """The factory's cache token, or ``None`` to bypass the cache.

    A factory with no stable identity cannot be safely cached; degrade to
    an uncached run (with a warning) rather than failing the experiment or
    — worse — colliding silently.
    """
    try:
        return _factory_token(factory)
    except ConfigurationError as exc:
        warnings.warn(f"{exc}; running without the result cache", stacklevel=3)
        return None


@dataclass(frozen=True)
class _Cell:
    """One grid cell: a fully specified single simulation."""

    workload: str
    policy: str
    rep: int
    seed: int
    key: str  # content-addressed cache key


@dataclass(frozen=True)
class CellFailure:
    """A cell that exhausted its retry budget (graceful-degradation entry).

    The sweep completes around it; strict mode turns the presence of any
    such entry into a :class:`~repro.errors.GridExecutionError`.
    """

    workload: str
    policy: str
    rep: int
    seed: int
    #: attempts consumed (first try + retries)
    attempts: int
    #: terminal failure kind: ``timeout``, ``crash`` or ``error``
    kind: str
    #: terminal failure message
    message: str
    #: every attempt's ``kind: message`` history, oldest first
    history: tuple[str, ...] = ()


def _cell_key(
    wl_token: tuple,
    policy: str,
    seed: int,
    machine: Machine,
    config: EngineConfig,
    spcd_config: SpcdConfig,
) -> str:
    blob = repr((wl_token, policy, seed, repr(machine), repr(config), repr(spcd_config)))
    h = hashlib.blake2b(digest_size=20)
    h.update(_cache_mod.code_version().encode())
    h.update(blob.encode())
    return h.hexdigest()


def _run_cell_job(payload: tuple) -> SimulationResult:
    """Pool worker: run one cell simulation (module-level for pickling)."""
    factory, policy, seed, machine, config, spcd_config, trace_path, settings = payload
    recorder = JsonlRecorder(trace_path) if trace_path else None
    sim = Simulator(
        factory(),
        policy,
        machine=machine,
        seed=seed,
        config=config,
        spcd_config=spcd_config,
        recorder=recorder,
        settings=settings,
    )
    return sim.run()


# ---------------------------------------------------------------------------
# settings / kwarg resolution
# ---------------------------------------------------------------------------
def _normalize_cache_kwarg(cache, cache_dir, func: str):
    """Fold the deprecated ``cache_dir=`` spelling into ``cache=``."""
    if cache_dir is not _UNSET:
        warnings.warn(
            f"{func}(cache_dir=...) is deprecated; pass cache=<dir or ResultCache>",
            DeprecationWarning,
            stacklevel=3,
        )
        if cache is None:
            cache = cache_dir
    return cache


def _effective_settings(settings: "RunSettings | None", **overrides) -> RunSettings:
    """Explicit kwargs > explicit ``settings`` > the environment."""
    base = settings if settings is not None else RunSettings.from_env()
    return base.with_overrides(**overrides)


def _resolve_cache(cache, eff: RunSettings) -> "_cache_mod.ResultCache | None":
    """The live cache object: an explicit instance wins, else the settings."""
    if isinstance(cache, _cache_mod.ResultCache):
        return cache
    if eff.cache_dir:
        return _cache_mod.ResultCache(eff.cache_dir)
    return None


def run_cell(
    workload: "WorkloadSpec",
    policy: "PlacementPolicy | str | Policy",
    rep: int = 0,
    *,
    base_seed: int = 42,
    machine: "Machine | None" = None,
    config: "EngineConfig | None" = None,
    spcd_config: "SpcdConfig | None" = None,
    cache: "object | None" = None,
    trace: "str | os.PathLike | None" = None,
    settings: "RunSettings | None" = None,
    cache_dir=_UNSET,
) -> tuple[SimulationResult, bool]:
    """One grid cell, through the cache; returns ``(result, was_cached)``.

    *cache* accepts a directory path or a live
    :class:`~repro.engine.cache.ResultCache`; unset, it follows
    *settings* (default: the ``REPRO_RESULT_CACHE`` environment).  With
    *trace* (default: ``REPRO_TRACE``) set, a freshly simulated cell
    writes its JSONL trace to :func:`repro.obs.recorder.cell_trace_path`;
    cells served from the cache do not re-run and produce no trace.  The
    recorder never participates in the cache key.

    .. deprecated:: 1.1
       the ``cache_dir=`` keyword; spell it ``cache=``.
    """
    cache = _normalize_cache_kwarg(cache, cache_dir, "run_cell")
    eff = _effective_settings(
        settings,
        cache_dir=None
        if cache is None or isinstance(cache, _cache_mod.ResultCache)
        else str(cache),
        trace=str(trace) if trace is not None else None,
    )
    policy = resolve_policy(policy)
    name, factory = _resolve_spec(workload)
    machine = machine or dual_xeon_e5_2650()
    config = config or EngineConfig()
    spcd_config = spcd_config or SpcdConfig()
    seed = derive_seed(base_seed, "rep", rep, policy.name)
    live_cache = _resolve_cache(cache, eff)
    key = ""
    if live_cache is not None:
        token = _cache_token(factory)
        if token is None:
            live_cache = None  # no stable identity: bypass, never collide
        else:
            key = _cell_key(token, policy.name, seed, machine, config, spcd_config)
            hit = live_cache.load(key)
            if hit is not None:
                return hit, True
    trace_root = Path(eff.trace) if eff.trace else None
    trace_path = (
        str(cell_trace_path(trace_root, name, policy.name, rep))
        if trace_root is not None
        else None
    )
    job_settings = replace(eff, trace=None)  # recorder is built explicitly
    result = _run_cell_job(
        (factory, policy, seed, machine, config, spcd_config, trace_path, job_settings)
    )
    if live_cache is not None:
        live_cache.store(key, result)
    return result, False


@dataclass
class GridResult:
    """All cells of one grid run, plus the sweep's reliability record."""

    #: ``(workload name, policy) -> ReplicatedResult`` (cells where at
    #: least one repetition produced a result)
    cells: dict[tuple[str, str], ReplicatedResult] = field(default_factory=dict)
    #: cells served from the on-disk cache
    cache_hits: int = 0
    #: cells actually simulated (or attempted)
    cache_misses: int = 0
    #: cells that exhausted their retry budget (graceful degradation)
    failures: list[CellFailure] = field(default_factory=list)
    #: attempts re-queued after a failure
    retries: int = 0
    #: attempts killed at the per-cell timeout
    timeouts: int = 0
    #: attempts whose worker died without delivering a result
    crashes: int = 0
    #: cells skipped because the checkpoint manifest recorded them done
    resumed_cells: int = 0

    @property
    def ok(self) -> bool:
        """True when every cell produced a result."""
        return not self.failures

    def cell(self, workload: str, policy: str) -> ReplicatedResult:
        """The replicated summary of one ``(workload, policy)`` cell."""
        return self.cells[(workload, resolve_policy(policy).name)]

    def by_workload(self, workload: str) -> dict[str, ReplicatedResult]:
        """``{policy: ReplicatedResult}`` for one workload (for
        :func:`repro.engine.runner.normalized_to`)."""
        return {p: r for (w, p), r in self.cells.items() if w == workload}

    def failed_cells(
        self, workload: "str | None" = None, policy: "str | None" = None
    ) -> list[CellFailure]:
        """Failure records, optionally filtered by workload and/or policy."""
        return [
            f
            for f in self.failures
            if (workload is None or f.workload == workload)
            and (policy is None or f.policy == policy)
        ]

    @property
    def workloads(self) -> list[str]:
        """Workload names present, in insertion order."""
        seen: dict[str, None] = {}
        for w, _ in self.cells:
            seen.setdefault(w)
        return list(seen)


def _resolve_manifest(
    checkpoint, cache: "_cache_mod.ResultCache | None", gkey: str
) -> "_checkpoint.GridManifest | None":
    """The sweep's checkpoint manifest (``False`` disables, ``None`` = auto)."""
    if checkpoint is False or not gkey:
        return None
    if checkpoint is None or checkpoint is True:
        if cache is None:
            if checkpoint is True:
                raise ConfigurationError(
                    "checkpoint=True needs a result cache to store cell results in"
                )
            return None
        path = cache.root / f"grid-{gkey}.manifest.jsonl"
    else:
        path = Path(checkpoint)
    return _checkpoint.GridManifest(path, gkey)


def run_grid(
    workloads: Sequence["WorkloadSpec"],
    policies: Sequence["PlacementPolicy | str | Policy"] = (
        "os",
        "random",
        "oracle",
        "spcd",
    ),
    reps: int = 3,
    *,
    base_seed: int = 42,
    machine: "Machine | None" = None,
    config: "EngineConfig | None" = None,
    spcd_config: "SpcdConfig | None" = None,
    workers: "int | None" = None,
    cache: "object | None" = None,
    trace: "str | os.PathLike | None" = None,
    settings: "RunSettings | None" = None,
    checkpoint: "str | os.PathLike | bool | None" = None,
    strict: "bool | None" = None,
    cell_timeout_s: "float | None" = None,
    cell_retries: "int | None" = None,
    retry_backoff_s: "float | None" = None,
    keep_runs: bool = False,
    progress: "Callable[[str], None] | None" = None,
    cache_dir=_UNSET,
) -> GridResult:
    """Run a ``workloads x policies x reps`` grid of simulations.

    Configuration resolves explicit keyword > *settings* object >
    environment (:meth:`RunSettings.from_env`).  Cells already in the
    result cache are loaded in the parent; the remaining cells are
    simulated on a supervised pool of *workers* child processes with
    per-cell timeouts, crash respawn and bounded exponential-backoff
    retry.  Results are byte-identical to running every cell serially
    with :func:`repro.engine.runner.run_replicated` under the same
    *base_seed*.

    **Failure model.**  A cell that exhausts ``1 + cell_retries``
    attempts becomes a :class:`CellFailure` in :attr:`GridResult.failures`
    and the sweep completes; with *strict* the sweep instead raises
    :class:`~repro.errors.GridExecutionError` after draining.  Cells are
    only aggregated over repetitions that produced results.

    **Checkpoint / resume.**  With a cache, each cell's terminal state is
    durably appended to a manifest (*checkpoint*: ``None`` = auto-derive
    next to the cache, a path = use it, ``False`` = disable).
    Re-invoking an interrupted grid with the same settings re-runs only
    cells without a ``done`` record; previously failed cells get a fresh
    attempt budget.

    With *trace* (default: ``REPRO_TRACE``) set, every freshly simulated
    cell writes one JSONL trace file and the sweep's scheduler decisions
    (retries, timeouts, crashes, resume counts) are traced to a
    ``grid-*.jsonl`` file for ``python -m repro.obs.report``.  Trace
    configuration is deliberately excluded from the cell cache keys:
    tracing never changes results.

    .. deprecated:: 1.1
       the ``cache_dir=`` keyword; spell it ``cache=``.
    """
    if reps <= 0:
        raise ConfigurationError("reps must be positive")
    if not workloads or not policies:
        raise ConfigurationError("run_grid needs at least one workload and one policy")
    cache = _normalize_cache_kwarg(cache, cache_dir, "run_grid")
    eff = _effective_settings(
        settings,
        workers=workers,
        cache_dir=None
        if cache is None or isinstance(cache, _cache_mod.ResultCache)
        else str(cache),
        trace=str(trace) if trace is not None else None,
        strict=strict,
        cell_timeout_s=cell_timeout_s,
        cell_retries=cell_retries,
        retry_backoff_s=retry_backoff_s,
    )
    machine = machine or dual_xeon_e5_2650()
    config = config or EngineConfig()
    spcd_config = spcd_config or SpcdConfig()
    live_cache = _resolve_cache(cache, eff)

    specs = [_resolve_spec(w) for w in workloads]
    pols = [resolve_policy(p) for p in policies]
    pol_by_name = {p.name: p for p in pols}

    cells: list[_Cell] = []
    factories: dict[str, WorkloadFactory] = {}
    for name, factory in specs:
        factories[name] = factory
        token = _cache_token(factory) if live_cache is not None else None
        for pol in pols:
            for rep in range(reps):
                seed = derive_seed(base_seed, "rep", rep, pol.name)
                key = (
                    _cell_key(token, pol.name, seed, machine, config, spcd_config)
                    if token is not None
                    else ""
                )
                cells.append(_Cell(name, pol.name, rep, seed, key))

    gkey = _checkpoint.grid_key([c.key for c in cells if c.key])
    manifest = _resolve_manifest(checkpoint, live_cache, gkey)
    prior_done = manifest.done_keys() if manifest is not None else set()
    prior_failed = manifest.failed_keys() if manifest is not None else set()

    results: dict[tuple[str, str, int], SimulationResult] = {}
    misses: list[_Cell] = []
    hits = resumed_done = resumed_failed = 0
    for cell in cells:
        cached = (
            live_cache.load(cell.key) if live_cache is not None and cell.key else None
        )
        if cached is not None:
            results[(cell.workload, cell.policy, cell.rep)] = cached
            hits += 1
            if cell.key in prior_done:
                resumed_done += 1
        else:
            if cell.key in prior_failed:
                resumed_failed += 1
            misses.append(cell)

    trace_root = Path(eff.trace) if eff.trace else None
    grid_rec = (
        JsonlRecorder(grid_trace_path(trace_root, gkey))
        if trace_root is not None
        else None
    )
    if grid_rec is not None:
        grid_rec.emit(
            GridStart(
                grid_key=gkey,
                workloads=[name for name, _ in specs],
                policies=[p.name for p in pols],
                reps=reps,
                cells=len(cells),
                cached=hits,
                resumed_done=resumed_done,
                resumed_failed=resumed_failed,
                to_run=len(misses),
                workers=eff.workers,
                timeout_s=eff.cell_timeout_s or 0.0,
                retries=eff.cell_retries,
                strict=eff.strict,
            )
        )
    if progress is not None and cells:
        resumed_note = (
            f", resuming checkpoint ({resumed_done} done, {resumed_failed} failed)"
            if resumed_done or resumed_failed
            else ""
        )
        progress(
            f"grid: {hits}/{len(cells)} cells cached, {len(misses)} to run{resumed_note}"
        )

    job_settings = replace(eff, trace=None)  # per-cell recorders are explicit

    def payload_of(c: _Cell) -> tuple:
        trace_path = (
            str(cell_trace_path(trace_root, c.workload, c.policy, c.rep))
            if trace_root is not None
            else None
        )
        return (
            factories[c.workload],
            pol_by_name[c.policy],
            c.seed,
            machine,
            config,
            spcd_config,
            trace_path,
            job_settings,
        )

    counters = {"retries": 0, "timeouts": 0, "crashes": 0}
    failures: list[CellFailure] = []
    attempt_history: dict[int, list[str]] = {}

    def settle(cell: _Cell, result: SimulationResult, attempts: int) -> None:
        """Persist one finished cell the moment it lands (durable resume)."""
        if live_cache is not None and cell.key:
            live_cache.store(cell.key, result)
        if manifest is not None and cell.key:
            manifest.record(
                _checkpoint.CellRecord(
                    key=cell.key,
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    status=_checkpoint.DONE,
                    attempts=attempts,
                )
            )
        if grid_rec is not None:
            grid_rec.emit(
                CellCompleted(
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    attempts=attempts,
                )
            )

    def settle_failure(cell: _Cell, attempts: int, kind: str, message: str) -> None:
        failures.append(
            CellFailure(
                workload=cell.workload,
                policy=cell.policy,
                rep=cell.rep,
                seed=cell.seed,
                attempts=attempts,
                kind=kind,
                message=message,
                history=tuple(attempt_history.get(id(cell), ())),
            )
        )
        if manifest is not None and cell.key:
            manifest.record(
                _checkpoint.CellRecord(
                    key=cell.key,
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    status=_checkpoint.FAILED,
                    attempts=attempts,
                    error=f"{kind}: {message}",
                )
            )
        if grid_rec is not None:
            grid_rec.emit(
                CellFailed(
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    attempts=attempts,
                    kind=kind,
                    message=message,
                )
            )

    def note_attempt_failure(cell: _Cell, attempt: int, kind: str, message: str) -> None:
        attempt_history.setdefault(id(cell), []).append(f"{kind}: {message}")
        if kind == _pool.TIMEOUT:
            counters["timeouts"] += 1
        elif kind == _pool.CRASH:
            counters["crashes"] += 1
        if grid_rec is not None:
            grid_rec.emit(
                CellAttemptFailed(
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    attempt=attempt,
                    kind=kind,
                    message=message,
                )
            )
        if progress is not None:
            progress(
                f"grid: {cell.workload}/{cell.policy}/rep{cell.rep} "
                f"attempt {attempt} {kind}: {message}"
            )

    def note_retry(cell: _Cell, attempt: int, backoff_s: float) -> None:
        counters["retries"] += 1
        if grid_rec is not None:
            grid_rec.emit(
                CellRetry(
                    workload=cell.workload,
                    policy=cell.policy,
                    rep=cell.rep,
                    attempt=attempt,
                    backoff_s=backoff_s,
                )
            )

    if misses:
        use_pool = eff.workers > 1 or eff.cell_timeout_s is not None
        if use_pool:
            tasks = [
                _pool.CellTask(
                    index=i,
                    payload=payload_of(c),
                    label=f"{c.workload}/{c.policy}/rep{c.rep}",
                )
                for i, c in enumerate(misses)
            ]

            def on_event(kind: str, task: _pool.CellTask, detail: dict) -> None:
                cell = misses[task.index]
                if kind in (_pool.TIMEOUT, _pool.CRASH, _pool.ERROR):
                    note_attempt_failure(
                        cell, detail["attempt"], kind, detail["message"]
                    )
                elif kind == "retry":
                    note_retry(cell, detail["attempt"], detail["backoff_s"])
                elif kind == "failed":
                    settle_failure(
                        cell, detail["attempts"], detail["kind"], detail["message"]
                    )

            outcomes = _pool.run_tasks(
                tasks,
                _run_cell_job,
                workers=eff.workers,
                timeout_s=eff.cell_timeout_s,
                retries=eff.cell_retries,
                backoff_s=eff.retry_backoff_s,
                on_event=on_event,
                on_result=lambda task, result, attempts: settle(
                    misses[task.index], result, attempts
                ),
            )
            for cell, outcome in zip(misses, outcomes):
                if outcome.ok:
                    results[(cell.workload, cell.policy, cell.rep)] = outcome.result
        else:
            for cell in misses:
                payload = payload_of(cell)
                attempt = 1
                while True:
                    try:
                        result = _run_cell_job(payload)
                    except Exception as exc:  # noqa: BLE001 - graceful degradation
                        message = f"{type(exc).__name__}: {exc}"
                        note_attempt_failure(cell, attempt, _pool.ERROR, message)
                        if attempt > eff.cell_retries:
                            settle_failure(cell, attempt, _pool.ERROR, message)
                            break
                        wait = eff.retry_backoff_s * (2.0 ** (attempt - 1))
                        note_retry(cell, attempt + 1, wait)
                        if wait:
                            time.sleep(wait)
                        attempt += 1
                        continue
                    results[(cell.workload, cell.policy, cell.rep)] = result
                    settle(cell, result, attempt)
                    break

    if grid_rec is not None:
        grid_rec.emit(
            GridEnd(
                grid_key=gkey,
                cells=len(cells),
                cache_hits=hits,
                cache_misses=len(misses),
                completed=len(results),
                failed=len(failures),
                retries=counters["retries"],
                timeouts=counters["timeouts"],
                crashes=counters["crashes"],
            )
        )
        grid_rec.close()
    if manifest is not None:
        manifest.close()

    if failures and eff.strict:
        detail = "; ".join(
            f"{f.workload}/{f.policy}/rep{f.rep} after {f.attempts} attempts "
            f"({f.kind}: {f.message})"
            for f in failures
        )
        raise GridExecutionError(
            f"strict grid run: {len(failures)} cell(s) failed: {detail}", failures
        )

    grid = GridResult(
        cache_hits=hits,
        cache_misses=len(misses),
        failures=failures,
        retries=counters["retries"],
        timeouts=counters["timeouts"],
        crashes=counters["crashes"],
        resumed_cells=resumed_done,
    )
    for name, _ in specs:
        for pol in pols:
            runs = [
                results[(name, pol.name, rep)]
                for rep in range(reps)
                if (name, pol.name, rep) in results
            ]
            if not runs:
                continue  # every repetition failed: see grid.failures
            metrics = {
                m: summarize([r.metric(m) for r in runs]) for m in REPORT_METRICS
            }
            grid.cells[(name, pol.name)] = ReplicatedResult(
                workload=runs[0].workload,
                policy=pol.name,
                metrics=metrics,
                runs=runs if keep_runs else [],
            )
    return grid
