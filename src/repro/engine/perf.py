"""Lightweight wall-clock counters for the simulator's subsystems.

These measure the *host* cost of a run (not simulated time): how long the
MESI hierarchy, the fault pipeline, the SPCD/kernel-thread machinery and
the access-stream generators took, so the engine's performance trajectory
is observable in-repo (``bench_kernels.py`` snapshots them, and every
:class:`~repro.engine.simulator.SimulationResult` carries one).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Host-side wall-clock breakdown of one simulation run (seconds)."""

    #: total wall-clock of :meth:`Simulator.run`
    wall_s: float = 0.0
    #: time inside ``CoherentHierarchy.access_batch_pu``
    hierarchy_s: float = 0.0
    #: time the sharded simulator spends in its per-step coherence round
    #: trip (broadcast + stripe drains + stats merge); the sharded engine's
    #: replacement for ``hierarchy_s``, zero in single-process mode
    coherence_s: float = 0.0
    #: time inside the fault pipeline (classification + handling)
    fault_s: float = 0.0
    #: time inside fault hooks (SPCD detection / data-map recording); a
    #: subset of ``fault_s``, not an additional bucket
    detect_s: float = 0.0
    #: time in the timer wheel + scheduler quanta (SPCD injector/evaluator,
    #: load balancer, migrations)
    spcd_s: float = 0.0
    #: time inside the mapping kernels (grouping + matching + layout) when
    #: an SPCD evaluation decides a mapping; a subset of ``spcd_s``, not an
    #: additional bucket
    match_s: float = 0.0
    #: time generating workload access streams
    workload_s: float = 0.0
    #: memory accesses fed to the hierarchy
    accesses: int = 0
    #: page faults handled (first-touch + injected)
    faults: int = 0
    #: page-table-walk radix levels resolved on the walking PU's node
    #: (populated only under ``REPRO_PLACEMENT_WALK``; see
    #: ``PageTable.charge_walk``)
    pt_walk_levels_local: int = 0
    #: page-table-walk radix levels that crossed the socket interconnect
    pt_walk_levels_remote: int = 0

    @property
    def tracked_s(self) -> float:
        """Wall time attributed to a tracked subsystem.

        ``detect_s`` is contained in ``fault_s`` and ``match_s`` in
        ``spcd_s``, so neither is part of the sum.  ``coherence_s`` and
        ``hierarchy_s`` are disjoint (one is the sharded engine's bucket,
        the other the single-process engine's), so both are summed.
        """
        return (
            self.hierarchy_s
            + self.coherence_s
            + self.fault_s
            + self.spcd_s
            + self.workload_s
        )

    @property
    def other_s(self) -> float:
        """Raw residual: wall time not attributed to a tracked subsystem.

        Deliberately *not* clamped at zero — the tracked timers are
        disjoint sub-intervals of ``wall_s``, so a negative residual means
        two subsystem timers overlap (double counting, as ``detect_s`` ⊂
        ``fault_s`` would if it were summed) and must surface, not be
        silently hidden.  The parity/smoke suites assert it non-negative.
        """
        return self.wall_s - self.tracked_s

    def accesses_per_s(self) -> float:
        """Hierarchy throughput (accesses per second of hierarchy time)."""
        return self.accesses / self.hierarchy_s if self.hierarchy_s > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports/JSON snapshots."""
        return {f.name: getattr(self, f.name) for f in fields(PerfCounters)}
