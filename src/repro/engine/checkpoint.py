"""Grid checkpoint manifests: durable, resumable sweep progress.

A manifest is an append-only JSONL file living alongside the result
cache.  Its first line is a header binding it to one exact grid (the
*grid key* — a digest of every cell's content-addressed cache key, which
already pins workloads, policies, seeds, machine, engine config and
engine sources); each subsequent line records one cell reaching a
terminal state (``done`` or ``failed``, with its attempt count).

Durability model: each record is written as **one** ``write`` call and
flushed (with an ``fsync``) before the runner moves on, so a sweep
killed at any instant loses at most the record of the cell in flight.  A
torn final line — the process died mid-``write`` — is skipped on load.
Because ``done`` is only recorded *after* the cell's result is stored in
the result cache, a resuming run can trust every ``done`` record to be
backed by a loadable cached result (and degrades to re-running the cell
if the cache was pruned behind its back).

Resume semantics (:func:`repro.engine.gridrunner.run_grid`): cells with
a ``done`` record load from the cache and are not re-run; cells with a
``failed`` record get a fresh attempt budget; cells with no record run
normally.  Results are therefore byte-identical to an uninterrupted
sweep — cells are deterministic functions of their seeds, and the
manifest only decides *which* cells still need running.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["CellRecord", "GridManifest", "grid_key"]

MANIFEST_VERSION = 1

#: terminal cell states
DONE = "done"
FAILED = "failed"


def grid_key(cell_keys: Iterable[str]) -> str:
    """Digest identifying one exact grid (order-insensitive over cells)."""
    h = hashlib.blake2b(digest_size=12)
    for key in sorted(cell_keys):
        h.update(key.encode())
        h.update(b"\0")
    return h.hexdigest()


@dataclass(frozen=True)
class CellRecord:
    """One cell's terminal state within a sweep."""

    key: str
    workload: str
    policy: str
    rep: int
    status: str  # DONE or FAILED
    attempts: int = 1
    error: str = ""


class GridManifest:
    """Append-only JSONL checkpoint for one grid's cells.

    Loading is tolerant: malformed lines (torn tails from a killed
    writer) are skipped, and a header naming a *different* grid resets
    the file — a stale manifest must never mask real work.  The newest
    record per cell key wins, so re-running a previously failed cell
    simply appends its new state.
    """

    def __init__(self, path: "str | os.PathLike", grid_key: str) -> None:
        self.path = Path(path)
        self.grid_key = grid_key
        self._file = None
        #: cell key -> newest terminal record (loaded at construction)
        self.records: dict[str, CellRecord] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        header_ok = False
        records: dict[str, CellRecord] = {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        # tolerant decode: a torn or corrupt line must never fail the whole
        # load (json.dumps output is ASCII, so intact records are unaffected)
        lines = raw.decode("utf-8", errors="replace").splitlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if not isinstance(obj, dict):
                continue  # valid JSON but not a record ("0", "[]", ...)
            if i == 0:
                # only the file's first line is the header; a later
                # "type": "manifest" line (two writers racing on an empty
                # file, or stray garbage) is just a non-record line and
                # must neither re-bind the grid nor drop the record tail
                header_ok = (
                    obj.get("type") == "manifest"
                    and obj.get("version") == MANIFEST_VERSION
                    and obj.get("grid_key") == self.grid_key
                )
                continue
            if not header_ok:
                break
            try:
                records[str(obj["key"])] = CellRecord(
                    key=str(obj["key"]),
                    workload=str(obj.get("workload", "?")),
                    policy=str(obj.get("policy", "?")),
                    rep=int(obj.get("rep", 0)),
                    status=str(obj.get("status", "")),
                    attempts=int(obj.get("attempts", 1)),
                    error=str(obj.get("error", "")),
                )
            except (KeyError, TypeError, ValueError):
                continue
        if header_ok:
            self.records = records
        else:
            # different grid (or corrupt header): start the file over
            try:
                self.path.unlink()
            except OSError:
                pass

    def done_keys(self) -> set[str]:
        """Keys of cells recorded as completed."""
        return {k for k, r in self.records.items() if r.status == DONE}

    def failed_keys(self) -> set[str]:
        """Keys of cells recorded as having exhausted their retries."""
        return {k for k, r in self.records.items() if r.status == FAILED}

    def _append(self, obj: dict) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            torn_tail = False
            if not fresh and self.path.stat().st_size > 0:
                with open(self.path, "rb") as raw:
                    raw.seek(-1, os.SEEK_END)
                    torn_tail = raw.read(1) != b"\n"
            self._file = open(self.path, "a", encoding="utf-8")
            if torn_tail:
                # seal a torn final line (killed mid-write) before appending:
                # without this the next record glues onto the fragment and a
                # later resume silently loses it, despite its fsync
                self._file.write("\n")
            if fresh or self.path.stat().st_size == 0:
                header = {
                    "type": "manifest",
                    "version": MANIFEST_VERSION,
                    "grid_key": self.grid_key,
                }
                self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
        # one write call per record: a kill can only tear the final line
        self._file.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def record(self, rec: CellRecord) -> None:
        """Durably append one terminal cell record."""
        self.records[rec.key] = rec
        self._append(asdict(rec))

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "GridManifest":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
