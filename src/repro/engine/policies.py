"""Mapping policies of the paper's evaluation (Sec. V-D).

* ``OS`` — the original Linux scheduler (our CFS-like baseline; everything
  is normalised to it in the figures).
* ``RANDOM`` — a static random thread->PU pinning, fresh per repetition.
* ``ORACLE`` — a static pinning computed from full communication knowledge.
* ``SPCD`` — dynamic detection + migration by the SPCD mechanism.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.mapping import HierarchicalMapper
from repro.errors import ConfigurationError
from repro.kernelsim.scheduler import CfsLikeScheduler, PinnedScheduler, Scheduler
from repro.machine.topology import Machine
from repro.oracle.analyzer import matrix_from_ground_truth
from repro.workloads.base import Workload


class Policy(str, enum.Enum):
    """The four placements compared in Figs. 8-15."""

    OS = "os"
    RANDOM = "random"
    ORACLE = "oracle"
    SPCD = "spcd"

    @classmethod
    def parse(cls, value: "Policy | str") -> "Policy":
        """Accept a Policy or its case-insensitive string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown policy {value!r}; expected one of {[p.value for p in cls]}"
            ) from None


def make_scheduler(
    policy: Policy,
    machine: Machine,
    workload: Workload,
    rng: np.random.Generator,
) -> Scheduler:
    """Build the scheduler implementing *policy* for *workload*."""
    n = workload.n_threads
    if n > machine.n_pus:
        raise ConfigurationError(
            f"{n} threads exceed the machine's {machine.n_pus} hardware contexts"
        )
    if policy is Policy.OS:
        scheduler: Scheduler = CfsLikeScheduler(machine, n, rng)
    elif policy is Policy.RANDOM:
        pus = rng.permutation(machine.n_pus)[:n]
        scheduler = PinnedScheduler(machine, n, [int(p) for p in pus])
    elif policy is Policy.ORACLE:
        matrix = matrix_from_ground_truth(workload)
        mapping = HierarchicalMapper(machine).map(matrix)
        scheduler = PinnedScheduler(machine, n, [int(p) for p in mapping])
    elif policy is Policy.SPCD:
        # SPCD starts from an arbitrary (OS-like) placement and migrates.
        pus = rng.permutation(machine.n_pus)[:n]
        scheduler = PinnedScheduler(machine, n, [int(p) for p in pus])
    else:  # pragma: no cover - exhaustive enum
        raise ConfigurationError(f"unhandled policy {policy}")
    scheduler.start()
    return scheduler
