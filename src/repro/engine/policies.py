"""Legacy policy enum — superseded by :mod:`repro.placement`.

.. deprecated::
    The ``Policy`` str-enum and :func:`make_scheduler` predate the typed
    placement engine.  New code should pass a policy *name* string
    (``"os"``, ``"random"``, ``"oracle"``, ``"spcd"``, ``"spcd-data"``,
    ``"spcd-combined"``, ``"spcd-replicated"``) or a
    :class:`~repro.placement.policy.PlacementPolicy` instance to
    :class:`~repro.engine.simulator.Simulator` and the runners; resolve
    names with :func:`repro.placement.resolve_policy`.  Passing a
    ``Policy`` member still works everywhere but emits a
    :class:`DeprecationWarning` at resolution time.

This module keeps the four-member enum (the paper's Figs. 8-15 compare
exactly these placements) and a :func:`make_scheduler` that delegates to
the equivalent typed policy, so pinned seed derivations and scheduler
RNG streams are unchanged.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError
from repro.kernelsim.scheduler import Scheduler
from repro.machine.topology import Machine
from repro.workloads.base import Workload


class Policy(str, enum.Enum):
    """The four placements compared in Figs. 8-15 (legacy spelling).

    The placement engine's extended policies (``spcd-data``,
    ``spcd-combined``, ``spcd-replicated``) have no enum members — they
    exist only as :class:`~repro.placement.policy.PlacementPolicy`
    instances and name strings, which is the API going forward.
    """

    OS = "os"
    RANDOM = "random"
    ORACLE = "oracle"
    SPCD = "spcd"

    @classmethod
    def parse(cls, value: "Policy | str") -> "Policy":
        """Accept a Policy or its case-insensitive string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown policy {value!r}; expected one of {[p.value for p in cls]}"
            ) from None


def make_scheduler(
    policy: "Policy | str",
    machine: Machine,
    workload: Workload,
    rng: np.random.Generator,
) -> Scheduler:
    """Build the scheduler implementing *policy* for *workload*.

    Delegates to the typed policy's ``make_scheduler`` — identical
    scheduler types, pinnings and RNG consumption as the historical
    open-coded branches (the parity suite pins the digests).
    """
    from repro.placement.policy import resolve_policy

    name = policy.value if isinstance(policy, Policy) else policy
    return resolve_policy(name).make_scheduler(machine, workload, rng)
