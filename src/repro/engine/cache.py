"""The content-addressed on-disk result cache (the grid's storage layer).

Grew out of :mod:`repro.engine.gridrunner` (which re-exports these names
through deprecation shims): a :class:`ResultCache` memoizes each grid
cell's :class:`~repro.engine.simulator.SimulationResult` under a BLAKE2
key of everything the result depends on, and :func:`code_version`
contributes the engine-source digest to that key so any engine change
invalidates cleanly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.engine.simulator import SimulationResult

__all__ = ["ResultCache", "code_version"]

_CODE_VERSION: "str | None" = None


def code_version() -> str:
    """Digest of the ``src/repro`` python sources (cache-key component).

    Any change to the engine invalidates cached results; edits outside the
    package (tests, benchmarks, docs) do not.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        h = hashlib.blake2b(digest_size=16)
        root = Path(__file__).resolve().parents[1]
        for p in sorted(root.rglob("*.py")):
            h.update(str(p.relative_to(root)).encode())
            h.update(b"\0")
            h.update(p.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


class ResultCache:
    """Content-addressed pickle store for :class:`SimulationResult`.

    Layout: ``<root>/<key[:2]>/<key>.pkl``.  Writes go through a temp file
    in the target directory followed by :func:`os.replace`, so readers
    never observe partial files and concurrent writers are safe.

    A writer killed between ``mkstemp`` and the rename (SIGKILL, OOM, power
    loss — paths the in-process ``except`` cannot cover) leaves an orphaned
    ``*.tmp`` file behind; construction sweeps any such file older than
    *stale_tmp_age_s* (young ones may belong to a live concurrent writer).
    """

    def __init__(
        self, root: "str | os.PathLike", *, stale_tmp_age_s: float = 3600.0
    ) -> None:
        self.root = Path(root)
        #: orphaned temp files removed by the construction-time sweep
        self.swept_tmp_files = self._sweep_stale_tmp(stale_tmp_age_s)

    def _sweep_stale_tmp(self, max_age_s: float) -> int:
        """Delete orphaned ``*.tmp`` files older than *max_age_s* seconds."""
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:  # pragma: no cover - raced by a concurrent sweep
                continue
        return swept

    def path(self, key: str) -> Path:
        """On-disk location for *key*."""
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> "SimulationResult | None":
        """Cached result for *key*, or ``None`` (missing or unreadable)."""
        try:
            with open(self.path(key), "rb") as f:
                return pickle.load(f)
        except (OSError, EOFError, pickle.PickleError, AttributeError, ImportError):
            return None

    def store(self, key: str, result: SimulationResult) -> None:
        """Atomically persist *result* under *key*."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
