"""Replicated experiments with confidence intervals.

The paper runs each configuration 10 times and reports means with 95 %
confidence intervals from a Student's t-distribution (Sec. V-A); this module
reproduces that protocol (with a configurable repetition count) and offers
normalisation against the OS baseline for the figures.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sps

from repro.core.manager import SpcdConfig
from repro.engine.policies import Policy
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, SimulationResult, Simulator
from repro.errors import ConfigurationError
from repro.machine.topology import Machine
from repro.placement import PlacementPolicy, resolve_policy
from repro.rng import derive_seed
from repro.workloads.base import Workload

from typing import Callable

WorkloadFactory = Callable[[], Workload]

#: sentinel distinguishing "not passed" from an explicit ``None``
_UNSET = object()


@dataclass(frozen=True)
class MetricStats:
    """Mean and 95 % CI of one metric over repetitions."""

    mean: float
    ci95: float
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        """Number of repetitions."""
        return len(self.values)


def summarize(values: list[float] | np.ndarray, confidence: float = 0.95) -> MetricStats:
    """Mean + Student-t confidence half-width of *values*."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot summarise zero repetitions")
    mean = float(arr.mean())
    if arr.size == 1 or np.allclose(arr, mean):
        return MetricStats(mean=mean, ci95=0.0, values=tuple(arr))
    sem = arr.std(ddof=1) / np.sqrt(arr.size)
    half = float(sem * sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MetricStats(mean=mean, ci95=half, values=tuple(arr))


#: metrics extracted from each run for the replicated summaries
REPORT_METRICS = (
    "exec_time_s",
    "l2_mpki",
    "l3_mpki",
    "c2c_transactions",
    "proc_energy_j",
    "dram_energy_j",
    "proc_epi_nj",
    "dram_epi_nj",
    "migrations",
    "detection_pct",
    "mapping_pct",
)


@dataclass
class ReplicatedResult:
    """Per-metric statistics of one (workload, policy) cell."""

    workload: str
    policy: str
    metrics: dict[str, MetricStats]
    runs: list[SimulationResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of *metric*."""
        return self.metrics[metric].mean


def run_single(
    workload_factory: WorkloadFactory,
    policy: "PlacementPolicy | str | Policy",
    *,
    machine: Machine | None = None,
    seed: int = 0,
    config: EngineConfig | None = None,
    spcd_config: SpcdConfig | None = None,
    settings: "RunSettings | None" = None,
) -> SimulationResult:
    """One simulation run (fresh workload instance, derived seed)."""
    sim = Simulator(
        workload_factory(),
        policy,
        machine=machine,
        seed=seed,
        config=config,
        spcd_config=spcd_config,
        settings=settings,
    )
    return sim.run()


def run_replicated(
    workload_factory: WorkloadFactory,
    policy: "PlacementPolicy | str | Policy",
    *,
    machine: Machine | None = None,
    reps: int = 3,
    base_seed: int = 42,
    config: EngineConfig | None = None,
    spcd_config: SpcdConfig | None = None,
    keep_runs: bool = False,
    workers: "int | None" = None,
    cache: "object | None" = None,
    trace: "object | None" = None,
    settings: "RunSettings | None" = None,
    cache_dir=_UNSET,
) -> ReplicatedResult:
    """Run *reps* repetitions with derived seeds; summarise every metric.

    For the RANDOM policy each repetition derives a fresh seed and hence a
    fresh random mapping, reproducing the paper's "10 different mappings,
    one for each execution".

    With *workers* > 1 or a result *cache* (a directory or a live
    :class:`~repro.engine.cache.ResultCache`), delegates to
    :func:`repro.engine.gridrunner.run_grid` (same seed protocol, so the
    result is identical to the serial path) and inherits its fault
    tolerance: timeouts, retries and checkpointed resume.

    .. deprecated:: 1.1
       the ``cache_dir=`` keyword; spell it ``cache=``.
    """
    if reps <= 0:
        raise ConfigurationError("reps must be positive")
    policy = resolve_policy(policy)
    if cache_dir is not _UNSET:
        warnings.warn(
            "run_replicated(cache_dir=...) is deprecated; "
            "pass cache=<dir or ResultCache>",
            DeprecationWarning,
            stacklevel=2,
        )
        if cache is None:
            cache = cache_dir
    if trace is not None:
        base = settings if settings is not None else RunSettings.from_env()
        settings = base.with_overrides(trace=str(trace))
    if (workers is not None and workers > 1) or cache is not None:
        from repro.engine import gridrunner  # local import: gridrunner imports us

        grid = gridrunner.run_grid(
            [workload_factory],
            [policy],
            reps,
            base_seed=base_seed,
            machine=machine,
            config=config,
            spcd_config=spcd_config,
            workers=workers,
            cache=cache,
            trace=trace,
            settings=settings,
            keep_runs=keep_runs,
        )
        return next(iter(grid.cells.values()))
    runs: list[SimulationResult] = []
    for rep in range(reps):
        seed = derive_seed(base_seed, "rep", rep, policy.name)
        runs.append(
            run_single(
                workload_factory,
                policy,
                machine=machine,
                seed=seed,
                config=config,
                spcd_config=spcd_config,
                settings=settings,
            )
        )
    metrics = {
        name: summarize([r.metric(name) for r in runs]) for name in REPORT_METRICS
    }
    first = runs[0]
    return ReplicatedResult(
        workload=first.workload,
        policy=policy.name,
        metrics=metrics,
        runs=runs if keep_runs else [],
    )


def normalized_to(
    results: dict[str, ReplicatedResult], metric: str, baseline_policy: str = "os"
) -> dict[str, float]:
    """Each policy's mean *metric* divided by the baseline's (Fig. 8-15 style)."""
    if baseline_policy not in results:
        raise ConfigurationError(f"baseline policy {baseline_policy!r} missing")
    base = results[baseline_policy].mean(metric)
    if base == 0:
        return {p: (0.0 if r.mean(metric) == 0 else float("inf")) for p, r in results.items()}
    return {p: r.mean(metric) / base for p, r in results.items()}
