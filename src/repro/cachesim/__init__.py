"""Execution-driven cache hierarchy with MESI coherence.

Models the paper's evaluation machine: private per-PU L1/L2, one inclusive
shared L3 per socket, a global coherence directory producing the quantities
the paper measures — L2/L3 misses (MPKI), cache-to-cache transactions
(intra- and inter-socket) and invalidations — plus DRAM traffic split into
local and remote NUMA accesses for the energy model.
"""

from repro.cachesim.cache import SetAssocCache
from repro.cachesim.hierarchy import CoherentHierarchy
from repro.cachesim.line import MesiState
from repro.cachesim.stats import CacheStats

__all__ = ["CacheStats", "CoherentHierarchy", "MesiState", "SetAssocCache"]
