"""Counters produced by the coherent hierarchy.

These correspond directly to the paper's measured quantities: L2/L3 MPKI
(Figs. 9-10), cache-to-cache transactions (Fig. 11) and, for the energy
model, DRAM reads/write-backs split by NUMA locality and invalidation
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CacheStats:
    """Aggregate event counters for one simulation run."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    #: cache-to-cache transfers between private caches on the same socket
    c2c_intra: int = 0
    #: transfers that crossed the off-chip interconnect
    c2c_inter: int = 0
    #: invalidation messages sent on writes to shared lines
    invalidations: int = 0
    #: silent E->M upgrades (no bus traffic)
    silent_upgrades: int = 0
    dram_reads_local: int = 0
    dram_reads_remote: int = 0
    dram_writebacks: int = 0
    #: lines back-invalidated from private caches by inclusive-L3 evictions
    back_invalidations: int = 0

    def snapshot(self) -> tuple[int, ...]:
        """Cheap value snapshot (field order of the dataclass).

        With :meth:`delta_since` this replaces ``dataclasses.replace`` +
        field-wise diffing on the simulator's per-thread per-step hot path.
        """
        return (
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.l3_hits,
            self.l3_misses,
            self.c2c_intra,
            self.c2c_inter,
            self.invalidations,
            self.silent_upgrades,
            self.dram_reads_local,
            self.dram_reads_remote,
            self.dram_writebacks,
            self.back_invalidations,
        )

    def delta_since(self, snap: tuple[int, ...]) -> "CacheStats":
        """Counters accrued since *snap* (a :meth:`snapshot` value)."""
        cur = self.snapshot()
        return CacheStats(*(a - b for a, b in zip(cur, snap)))

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Field-wise sum of two stats objects."""
        out = CacheStats()
        for f in fields(CacheStats):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    @property
    def c2c_total(self) -> int:
        """All cache-to-cache transactions (paper Fig. 11 metric)."""
        return self.c2c_intra + self.c2c_inter

    @property
    def dram_reads(self) -> int:
        """Total demand reads served by DRAM."""
        return self.dram_reads_local + self.dram_reads_remote

    @property
    def dram_accesses(self) -> int:
        """All DRAM traffic (reads + write-backs)."""
        return self.dram_reads + self.dram_writebacks

    def mpki(self, level: int, instructions: int) -> float:
        """Misses per kilo-instruction at cache *level* (1, 2 or 3)."""
        misses = {1: self.l1_misses, 2: self.l2_misses, 3: self.l3_misses}[level]
        return 1000.0 * misses / instructions if instructions else 0.0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return {f.name: getattr(self, f.name) for f in fields(CacheStats)}
