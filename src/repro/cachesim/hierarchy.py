"""Coherent cache hierarchy: private L1/L2 per core, inclusive L3 per socket.

The L1/L2 are private to a physical **core** and shared by its SMT siblings —
this is exactly the paper's communication case (a): threads mapped to the two
hardware threads of one core communicate through the fast L1/L2.  A global
directory tracks, per line, the bitmask of cores holding it in their private
caches and the core owning it dirty (MESI ``M``).  The protocol follows
SandyBridge-EP semantics closely enough for the paper's metrics:

* inclusive L3 — a line cached privately on a socket is in that socket's L3;
  L3 evictions back-invalidate private copies;
* writes invalidate every other copy (private and remote-L3); writes to a
  line nobody else holds upgrade silently (``E`` -> ``M``);
* reads hitting dirty data in another private cache trigger a
  **cache-to-cache transaction** — intra-socket if the owner shares the L3,
  inter-socket (off-chip) otherwise;
* demand misses that no cache can serve go to DRAM, counted local/remote
  relative to the accessing PU's NUMA node.

Invariants (checked by :meth:`CoherentHierarchy.check_invariants`):

1. L1[c] is a subset of L2[c];
2. ``c in sharers[l]``  iff  ``l in L2[c]``;
3. a privately cached line is present in its socket's L3 (inclusion);
4. a dirty-owned line has exactly one private sharer and lives in no other
   socket's L3.
"""

from __future__ import annotations


import numpy as np

from repro.cachesim.cache import LegacySetAssocCache, SetAssocCache
from repro.cachesim.line import iter_set_bits
from repro.cachesim.stats import CacheStats
from repro.machine.topology import Machine

NO_OWNER = -1

#: maximum number of runs classified per residency probe in the fast path;
#: bounds the cost of the journal-staleness scans inside one window.
PROBE_WINDOW = 2048

#: hit spans shorter than this are drained through the scalar reference
#: path — below this length the vectorised bookkeeping costs more than the
#: per-access loop it replaces.
SMALL_SPAN = 16

#: adaptive bypass: when less than BYPASS_NUM/BYPASS_DEN of a batch's
#: accesses were bulk-counted (miss-heavy phase — streaming or a working
#: set far beyond L1), the core's L1 is swapped to the dict backing (best
#: under scalar traffic) and the next BYPASS_BATCHES batches skip the
#: probe machinery entirely and run the reference loop; the batch after
#: that swaps back and re-measures, so phase changes are picked up again.
BYPASS_NUM = 3
BYPASS_DEN = 8
BYPASS_BATCHES = 63
#: batches smaller than this never update the bypass decision
BYPASS_MIN_BATCH = 64


def _slow_hierarchy_requested() -> bool:
    """True when ``REPRO_SLOW_HIERARCHY`` selects the reference engine.

    Delegates to :class:`repro.engine.settings.RunSettings` — the single
    home of every ``REPRO_*`` environment read.  (Imported lazily: the
    engine imports this module.)
    """
    from repro.engine.settings import RunSettings

    return RunSettings.from_env().slow_hierarchy


def _slow_mesi_requested() -> bool:
    """True when ``REPRO_SLOW_MESI`` disables the batched MESI drains.

    The batched drains are a layer *on top of* the fast path: with
    ``REPRO_SLOW_MESI=1`` the fast path still runs (L1 bulk probing and
    hit counting), but same-level coherence transitions — the L2-hit
    refill runs — drain through the scalar reference loop instead of the
    vectorised state/LRU updates.  Also a ``RunSettings`` delegate.
    """
    from repro.engine.settings import RunSettings

    return RunSettings.from_env().slow_mesi


def _aslist(values) -> list:
    """Fast conversion of numpy arrays (or sequences) to Python lists."""
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else list(values)


class CoherentHierarchy:
    """MESI-coherent L1/L2/L3 hierarchy for one :class:`Machine`.

    Public entry points take **PU** ids (what the scheduler places threads
    on); internally coherence operates on the owning core.
    """

    def __init__(
        self,
        machine: Machine,
        fast_path: bool | None = None,
        batch_mesi: bool | None = None,
    ) -> None:
        self.machine = machine
        if fast_path is None:
            fast_path = not _slow_hierarchy_requested()
        if batch_mesi is None:
            batch_mesi = not _slow_mesi_requested()
        #: whether the vectorised batch path (and array-backed caches) are used
        self.fast_path = fast_path
        #: whether same-level MESI transitions (L2-hit refill runs) are
        #: collected and drained with vectorised state/LRU updates; requires
        #: the fast path, and REPRO_SLOW_MESI=1 turns it off for
        #: differential testing against the scalar drain
        self.batch_mesi = fast_path and batch_mesi
        # Only L1s are ever batch-probed, so only they pay for the array
        # backing; L2/L3 see pure scalar traffic, where the dict-backed
        # implementation is fastest — the batched MESI drains touch the L2
        # only through its scalar interface plus the residency journal.
        l1_cls = SetAssocCache if fast_path else LegacySetAssocCache
        n_cores = machine.n_cores
        self.l1 = [l1_cls(machine.l1_params, f"L1.c{c}") for c in range(n_cores)]
        self.l2 = [LegacySetAssocCache(machine.l2_params, f"L2.c{c}") for c in range(n_cores)]
        self.l3 = [
            LegacySetAssocCache(machine.l3_params, f"L3.s{s}") for s in range(machine.n_sockets)
        ]
        #: line -> bitmask of cores holding it in L1 or L2
        self._sharers: dict[int, int] = {}
        #: line -> core owning it dirty (MESI M); absent if clean everywhere
        self._dirty_owner: dict[int, int] = {}
        self._core_of_pu = [machine.core_of(p) for p in range(machine.n_pus)]
        self._socket_of_core = [
            machine.socket_of(machine.pus_of_core(c)[0]) for c in range(n_cores)
        ]
        #: cores grouped per socket, as bitmasks, for fast same-socket tests
        self._socket_mask = [0] * machine.n_sockets
        for c in range(n_cores):
            self._socket_mask[self._socket_of_core[c]] |= 1 << c
        #: per-core countdown of batches running bypassed (reference loop)
        self._bypass = [0] * n_cores
        #: accesses bulk-counted by :meth:`_bulk_hits` (bypass heuristic)
        self._bulk_acc = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # internal helpers (all in core ids)
    # ------------------------------------------------------------------
    def _l1_to_scalar(self, core: int) -> None:
        """Swap a core's L1 to the dict backing (entering bypass).

        LRU order (per set, ascending age), dirty flags and counters are
        carried over exactly; ways are unobservable, so their layout is
        free to differ after a round-trip.
        """
        src = self.l1[core]
        dst = LegacySetAssocCache(self.machine.l1_params, src.name)
        order = np.argsort(src._age, axis=1)
        tags = src._tags
        dirty = src._dirty
        for s in range(src.num_sets):
            row_tags = tags[s]
            row_dirty = dirty[s]
            dst_set = dst._sets[s]
            for w in order[s].tolist():
                t = int(row_tags[w])
                if t != -1:
                    dst_set[t] = bool(row_dirty[w])
        dst.hits, dst.misses, dst.evictions = src.hits, src.misses, src.evictions
        self.l1[core] = dst

    def _l1_to_array(self, core: int) -> None:
        """Swap a core's L1 back to the array backing (leaving bypass)."""
        src = self.l1[core]
        dst = SetAssocCache(self.machine.l1_params, src.name)
        for od in src._sets:
            for line, d in od.items():
                dst.insert(line, d)
        dst.hits, dst.misses, dst.evictions = src.hits, src.misses, src.evictions
        self.l1[core] = dst

    def _evict_from_l2(self, core: int, line: int) -> None:
        """Handle an L2 victim: drop from L1, update directory, write back."""
        self.l1[core].remove(line)
        mask = self._sharers.get(line, 0) & ~(1 << core)
        if mask:
            self._sharers[line] = mask
        else:
            self._sharers.pop(line, None)
        if self._dirty_owner.get(line, NO_OWNER) == core:
            # Dirty data retreats into the (inclusive) local L3.
            del self._dirty_owner[line]
            self.l3[self._socket_of_core[core]].mark_dirty(line)

    def _evict_from_l3(self, socket: int, line: int, dirty: bool) -> None:
        """Handle an inclusive-L3 victim: back-invalidate the socket's cores."""
        mask = self._sharers.get(line, 0) & self._socket_mask[socket]
        owner = self._dirty_owner.get(line, NO_OWNER)
        for c in iter_set_bits(mask):
            self.l1[c].remove(line)
            self.l2[c].remove(line)
            self.stats.back_invalidations += 1
        rest = self._sharers.get(line, 0) & ~self._socket_mask[socket]
        if rest:
            self._sharers[line] = rest
        else:
            self._sharers.pop(line, None)
        if owner != NO_OWNER and self._socket_of_core[owner] == socket:
            del self._dirty_owner[line]
            dirty = True
        if dirty:
            self.stats.dram_writebacks += 1

    def _install_private(self, core: int, line: int) -> None:
        """Put *line* into L2 and L1 of *core*, handling victims."""
        victim = self.l2[core].insert(line)
        if victim is not None:
            self._evict_from_l2(core, victim[0])
        self.l1[core].insert(line)
        # L1 victims need no action: inclusion keeps their data in L2 and
        # dirtiness is tracked by the directory, not the L1 copy.

    def _install_l3(self, socket: int, line: int, dirty: bool = False) -> None:
        """Put *line* into a socket's L3, handling the inclusive victim."""
        victim = self.l3[socket].insert(line, dirty)
        if victim is not None:
            self._evict_from_l3(socket, victim[0], victim[1])

    # ------------------------------------------------------------------
    # public access API (PU ids)
    # ------------------------------------------------------------------
    def access(self, pu: int, line: int, is_write: bool, home_node: int) -> None:
        """Simulate one memory access by *pu* to *line* homed at *home_node*."""
        core = self._core_of_pu[pu]
        if is_write:
            self._write(core, line, home_node)
        else:
            self._read(core, line, home_node)

    def access_batch(self, pus, lines, writes, home_nodes) -> None:
        """Simulate a sequence of accesses given as parallel arrays."""
        access = self.access
        for pu, line, w, h in zip(
            _aslist(pus), _aslist(lines), _aslist(writes), _aslist(home_nodes)
        ):
            access(pu, line, w, h)

    def access_batch_pu(self, pu: int, lines, writes, home_nodes) -> None:
        """Batch variant for one PU (the engine's per-thread hot path).

        With :attr:`fast_path` the batch is pre-classified with NumPy:
        consecutive same-line accesses are run-length deduplicated, run
        heads are bulk-probed for L1 residency, and every L1-hit access is
        bulk-counted; only L1 misses (and hit-writes that need a coherence
        upgrade) fall into the per-access MESI slow path.  The produced
        :class:`CacheStats` and cache/directory state are bit-identical to
        the per-access reference loop (``REPRO_SLOW_HIERARCHY=1``).

        With :attr:`batch_mesi` (the default; ``REPRO_SLOW_MESI=1`` turns
        it off), same-level coherence transitions are additionally
        *collected and drained in batch*: run heads that miss L1 are
        classified against the L2's residency sets, and contiguous
        read-only L2-hit stretches drain through one batched distinct-set
        L1 install plus bulk hit/miss counting instead of the per-access
        loop (the L2's own LRU refresh stays scalar — it is a plain
        ``move_to_end`` per head either way).
        """
        core = self._core_of_pu[pu]
        if not self.fast_path or self._bypass[core]:
            if self.fast_path:
                self._bypass[core] -= 1
            read = self._read
            write = self._write
            for line, w, h in zip(_aslist(lines), _aslist(writes), _aslist(home_nodes)):
                if w:
                    write(core, line, h)
                else:
                    read(core, line, h)
            return
        if type(self.l1[core]) is LegacySetAssocCache:
            # Bypass just expired: restore the array backing for probing.
            self._l1_to_array(core)
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.size
        if not n:
            return
        writes = np.asarray(writes, dtype=bool)
        homes = np.asarray(home_nodes, dtype=np.int64)
        # Plain-list views for the scalar drains (indexing numpy scalars in
        # a Python loop costs ~3x a list element).
        lines_l = lines.tolist()
        writes_l = writes.tolist()
        homes_l = homes.tolist()

        # Run-length dedup of consecutive same-line accesses: after a run's
        # head access the line is resident and MRU, so the tail is L1 hits
        # by construction (plus at most one ownership upgrade on the first
        # write of the run).
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(lines[1:], lines[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        first_lines = lines[starts]
        wcum = np.concatenate(([0], np.cumsum(writes)))
        run_writes = wcum[ends] - wcum[starts]

        l1 = self.l1[core]
        journal = l1.journal
        if journal is None:
            journal = l1.journal = set()
        l2 = self.l2[core]
        batch_mesi = self.batch_mesi
        if batch_mesi and l2.journal is not journal:
            # Shared residency journal: slow-path L2 installs/evictions
            # must invalidate cached L2-hit classifications exactly as L1
            # changes invalidate hit classifications.  (Re-attached here
            # because bypass round-trips replace the L1 — and with it the
            # journal the L2 must share.)
            l2.journal = journal
        bulk_before = self._bulk_acc
        n_runs = starts.size
        i = 0
        while i < n_runs:
            limit = min(n_runs, i + PROBE_WINDOW)
            # One probe per window: residency (hit classification), way
            # locations (LRU refresh) and the L1 dirty bits, which the fast
            # engine maintains as a vectorised "this core owns the line in
            # M" mirror of the directory (L1/L2 dirty flags are otherwise
            # unobservable — only L3 victim dirtiness reaches the stats).
            # Slow-path installs/evictions later in the window make some of
            # these classifications stale; rather than re-probing, the L1
            # journals every line whose residency or way changes and stale
            # heads are filtered out span by span.
            journal.clear()
            w = limit - i
            resident, sets, ways, owned = l1.probe_batch(first_lines[i:limit])
            use_l2 = False
            if batch_mesi and w - int(resident.sum()) >= SMALL_SPAN:
                # Gate: the L2 probe and class segmentation only pay off
                # when at least one contiguous stretch of drain candidates
                # (L1-miss heads of read-only runs) is span-sized; windows
                # without one fall through to the plain hit-gap walk below
                # at zero extra cost.
                cand = ~resident & (run_writes[i:limit] == 0)
                ci = np.flatnonzero(cand)
                if ci.size >= SMALL_SPAN:
                    brk = np.flatnonzero(np.diff(ci) > 1)
                    stretch_start = np.concatenate(([0], brk + 1))
                    stretch_end = np.append(brk + 1, ci.size)
                    use_l2 = int((stretch_end - stretch_start).max()) >= SMALL_SPAN
            if use_l2:
                # Classify every run head: 0 = L1-resident (bulk hit
                # span), 1 = L1-miss/L2-hit with a read-only run (batched
                # refill drain), 2 = everything else (scalar reference).
                # Contiguous same-class stretches form the drain segments;
                # class-2 stretches and sub-threshold segments merge into
                # scalar stretches exactly like the small hit gaps below.
                cls = np.full(w, 2, dtype=np.int8)
                cls[resident] = 0
                l2_sets = l2._sets
                l2_mask = l2._set_mask
                cand_lines = first_lines[i:limit][ci]
                l2res = np.fromiter(
                    (ln in l2_sets[ln & l2_mask] for ln in cand_lines.tolist()),
                    dtype=bool,
                    count=ci.size,
                )
                cls[ci[l2res]] = 1
                seg = np.flatnonzero(cls[1:] != cls[:-1]) + 1
                seg_start = np.concatenate(([0], seg))
                seg_end = np.append(seg, w)
                cursor = 0
                for si in range(seg_start.size):
                    ga = int(seg_start[si])
                    gb = int(seg_end[si])
                    kind = int(cls[ga])
                    if kind == 2 or gb - ga < SMALL_SPAN:
                        continue  # merged into the scalar stretch
                    if ga > cursor:
                        self._slow_run(
                            core, lines_l, writes_l, homes_l,
                            int(starts[i + cursor]), int(ends[i + ga - 1]),
                        )
                    if kind == 0:
                        self._hit_span(
                            core, l1, journal, lines_l, writes_l, homes_l,
                            first_lines, starts, ends, run_writes,
                            sets, ways, owned, i, ga, gb,
                        )
                    else:
                        self._l2_span(
                            core, l1, l2, journal, lines_l, writes_l, homes_l,
                            first_lines, starts, ends, i, ga, gb,
                        )
                    cursor = gb
                if cursor < w:
                    self._slow_run(
                        core, lines_l, writes_l, homes_l,
                        int(starts[i + cursor]), int(ends[i + w - 1]),
                    )
                i = limit
                continue
            miss_rel = np.flatnonzero(~resident)
            # Hit gaps are the stretches between probe-time misses; only
            # gaps long enough for the vector bookkeeping to pay off are
            # processed in bulk.  Everything else — the miss runs plus any
            # sub-threshold hit gaps between them — is merged into
            # contiguous stretches drained through the reference loop in
            # one call each, so a miss-heavy window costs roughly the
            # reference loop, not a Python iteration per miss.
            gap_start = np.concatenate(([0], miss_rel + 1))
            gap_end = np.append(miss_rel, w)
            big = np.flatnonzero(gap_end - gap_start >= SMALL_SPAN)
            cursor = 0
            for g in big.tolist():
                ga = int(gap_start[g])
                gb = int(gap_end[g])
                if ga > cursor:
                    self._slow_run(
                        core, lines_l, writes_l, homes_l,
                        int(starts[i + cursor]), int(ends[i + ga - 1]),
                    )
                self._hit_span(
                    core, l1, journal, lines_l, writes_l, homes_l,
                    first_lines, starts, ends, run_writes,
                    sets, ways, owned, i, ga, gb,
                )
                cursor = gb
            if cursor < w:
                self._slow_run(
                    core, lines_l, writes_l, homes_l,
                    int(starts[i + cursor]), int(ends[i + w - 1]),
                )
            i = limit
        if n >= BYPASS_MIN_BATCH and (self._bulk_acc - bulk_before) * BYPASS_DEN < n * BYPASS_NUM:
            self._bypass[core] = BYPASS_BATCHES
            self._l1_to_scalar(core)

    def _hit_span(
        self,
        core: int,
        l1,
        journal: set[int],
        lines: list,
        writes: list,
        homes: list,
        first_lines: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        run_writes: np.ndarray,
        sets: np.ndarray,
        ways: np.ndarray,
        owned: np.ndarray,
        base: int,
        a: int,
        b: int,
    ) -> None:
        """Process runs ``base+a .. base+b-1`` whose heads probed L1-resident.

        Probe classifications go stale when slow-path traffic earlier in the
        window touched a head's line (eviction, or eviction + reinstall in a
        different way); those lines are exactly the L1's journal entries, so
        journal-touched heads are re-run through the reference path and only
        verified-fresh stretches are bulk-counted.  One vectorised scan at
        span entry flags the heads stale at that point; the stale heads'
        own re-runs are the only journal writers after it, so from the
        first growth onward the walk additionally checks each head against
        the live journal — an O(1) set probe, keeping the span linear even
        when every head is stale.  Indices *a*/*b* are window-relative;
        *base* is the window's first run index.
        """
        n = b - a
        if n < SMALL_SPAN:
            # Too short for the vector bookkeeping to pay off: drain
            # through the reference loop (exact by construction).
            self._slow_run(core, lines, writes, homes, int(starts[base + a]), int(ends[base + b - 1]))
            return
        span = first_lines[base + a : base + b]
        if journal:
            stale_f = np.isin(
                span, np.fromiter(journal, dtype=np.int64, count=len(journal))
            ).tolist()
        else:
            stale_f = None
        span_l = span.tolist()
        jlen = len(journal)
        grown = False
        cur = 0
        for idx in range(n):
            st = stale_f[idx] if stale_f is not None else False
            if not st and grown:
                st = span_l[idx] in journal
            if not st:
                continue
            if idx > cur:
                self._bulk_hits(
                    core, l1, first_lines, starts, ends, run_writes,
                    sets, ways, owned, base, a + cur, a + idx,
                )
            # Stale head: its line was evicted (and possibly reinstalled in
            # another way) since the probe — the reference path re-resolves
            # it, and may grow the journal.
            self._slow_run(
                core, lines, writes, homes,
                int(starts[base + a + idx]), int(ends[base + a + idx]),
            )
            cur = idx + 1
            if not grown and len(journal) > jlen:
                grown = True
        if cur < n:
            self._bulk_hits(
                core, l1, first_lines, starts, ends, run_writes,
                sets, ways, owned, base, a + cur, a + n,
            )

    def _bulk_hits(
        self,
        core: int,
        l1,
        first_lines: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        run_writes: np.ndarray,
        sets: np.ndarray,
        ways: np.ndarray,
        owned: np.ndarray,
        base: int,
        a: int,
        c: int,
    ) -> None:
        """Account runs ``base+a .. base+c-1`` — all L1 hits throughout.

        Hits never change residency, so the whole stretch is LRU-refreshed
        up-front (one tick per run head, in run order — tail accesses of a
        run keep it MRU, adding no reordering) and bulk-counted.  The only
        per-access work left is the coherence upgrade on the first write of
        a run whose line this core does not own; ``_acquire_ownership``
        touches the directory and remote caches only, never this L1, so the
        classification and the probed ways stay valid for the whole stretch.
        """
        stats = self.stats
        l1.refresh_ways(sets[a:c], ways[a:c])
        total = int(ends[base + c - 1] - starts[base + a])
        upgrades = 0
        pending = np.flatnonzero((run_writes[base + a : base + c] > 0) & ~owned[a:c])
        if pending.size:
            dget = self._dirty_owner.get
            for j in pending.tolist():
                line = int(first_lines[base + a + j])
                # Re-check: an earlier upgrade in this window may have
                # acquired the line already (probe bits are stale).
                if dget(line, NO_OWNER) != core:
                    # L1-hit write needing M: counts as a hit (the
                    # reference path's lookup), then upgrades; LRU was
                    # refreshed above.
                    stats.l1_hits += 1
                    l1.hits += 1
                    self._acquire_ownership(core, line)
                    upgrades += 1
        stats.l1_hits += total - upgrades
        l1.hits += total - upgrades
        self._bulk_acc += total

    def _l2_span(
        self,
        core: int,
        l1,
        l2,
        journal: set[int],
        lines: list,
        writes: list,
        homes: list,
        first_lines: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        base: int,
        a: int,
        b: int,
    ) -> None:
        """Drain runs ``base+a .. base+b-1``: heads probed L1-miss/L2-hit,
        every access a read.

        One upfront pass over the span flags the heads that must re-run
        through the reference path, then a single walk emits drained
        chunks between them:

        * *stale heads* — their line is in the journal at span start (its
          L1 or L2 residency changed between the probe and this span), or
          it duplicates an earlier in-span line.  Installs and evictions
          performed *inside* the span — by the drains or by the scalar
          re-runs themselves — touch only lines of earlier span heads (or
          their L1 victims, which were probed resident and so live in a
          different segment), so their future impact lands exactly on the
          duplicate positions; one upfront scan covers the whole span.
          The exception is the L2 side: a stale head's re-run can miss L2
          and its refill can evict an L2 line (directly or through an L3
          back-invalidation) that a later head was classified against.
          During the span the L2 journals into a private set, and
          whenever a re-run grows it, the matching later heads are
          flagged stale too.
        * *hazard heads* — their L1 set repeats within the current chunk.
          A batched install needs pairwise-distinct sets (victim choices
          couple within one :meth:`SetAssocCache.insert_batch`), so a
          repeated set starts the next chunk; no scalar run is needed.

        Chunks shorter than :data:`SMALL_SPAN` drain through the scalar
        reference path — same cutoff, same reasoning as the hit gaps.
        """
        n = b - a
        span = first_lines[base + a : base + b]
        scalar_f: np.ndarray | list
        if journal:
            scalar_f = np.isin(
                span, np.fromiter(journal, dtype=np.int64, count=len(journal))
            )
        else:
            scalar_f = np.zeros(n, dtype=bool)
        uniq_first = np.unique(span, return_index=True)[1]
        if uniq_first.size < n:
            dup = np.ones(n, dtype=bool)
            dup[uniq_first] = False
            scalar_f |= dup
        # prev[i] = closest earlier in-span position with the same L1 set
        # (or -1): the hazard cut consults it against the chunk start.
        sets1 = span & (l1.num_sets - 1)
        order = np.argsort(sets1, kind="stable")
        prev = np.full(n, -1, dtype=np.int64)
        same = sets1[order[1:]] == sets1[order[:-1]]
        prev[order[1:][same]] = order[:-1][same]
        scalar_f = scalar_f.tolist()
        prev_l = prev.tolist()
        # Private L2 journal for the span (see docstring); merged back at
        # the end so later segments' staleness checks still see L2 churn.
        l2_probe: set[int] = set()
        l2.journal = l2_probe
        try:
            cur = 0
            for idx in range(n):
                if scalar_f[idx]:
                    if idx > cur:
                        self._emit_chunk(
                            core, l1, l2, lines, writes, homes,
                            first_lines, starts, ends, base, a + cur, a + idx,
                        )
                    self._slow_run(
                        core, lines, writes, homes,
                        int(starts[base + idx + a]), int(ends[base + idx + a]),
                    )
                    cur = idx + 1
                    if l2_probe:
                        for p in np.flatnonzero(
                            np.isin(
                                span,
                                np.fromiter(
                                    l2_probe, dtype=np.int64, count=len(l2_probe)
                                ),
                            )
                        ).tolist():
                            if p > idx:
                                scalar_f[p] = True
                        journal.update(l2_probe)
                        l2_probe.clear()
                elif prev_l[idx] >= cur:
                    self._emit_chunk(
                        core, l1, l2, lines, writes, homes,
                        first_lines, starts, ends, base, a + cur, a + idx,
                    )
                    cur = idx
            if cur < n:
                self._emit_chunk(
                    core, l1, l2, lines, writes, homes,
                    first_lines, starts, ends, base, a + cur, a + n,
                )
        finally:
            journal.update(l2_probe)
            l2.journal = journal

    def _emit_chunk(
        self,
        core: int,
        l1,
        l2,
        lines: list,
        writes: list,
        homes: list,
        first_lines: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        base: int,
        a: int,
        c: int,
    ) -> None:
        """Drain runs ``base+a .. base+c-1`` (pairwise-distinct L1 sets,
        all L2-hit refills) — scalar below :data:`SMALL_SPAN`."""
        if c - a < SMALL_SPAN:
            self._slow_run(
                core, lines, writes, homes, int(starts[base + a]), int(ends[base + c - 1])
            )
        else:
            self._drain_l2_hits(core, l1, l2, first_lines, starts, ends, base, a, c)

    def _drain_l2_hits(
        self,
        core: int,
        l1,
        l2,
        first_lines: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        base: int,
        a: int,
        c: int,
    ) -> None:
        """Account runs ``base+a .. base+c-1`` — L2-hit refills, read-only.

        The reference path per run: one L1 lookup miss, one L2 lookup hit
        (LRU refresh), one L1 install carrying the M-ownership mirror in
        its dirty bit, then pure L1 hits for the tail.  The L2 side stays
        scalar (a ``move_to_end`` per head, exactly the reference lookup's
        LRU refresh); the L1 side is vectorised — one batched distinct-set
        install plus bulk hit/miss counting.  The directory is untouched:
        an L2-resident core is already a sharer (invariant 2) and a read
        never moves ownership.
        """
        stats = self.stats
        k = c - a
        head_lines = first_lines[base + a : base + c]
        l2_sets = l2._sets
        l2_mask = l2._set_mask
        for ln in head_lines.tolist():
            l2_sets[ln & l2_mask].move_to_end(ln)
        dget = self._dirty_owner.get
        dirty = np.fromiter(
            (dget(line, NO_OWNER) == core for line in head_lines.tolist()),
            dtype=bool,
            count=k,
        )
        l1.insert_batch(head_lines, dirty)
        total = int(ends[base + c - 1] - starts[base + a])
        stats.l1_misses += k
        l1.misses += k
        stats.l2_hits += k
        l2.hits += k
        stats.l1_hits += total - k
        l1.hits += total - k
        self._bulk_acc += total

    def _slow_run(
        self,
        core: int,
        lines: list,
        writes: list,
        homes: list,
        start: int,
        end: int,
    ) -> None:
        """Reference per-access MESI path for accesses ``start .. end-1``."""
        read = self._read
        write = self._write
        for k in range(start, end):
            if writes[k]:
                write(core, lines[k], homes[k])
            else:
                read(core, lines[k], homes[k])

    # ------------------------------------------------------------------
    # protocol (core ids)
    # ------------------------------------------------------------------
    def _read(self, core: int, line: int, home_node: int) -> None:
        stats = self.stats
        if self.l1[core].lookup(line):
            stats.l1_hits += 1
            return
        stats.l1_misses += 1
        if self.l2[core].lookup(line):
            stats.l2_hits += 1
            # The install carries the fast path's ownership mirror: the L1
            # dirty bit means "this core owns the line in M".
            self.l1[core].insert(line, self._dirty_owner.get(line, NO_OWNER) == core)
            return
        stats.l2_misses += 1

        socket = self._socket_of_core[core]
        owner = self._dirty_owner.get(line, NO_OWNER)
        if self.l3[socket].lookup(line):
            stats.l3_hits += 1
            if owner != NO_OWNER and owner != core:
                # Dirty in a same-socket private cache (inclusion guarantees
                # the owner is on this socket if our L3 holds the line).
                stats.c2c_intra += 1
                del self._dirty_owner[line]
                self.l1[owner].clear_dirty(line)
                self.l3[socket].mark_dirty(line)
        else:
            stats.l3_misses += 1
            if owner != NO_OWNER:
                # Dirty on the other socket: off-chip cache-to-cache.
                stats.c2c_inter += 1
                del self._dirty_owner[line]
                self.l1[owner].clear_dirty(line)
                owner_socket = self._socket_of_core[owner]
                self.l3[owner_socket].mark_dirty(line)
                self._install_l3(socket, line)
            else:
                served = False
                for s in range(self.machine.n_sockets):
                    if s != socket and self.l3[s].contains(line):
                        stats.c2c_inter += 1
                        self._install_l3(socket, line)
                        served = True
                        break
                if not served:
                    if home_node == socket:
                        stats.dram_reads_local += 1
                    else:
                        stats.dram_reads_remote += 1
                    self._install_l3(socket, line)
        self._install_private(core, line)
        self._sharers[line] = self._sharers.get(line, 0) | (1 << core)

    def _write(self, core: int, line: int, home_node: int) -> None:
        stats = self.stats
        owner = self._dirty_owner.get(line, NO_OWNER)

        if self.l1[core].lookup(line):
            stats.l1_hits += 1
            if owner == core:
                return
            self._acquire_ownership(core, line)
            return
        stats.l1_misses += 1
        if self.l2[core].lookup(line):
            stats.l2_hits += 1
            self.l1[core].insert(line)
            if owner != core:
                self._acquire_ownership(core, line)
            else:
                self.l1[core].mark_dirty(line)
            return
        stats.l2_misses += 1

        # RFO: fetch with intent to modify.
        socket = self._socket_of_core[core]
        if self.l3[socket].lookup(line):
            stats.l3_hits += 1
            if owner != NO_OWNER and owner != core:
                stats.c2c_intra += 1
                self._drop_owner_copies(owner, line)
        else:
            stats.l3_misses += 1
            if owner != NO_OWNER and owner != core:
                stats.c2c_inter += 1
                self._drop_owner_copies(owner, line)
                self._install_l3(socket, line)
            else:
                served = False
                for s in range(self.machine.n_sockets):
                    if s != socket and self.l3[s].contains(line):
                        stats.c2c_inter += 1
                        served = True
                        break
                if not served:
                    if home_node == socket:
                        stats.dram_reads_local += 1
                    else:
                        stats.dram_reads_remote += 1
                self._install_l3(socket, line)
        self._invalidate_other_copies(core, line)
        self._install_private(core, line)
        self.l1[core].mark_dirty(line)
        self._sharers[line] = 1 << core
        self._dirty_owner[line] = core
        self.l3[socket].mark_dirty(line)

    def _acquire_ownership(self, core: int, line: int) -> None:
        """Upgrade a resident clean/shared copy to M (hit path of a write)."""
        stats = self.stats
        others = self._sharers.get(line, 0) & ~(1 << core)
        remote_l3 = any(
            s != self._socket_of_core[core] and self.l3[s].contains(line)
            for s in range(self.machine.n_sockets)
        )
        if others == 0 and not remote_l3:
            stats.silent_upgrades += 1
        else:
            self._invalidate_other_copies(core, line)
        self.l1[core].mark_dirty(line)
        self._sharers[line] = 1 << core
        self._dirty_owner[line] = core
        self.l3[self._socket_of_core[core]].mark_dirty(line)

    def _drop_owner_copies(self, owner: int, line: int) -> None:
        """Remove the dirty owner's private copies (its data moved away)."""
        self.l1[owner].remove(line)
        self.l2[owner].remove(line)
        mask = self._sharers.get(line, 0) & ~(1 << owner)
        if mask:
            self._sharers[line] = mask
        else:
            self._sharers.pop(line, None)
        del self._dirty_owner[line]
        self.stats.invalidations += 1

    def _invalidate_other_copies(self, core: int, line: int) -> None:
        """Invalidate all other private copies and remote L3 copies."""
        stats = self.stats
        mask = self._sharers.get(line, 0) & ~(1 << core)
        for c in iter_set_bits(mask):
            self.l1[c].remove(line)
            self.l2[c].remove(line)
            stats.invalidations += 1
        remaining = self._sharers.get(line, 0) & ~mask
        if remaining:
            self._sharers[line] = remaining
        else:
            self._sharers.pop(line, None)
        my_socket = self._socket_of_core[core]
        for s in range(self.machine.n_sockets):
            if s == my_socket:
                continue
            if self.l3[s].contains(line):
                dirty = self.l3[s].remove(line)
                stats.invalidations += 1
                if dirty:
                    stats.dram_writebacks += 1

    # ------------------------------------------------------------------
    # inspection / verification
    # ------------------------------------------------------------------
    def sharer_mask(self, line: int) -> int:
        """Current private-cache sharer bitmask of *line* (core bits)."""
        return self._sharers.get(line, 0)

    def dirty_owner(self, line: int) -> int:
        """Core owning *line* dirty, or -1."""
        return self._dirty_owner.get(line, NO_OWNER)

    def check_invariants(self) -> list[str]:
        """Return a list of invariant violations (empty when consistent)."""
        problems: list[str] = []
        n_cores = self.machine.n_cores
        presence = [set(self.l2[c].resident_lines()) for c in range(n_cores)]
        l1_presence = [set(self.l1[c].resident_lines()) for c in range(n_cores)]
        l3_presence = [set(cache.resident_lines()) for cache in self.l3]
        for c in range(n_cores):
            extra = l1_presence[c] - presence[c]
            if extra:
                problems.append(f"L1 of core{c} not subset of L2: {sorted(extra)[:4]}")
            s = self._socket_of_core[c]
            not_incl = presence[c] - l3_presence[s]
            if not_incl:
                problems.append(f"L2 of core{c} not in L3 s{s}: {sorted(not_incl)[:4]}")
        # directory vs presence
        for line in set(self._sharers):
            mask = self._sharers[line]
            actual = 0
            for c in range(n_cores):
                if line in presence[c]:
                    actual |= 1 << c
            if actual != mask:
                problems.append(
                    f"sharer mask mismatch line {line}: dir={mask:x} act={actual:x}"
                )
        for c in range(n_cores):
            for line in presence[c]:
                if not self._sharers.get(line, 0) & (1 << c):
                    problems.append(f"line {line} in L2 of core{c} but not in directory")
        for line, owner in self._dirty_owner.items():
            mask = self._sharers.get(line, 0)
            if mask != (1 << owner):
                problems.append(f"dirty line {line} owner {owner} has sharers {mask:x}")
            owner_socket = self._socket_of_core[owner]
            for s, pres in enumerate(l3_presence):
                if s != owner_socket and line in pres:
                    problems.append(f"dirty line {line} also present in L3 s{s}")
        return problems
