"""Coherent cache hierarchy: private L1/L2 per core, inclusive L3 per socket.

The L1/L2 are private to a physical **core** and shared by its SMT siblings —
this is exactly the paper's communication case (a): threads mapped to the two
hardware threads of one core communicate through the fast L1/L2.  A global
directory tracks, per line, the bitmask of cores holding it in their private
caches and the core owning it dirty (MESI ``M``).  The protocol follows
SandyBridge-EP semantics closely enough for the paper's metrics:

* inclusive L3 — a line cached privately on a socket is in that socket's L3;
  L3 evictions back-invalidate private copies;
* writes invalidate every other copy (private and remote-L3); writes to a
  line nobody else holds upgrade silently (``E`` -> ``M``);
* reads hitting dirty data in another private cache trigger a
  **cache-to-cache transaction** — intra-socket if the owner shares the L3,
  inter-socket (off-chip) otherwise;
* demand misses that no cache can serve go to DRAM, counted local/remote
  relative to the accessing PU's NUMA node.

Invariants (checked by :meth:`CoherentHierarchy.check_invariants`):

1. L1[c] is a subset of L2[c];
2. ``c in sharers[l]``  iff  ``l in L2[c]``;
3. a privately cached line is present in its socket's L3 (inclusion);
4. a dirty-owned line has exactly one private sharer and lives in no other
   socket's L3.
"""

from __future__ import annotations

from repro.cachesim.cache import SetAssocCache
from repro.cachesim.line import iter_set_bits
from repro.cachesim.stats import CacheStats
from repro.machine.topology import Machine

NO_OWNER = -1


def _aslist(values) -> list:
    """Fast conversion of numpy arrays (or sequences) to Python lists."""
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else list(values)


class CoherentHierarchy:
    """MESI-coherent L1/L2/L3 hierarchy for one :class:`Machine`.

    Public entry points take **PU** ids (what the scheduler places threads
    on); internally coherence operates on the owning core.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        n_cores = machine.n_cores
        self.l1 = [SetAssocCache(machine.l1_params, f"L1.c{c}") for c in range(n_cores)]
        self.l2 = [SetAssocCache(machine.l2_params, f"L2.c{c}") for c in range(n_cores)]
        self.l3 = [SetAssocCache(machine.l3_params, f"L3.s{s}") for s in range(machine.n_sockets)]
        #: line -> bitmask of cores holding it in L1 or L2
        self._sharers: dict[int, int] = {}
        #: line -> core owning it dirty (MESI M); absent if clean everywhere
        self._dirty_owner: dict[int, int] = {}
        self._core_of_pu = [machine.core_of(p) for p in range(machine.n_pus)]
        self._socket_of_core = [
            machine.socket_of(machine.pus_of_core(c)[0]) for c in range(n_cores)
        ]
        #: cores grouped per socket, as bitmasks, for fast same-socket tests
        self._socket_mask = [0] * machine.n_sockets
        for c in range(n_cores):
            self._socket_mask[self._socket_of_core[c]] |= 1 << c
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # internal helpers (all in core ids)
    # ------------------------------------------------------------------
    def _evict_from_l2(self, core: int, line: int) -> None:
        """Handle an L2 victim: drop from L1, update directory, write back."""
        self.l1[core].remove(line)
        mask = self._sharers.get(line, 0) & ~(1 << core)
        if mask:
            self._sharers[line] = mask
        else:
            self._sharers.pop(line, None)
        if self._dirty_owner.get(line, NO_OWNER) == core:
            # Dirty data retreats into the (inclusive) local L3.
            del self._dirty_owner[line]
            self.l3[self._socket_of_core[core]].mark_dirty(line)

    def _evict_from_l3(self, socket: int, line: int, dirty: bool) -> None:
        """Handle an inclusive-L3 victim: back-invalidate the socket's cores."""
        mask = self._sharers.get(line, 0) & self._socket_mask[socket]
        owner = self._dirty_owner.get(line, NO_OWNER)
        for c in iter_set_bits(mask):
            self.l1[c].remove(line)
            self.l2[c].remove(line)
            self.stats.back_invalidations += 1
        rest = self._sharers.get(line, 0) & ~self._socket_mask[socket]
        if rest:
            self._sharers[line] = rest
        else:
            self._sharers.pop(line, None)
        if owner != NO_OWNER and self._socket_of_core[owner] == socket:
            del self._dirty_owner[line]
            dirty = True
        if dirty:
            self.stats.dram_writebacks += 1

    def _install_private(self, core: int, line: int) -> None:
        """Put *line* into L2 and L1 of *core*, handling victims."""
        victim = self.l2[core].insert(line)
        if victim is not None:
            self._evict_from_l2(core, victim[0])
        self.l1[core].insert(line)
        # L1 victims need no action: inclusion keeps their data in L2 and
        # dirtiness is tracked by the directory, not the L1 copy.

    def _install_l3(self, socket: int, line: int, dirty: bool = False) -> None:
        """Put *line* into a socket's L3, handling the inclusive victim."""
        victim = self.l3[socket].insert(line, dirty)
        if victim is not None:
            self._evict_from_l3(socket, victim[0], victim[1])

    # ------------------------------------------------------------------
    # public access API (PU ids)
    # ------------------------------------------------------------------
    def access(self, pu: int, line: int, is_write: bool, home_node: int) -> None:
        """Simulate one memory access by *pu* to *line* homed at *home_node*."""
        core = self._core_of_pu[pu]
        if is_write:
            self._write(core, line, home_node)
        else:
            self._read(core, line, home_node)

    def access_batch(self, pus, lines, writes, home_nodes) -> None:
        """Simulate a sequence of accesses given as parallel arrays."""
        access = self.access
        for pu, line, w, h in zip(
            _aslist(pus), _aslist(lines), _aslist(writes), _aslist(home_nodes)
        ):
            access(pu, line, w, h)

    def access_batch_pu(self, pu: int, lines, writes, home_nodes) -> None:
        """Batch variant for one PU (the engine's per-thread hot path)."""
        core = self._core_of_pu[pu]
        read = self._read
        write = self._write
        for line, w, h in zip(_aslist(lines), _aslist(writes), _aslist(home_nodes)):
            if w:
                write(core, line, h)
            else:
                read(core, line, h)

    # ------------------------------------------------------------------
    # protocol (core ids)
    # ------------------------------------------------------------------
    def _read(self, core: int, line: int, home_node: int) -> None:
        stats = self.stats
        if self.l1[core].lookup(line):
            stats.l1_hits += 1
            return
        stats.l1_misses += 1
        if self.l2[core].lookup(line):
            stats.l2_hits += 1
            self.l1[core].insert(line)
            return
        stats.l2_misses += 1

        socket = self._socket_of_core[core]
        owner = self._dirty_owner.get(line, NO_OWNER)
        if self.l3[socket].lookup(line):
            stats.l3_hits += 1
            if owner != NO_OWNER and owner != core:
                # Dirty in a same-socket private cache (inclusion guarantees
                # the owner is on this socket if our L3 holds the line).
                stats.c2c_intra += 1
                del self._dirty_owner[line]
                self.l3[socket].mark_dirty(line)
        else:
            stats.l3_misses += 1
            if owner != NO_OWNER:
                # Dirty on the other socket: off-chip cache-to-cache.
                stats.c2c_inter += 1
                del self._dirty_owner[line]
                owner_socket = self._socket_of_core[owner]
                self.l3[owner_socket].mark_dirty(line)
                self._install_l3(socket, line)
            else:
                served = False
                for s in range(self.machine.n_sockets):
                    if s != socket and self.l3[s].contains(line):
                        stats.c2c_inter += 1
                        self._install_l3(socket, line)
                        served = True
                        break
                if not served:
                    if home_node == socket:
                        stats.dram_reads_local += 1
                    else:
                        stats.dram_reads_remote += 1
                    self._install_l3(socket, line)
        self._install_private(core, line)
        self._sharers[line] = self._sharers.get(line, 0) | (1 << core)

    def _write(self, core: int, line: int, home_node: int) -> None:
        stats = self.stats
        owner = self._dirty_owner.get(line, NO_OWNER)

        if self.l1[core].lookup(line):
            stats.l1_hits += 1
            if owner == core:
                return
            self._acquire_ownership(core, line)
            return
        stats.l1_misses += 1
        if self.l2[core].lookup(line):
            stats.l2_hits += 1
            self.l1[core].insert(line)
            if owner != core:
                self._acquire_ownership(core, line)
            return
        stats.l2_misses += 1

        # RFO: fetch with intent to modify.
        socket = self._socket_of_core[core]
        if self.l3[socket].lookup(line):
            stats.l3_hits += 1
            if owner != NO_OWNER and owner != core:
                stats.c2c_intra += 1
                self._drop_owner_copies(owner, line)
        else:
            stats.l3_misses += 1
            if owner != NO_OWNER and owner != core:
                stats.c2c_inter += 1
                self._drop_owner_copies(owner, line)
                self._install_l3(socket, line)
            else:
                served = False
                for s in range(self.machine.n_sockets):
                    if s != socket and self.l3[s].contains(line):
                        stats.c2c_inter += 1
                        served = True
                        break
                if not served:
                    if home_node == socket:
                        stats.dram_reads_local += 1
                    else:
                        stats.dram_reads_remote += 1
                self._install_l3(socket, line)
        self._invalidate_other_copies(core, line)
        self._install_private(core, line)
        self._sharers[line] = 1 << core
        self._dirty_owner[line] = core
        self.l3[socket].mark_dirty(line)

    def _acquire_ownership(self, core: int, line: int) -> None:
        """Upgrade a resident clean/shared copy to M (hit path of a write)."""
        stats = self.stats
        others = self._sharers.get(line, 0) & ~(1 << core)
        remote_l3 = any(
            s != self._socket_of_core[core] and self.l3[s].contains(line)
            for s in range(self.machine.n_sockets)
        )
        if others == 0 and not remote_l3:
            stats.silent_upgrades += 1
        else:
            self._invalidate_other_copies(core, line)
        self._sharers[line] = 1 << core
        self._dirty_owner[line] = core
        self.l3[self._socket_of_core[core]].mark_dirty(line)

    def _drop_owner_copies(self, owner: int, line: int) -> None:
        """Remove the dirty owner's private copies (its data moved away)."""
        self.l1[owner].remove(line)
        self.l2[owner].remove(line)
        mask = self._sharers.get(line, 0) & ~(1 << owner)
        if mask:
            self._sharers[line] = mask
        else:
            self._sharers.pop(line, None)
        del self._dirty_owner[line]
        self.stats.invalidations += 1

    def _invalidate_other_copies(self, core: int, line: int) -> None:
        """Invalidate all other private copies and remote L3 copies."""
        stats = self.stats
        mask = self._sharers.get(line, 0) & ~(1 << core)
        for c in iter_set_bits(mask):
            self.l1[c].remove(line)
            self.l2[c].remove(line)
            stats.invalidations += 1
        remaining = self._sharers.get(line, 0) & ~mask
        if remaining:
            self._sharers[line] = remaining
        else:
            self._sharers.pop(line, None)
        my_socket = self._socket_of_core[core]
        for s in range(self.machine.n_sockets):
            if s == my_socket:
                continue
            if self.l3[s].contains(line):
                dirty = self.l3[s].remove(line)
                stats.invalidations += 1
                if dirty:
                    stats.dram_writebacks += 1

    # ------------------------------------------------------------------
    # inspection / verification
    # ------------------------------------------------------------------
    def sharer_mask(self, line: int) -> int:
        """Current private-cache sharer bitmask of *line* (core bits)."""
        return self._sharers.get(line, 0)

    def dirty_owner(self, line: int) -> int:
        """Core owning *line* dirty, or -1."""
        return self._dirty_owner.get(line, NO_OWNER)

    def check_invariants(self) -> list[str]:
        """Return a list of invariant violations (empty when consistent)."""
        problems: list[str] = []
        n_cores = self.machine.n_cores
        presence = [set(self.l2[c].resident_lines()) for c in range(n_cores)]
        l1_presence = [set(self.l1[c].resident_lines()) for c in range(n_cores)]
        l3_presence = [set(cache.resident_lines()) for cache in self.l3]
        for c in range(n_cores):
            extra = l1_presence[c] - presence[c]
            if extra:
                problems.append(f"L1 of core{c} not subset of L2: {sorted(extra)[:4]}")
            s = self._socket_of_core[c]
            not_incl = presence[c] - l3_presence[s]
            if not_incl:
                problems.append(f"L2 of core{c} not in L3 s{s}: {sorted(not_incl)[:4]}")
        # directory vs presence
        for line in set(self._sharers):
            mask = self._sharers[line]
            actual = 0
            for c in range(n_cores):
                if line in presence[c]:
                    actual |= 1 << c
            if actual != mask:
                problems.append(
                    f"sharer mask mismatch line {line}: dir={mask:x} act={actual:x}"
                )
        for c in range(n_cores):
            for line in presence[c]:
                if not self._sharers.get(line, 0) & (1 << c):
                    problems.append(f"line {line} in L2 of core{c} but not in directory")
        for line, owner in self._dirty_owner.items():
            mask = self._sharers.get(line, 0)
            if mask != (1 << owner):
                problems.append(f"dirty line {line} owner {owner} has sharers {mask:x}")
            owner_socket = self._socket_of_core[owner]
            for s, pres in enumerate(l3_presence):
                if s != owner_socket and line in pres:
                    problems.append(f"dirty line {line} also present in L3 s{s}")
        return problems
