"""MESI line states and line-id helpers."""

from __future__ import annotations

import enum

import numpy as np

from repro.units import CACHE_LINE_SHIFT


class MesiState(str, enum.Enum):
    """Coherence state of a line's *private-cache domain*.

    The directory tracks one global state per line: with at most one private
    owner the line is ``MODIFIED`` (dirty) or ``EXCLUSIVE`` (clean); with
    multiple private copies it is ``SHARED``; with none it is ``INVALID``
    (it may still sit in an L3).
    """

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


def line_of(vaddr: int) -> int:
    """Cache-line id containing *vaddr*."""
    return vaddr >> CACHE_LINE_SHIFT


def lines_of(vaddrs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`line_of`."""
    return np.asarray(vaddrs, dtype=np.int64) >> CACHE_LINE_SHIFT


def popcount(mask: int) -> int:
    """Number of set bits (sharer count of a bitmask)."""
    return bin(mask).count("1")


def lowest_set_bit(mask: int) -> int:
    """Index of the least-significant set bit; -1 for empty masks."""
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1


def iter_set_bits(mask: int):
    """Yield the indices of all set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
