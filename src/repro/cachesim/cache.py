"""A set-associative cache with true LRU replacement.

Stores only *presence* (plus a dirty flag for L3 write-back accounting);
coherence state lives in the directory (:mod:`repro.cachesim.hierarchy`).

Two implementations share the same behaviour:

* :class:`SetAssocCache` — array-backed, for caches that serve the
  hierarchy's vectorised batch probes (the L1s in fast mode).  Tags live
  in a NumPy ``(num_sets, ways)`` matrix with a monotonic age counter per
  way for LRU and a dirty bit-matrix; a ``line -> flat position`` dict
  keeps the scalar hot path at dict speed while the matrix enables
  :meth:`probe_batch` / :meth:`refresh_ways`.
* :class:`LegacySetAssocCache` — the original ``OrderedDict``-per-set
  implementation: the reference for differential testing
  (``REPRO_SLOW_HIERARCHY=1``) and, being the fastest under pure scalar
  traffic, the implementation of the never-batch-probed L2/L3 levels in
  both modes (the batched MESI drains touch the L2 through its scalar
  interface plus an optional residency journal).

Both produce identical hit/miss/eviction sequences: LRU order is total
(strictly monotonic ages vs. ``OrderedDict`` insertion order), victims are
the least recently used way, and re-insertion refreshes recency and ORs the
dirty flag.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.machine.cache_params import CacheParams

__all__ = ["SetAssocCache", "LegacySetAssocCache"]


class SetAssocCache:
    """One cache instance (an L1, L2 or L3), array-backed.

    Lines are identified by their global line id; the set index is derived
    from its low bits.  ``_tags[s, w]`` holds the line resident in way *w*
    of set *s* (-1 when invalid), ``_age[s, w]`` the tick of its last use
    (higher = more recent), ``_dirty[s, w]`` its dirty flag.  ``_where``
    maps every resident line to its flat ``s * ways + w`` position so the
    scalar ops are one dict probe plus one flat array write.
    """

    __slots__ = (
        "name",
        "num_sets",
        "ways",
        "_set_mask",
        "_tags",
        "_age",
        "_dirty",
        "_tags1",
        "_age1",
        "_dirty1",
        "_free",
        "_where",
        "_tick",
        "hits",
        "misses",
        "evictions",
        "journal",
    )

    def __init__(self, params: CacheParams, name: str | None = None) -> None:
        self.name = name or params.name
        self.num_sets = params.num_sets
        self.ways = params.associativity
        self._set_mask = self.num_sets - 1
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._age = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        # flat aliases (shared memory) for cheap scalar element access
        self._tags1 = self._tags.ravel()
        self._age1 = self._age.ravel()
        self._dirty1 = self._dirty.ravel()
        #: per-set stack of invalid ways (which invalid way a fill takes is
        #: unobservable, so stack order is fine)
        self._free: list[list[int]] = [
            list(range(self.ways - 1, -1, -1)) for _ in range(self.num_sets)
        ]
        self._where: dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional residency journal: when set (the hierarchy's fast path
        #: attaches one to L1s), every line whose residency or way changes
        #: is recorded, so a batch probe can tell which of its cached
        #: classifications went stale without re-probing.
        self.journal: set[int] | None = None

    def set_index(self, line: int) -> int:
        """Set holding *line*."""
        return line & self._set_mask

    # -- scalar path --------------------------------------------------------
    def lookup(self, line: int) -> bool:
        """Probe for *line*; refreshes LRU on hit.  Counts hit/miss."""
        fw = self._where.get(line)
        if fw is not None:
            self._age1[fw] = self._tick
            self._tick += 1
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or hit/miss accounting."""
        return line in self._where

    def insert(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install *line*; returns ``(victim_line, victim_dirty)`` if one was
        evicted, else ``None``.  Re-inserting an existing line refreshes LRU
        and ORs the dirty flag."""
        fw = self._where.get(line)
        if fw is not None:
            if dirty:
                self._dirty1[fw] = True
            self._age1[fw] = self._tick
            self._tick += 1
            return None
        s = line & self._set_mask
        base = s * self.ways
        victim: tuple[int, bool] | None = None
        free = self._free[s]
        if free:
            fw = base + free.pop()
        else:
            fw = base + int(self._age1[base : base + self.ways].argmin())
            victim_line = int(self._tags1[fw])
            victim = (victim_line, bool(self._dirty1[fw]))
            del self._where[victim_line]
            self.evictions += 1
            if self.journal is not None:
                self.journal.add(victim_line)
        self._tags1[fw] = line
        self._dirty1[fw] = dirty
        self._age1[fw] = self._tick
        self._tick += 1
        self._where[line] = fw
        if self.journal is not None:
            self.journal.add(line)
        return victim

    def remove(self, line: int) -> bool:
        """Invalidate *line* if present; returns its dirty flag (False if absent)."""
        fw = self._where.pop(line, None)
        if fw is None:
            return False
        dirty = bool(self._dirty1[fw])
        self._tags1[fw] = -1
        self._dirty1[fw] = False
        s, w = divmod(fw, self.ways)
        self._free[s].append(w)
        if self.journal is not None:
            self.journal.add(line)
        return dirty

    def mark_dirty(self, line: int) -> None:
        """Set the dirty flag of a resident line (no-op if absent)."""
        fw = self._where.get(line)
        if fw is not None:
            self._dirty1[fw] = True

    def is_dirty(self, line: int) -> bool:
        """Dirty flag of a resident line (False if absent)."""
        fw = self._where.get(line)
        return bool(self._dirty1[fw]) if fw is not None else False

    def clear_dirty(self, line: int) -> None:
        """Clear the dirty flag of a resident line (no-op if absent)."""
        fw = self._where.get(line)
        if fw is not None:
            self._dirty1[fw] = False

    def flush(self) -> int:
        """Drop all contents; returns the number of lines dropped."""
        n = len(self._where)
        if self.journal is not None:
            self.journal.update(self._where)
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._free = [list(range(self.ways - 1, -1, -1)) for _ in range(self.num_sets)]
        self._where.clear()
        return n

    def insert_batch(self, lines: np.ndarray, dirty: np.ndarray) -> None:
        """Install *lines* (mapping to pairwise-distinct sets, none resident).

        Equivalent to ``for x: insert(lines[x], dirty[x])`` under those
        preconditions — the distinct-set requirement makes every victim
        choice independent, so they are taken in one vectorised argmin
        sweep; evicted and installed lines are journaled exactly as the
        scalar path would.  Victims are *not* returned (the hierarchy's
        only batch-install level is the L1, whose victims need no action).
        Age ticks are compacted to one per install: relative LRU order
        within each touched set is unchanged (the installed line becomes
        strictly newest, everything else keeps its age), which is the only
        thing the replacement policy observes.
        """
        k = lines.size
        if not k:
            return
        sets = lines & self._set_mask
        fws = np.empty(k, dtype=np.int64)
        pending: list[int] = []
        free = self._free
        ways = self.ways
        for x, s in enumerate(sets.tolist()):
            fl = free[s]
            if fl:
                fws[x] = s * ways + fl.pop()
            else:
                pending.append(x)
        if pending:
            ev = np.asarray(pending, dtype=np.int64)
            es = sets[ev]
            evfw = es * ways + self._age[es].argmin(axis=1)
            victims = self._tags1[evfw].tolist()
            fws[ev] = evfw
            self.evictions += len(pending)
            where = self._where
            for v in victims:
                del where[v]
            if self.journal is not None:
                self.journal.update(victims)
        self._tags1[fws] = lines
        self._dirty1[fws] = dirty
        self._age1[fws] = np.arange(self._tick, self._tick + k)
        self._tick += k
        where = self._where
        for line, fw in zip(lines.tolist(), fws.tolist()):
            where[line] = fw
        if self.journal is not None:
            self.journal.update(lines.tolist())

    # -- vectorised path ----------------------------------------------------
    def contains_batch(self, lines: np.ndarray) -> np.ndarray:
        """Presence of each line id in *lines* (no LRU update, no counting)."""
        sets = lines & self._set_mask
        return (self._tags[sets] == lines[:, None]).any(axis=1)

    def probe_batch(
        self, lines: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One-pass bulk probe: ``(resident, sets, ways, dirty)`` arrays.

        ``ways`` (and ``dirty``) are meaningful only where ``resident``;
        no LRU update, no hit/miss counting.
        """
        sets = lines & self._set_mask
        eq = self._tags[sets] == lines[:, None]
        ways = eq.argmax(axis=1)
        # eq[i, ways[i]] is cheaper than a full any() reduction: argmax of a
        # bool row is the first True (or 0 when the row is all-False).
        idx = np.arange(lines.size)
        resident = eq[idx, ways]
        dirty = self._dirty[sets, ways] & resident
        return resident, sets, ways, dirty

    def refresh_batch(self, lines: np.ndarray) -> None:
        """Refresh LRU recency of *lines* in array order (all must be resident).

        Equivalent to ``for l in lines: <move l to MRU>``: each element
        consumes one age tick, and for a line occurring several times its
        last occurrence wins (NumPy fancy assignment stores in iteration
        order; pinned by a unit test).  Does not count hits — the hierarchy
        accounts for bulk hits itself.
        """
        sets = lines & self._set_mask
        ways = (self._tags[sets] == lines[:, None]).argmax(axis=1)
        self.refresh_ways(sets, ways)

    def refresh_ways(self, sets: np.ndarray, ways: np.ndarray) -> None:
        """LRU refresh of pre-located ``(set, way)`` pairs in array order."""
        n = sets.size
        if not n:
            return
        self._age[sets, ways] = np.arange(self._tick, self._tick + n)
        self._tick += n

    # -- inspection ---------------------------------------------------------
    def resident_lines(self) -> list[int]:
        """All resident line ids (test/inspection helper)."""
        return list(self._where)

    def __len__(self) -> int:
        return len(self._where)

    @property
    def accesses(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Miss ratio over all probes (0 if never probed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class LegacySetAssocCache:
    """Reference ``OrderedDict``-backed implementation (the original engine).

    Each set is an ``OrderedDict`` in LRU order (oldest first); values are
    the dirty flag.  ``REPRO_SLOW_HIERARCHY=1`` selects it for every level
    so the fast engine can be differentially tested against it; the fast
    engine itself uses it for L2/L3, which see only scalar traffic.
    """

    __slots__ = (
        "name", "num_sets", "ways", "_set_mask", "_sets",
        "hits", "misses", "evictions", "journal",
    )

    def __init__(self, params: CacheParams, name: str | None = None) -> None:
        self.name = name or params.name
        self.num_sets = params.num_sets
        self.ways = params.associativity
        self._set_mask = self.num_sets - 1
        self._sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional residency journal (see :class:`SetAssocCache`); the
        #: hierarchy attaches one to the L2s when batched MESI drains are
        #: on, so cached L2-hit classifications can be staleness-checked.
        self.journal: "set[int] | None" = None

    def set_index(self, line: int) -> int:
        """Set holding *line*."""
        return line & self._set_mask

    def lookup(self, line: int) -> bool:
        """Probe for *line*; refreshes LRU on hit.  Counts hit/miss."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or hit/miss accounting."""
        return line in self._sets[line & self._set_mask]

    def insert(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install *line*; returns ``(victim_line, victim_dirty)`` if one was
        evicted, else ``None``.  Re-inserting an existing line refreshes LRU
        and ORs the dirty flag."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim: tuple[int, bool] | None = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = s.popitem(last=False)
            victim = (victim_line, victim_dirty)
            self.evictions += 1
            if self.journal is not None:
                self.journal.add(victim_line)
        s[line] = dirty
        if self.journal is not None:
            self.journal.add(line)
        return victim

    def remove(self, line: int) -> bool:
        """Invalidate *line* if present; returns its dirty flag (False if absent)."""
        s = self._sets[line & self._set_mask]
        if line not in s:
            return False
        if self.journal is not None:
            self.journal.add(line)
        return s.pop(line)

    def mark_dirty(self, line: int) -> None:
        """Set the dirty flag of a resident line (no-op if absent)."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = True

    def is_dirty(self, line: int) -> bool:
        """Dirty flag of a resident line (False if absent)."""
        return self._sets[line & self._set_mask].get(line, False)

    def clear_dirty(self, line: int) -> None:
        """Clear the dirty flag of a resident line (no-op if absent)."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = False

    def flush(self) -> int:
        """Drop all contents; returns the number of lines dropped."""
        n = len(self)
        for s in self._sets:
            if self.journal is not None:
                self.journal.update(s.keys())
            s.clear()
        return n

    def resident_lines(self) -> list[int]:
        """All resident line ids (test/inspection helper)."""
        out: list[int] = []
        for s in self._sets:
            out.extend(s.keys())
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Miss ratio over all probes (0 if never probed)."""
        return self.misses / self.accesses if self.accesses else 0.0
