"""A set-associative cache with true LRU replacement.

Stores only *presence* (plus a dirty flag for L3 write-back accounting);
coherence state lives in the directory (:mod:`repro.cachesim.hierarchy`),
which keeps the per-access hot path to a couple of dict operations.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.machine.cache_params import CacheParams


class SetAssocCache:
    """One cache instance (an L1, L2 or L3).

    Lines are identified by their global line id; the set index is derived
    from its low bits.  Each set is an ``OrderedDict`` in LRU order (oldest
    first); values are the dirty flag.
    """

    __slots__ = ("name", "num_sets", "ways", "_set_mask", "_sets", "hits", "misses", "evictions")

    def __init__(self, params: CacheParams, name: str | None = None) -> None:
        self.name = name or params.name
        self.num_sets = params.num_sets
        self.ways = params.associativity
        self._set_mask = self.num_sets - 1
        self._sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_index(self, line: int) -> int:
        """Set holding *line*."""
        return line & self._set_mask

    def lookup(self, line: int) -> bool:
        """Probe for *line*; refreshes LRU on hit.  Counts hit/miss."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or hit/miss accounting."""
        return line in self._sets[line & self._set_mask]

    def insert(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install *line*; returns ``(victim_line, victim_dirty)`` if one was
        evicted, else ``None``.  Re-inserting an existing line refreshes LRU
        and ORs the dirty flag."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim: tuple[int, bool] | None = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = s.popitem(last=False)
            victim = (victim_line, victim_dirty)
            self.evictions += 1
        s[line] = dirty
        return victim

    def remove(self, line: int) -> bool:
        """Invalidate *line* if present; returns its dirty flag (False if absent)."""
        s = self._sets[line & self._set_mask]
        return s.pop(line, False)

    def mark_dirty(self, line: int) -> None:
        """Set the dirty flag of a resident line (no-op if absent)."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = True

    def is_dirty(self, line: int) -> bool:
        """Dirty flag of a resident line (False if absent)."""
        return self._sets[line & self._set_mask].get(line, False)

    def flush(self) -> int:
        """Drop all contents; returns the number of lines dropped."""
        n = len(self)
        for s in self._sets:
            s.clear()
        return n

    def resident_lines(self) -> list[int]:
        """All resident line ids (test/inspection helper)."""
        out: list[int] = []
        for s in self._sets:
            out.extend(s.keys())
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Miss ratio over all probes (0 if never probed)."""
        return self.misses / self.accesses if self.accesses else 0.0
