"""repro — reproduction of "Communication-Based Mapping Using Shared Pages".

SPCD (Shared Pages Communication Detection) detects the communication
pattern of shared-memory parallel applications by monitoring page faults on
shared pages, and dynamically migrates threads so that heavily communicating
threads share caches (Diener, Cruz, Navaux; IPDPS workshops 2013).

The paper's kernel mechanism cannot run in user-space Python, so this
package pairs a faithful implementation of the SPCD algorithms
(:mod:`repro.core`) with a full simulation substrate: machine/cache/NUMA
models (:mod:`repro.machine`, :mod:`repro.cachesim`), a virtual-memory
subsystem with a hookable fault pipeline (:mod:`repro.mem`), an OS layer
(:mod:`repro.kernelsim`), synthetic NPB-like workloads
(:mod:`repro.workloads`) and an execution-driven engine producing the
paper's metrics (:mod:`repro.engine`).

Quick start::

    from repro import Simulator, make_npb
    result = Simulator(make_npb("SP"), "spcd", seed=1).run()
    print(result.exec_time_s, result.l3_mpki)

Placement policies (:mod:`repro.placement`) extend the paper's thread
mapping with co-decided NUMA data mapping and Mitosis-style page-table
replication — pass ``"spcd-data"``, ``"spcd-combined"`` or
``"spcd-replicated"`` (or a typed :class:`PlacementPolicy` instance)
wherever a policy name is accepted.

Experiment grids (cached, parallel, fault-tolerant, resumable)::

    from repro import RunSettings, run_grid
    grid = run_grid(["CG", "SP"], cache="results/",
                    settings=RunSettings(workers=4, cell_timeout_s=600))
    print(grid.cell("CG", "spcd").mean("exec_time_s"), grid.failures)
"""

from repro.core import (
    CommunicationFilter,
    CommunicationMatrix,
    HierarchicalMapper,
    SpcdConfig,
    SpcdDetector,
    SpcdManager,
    make_mapper,
    max_weight_perfect_matching,
)
from repro.graphs import (
    CsrGraph,
    PartitionPageRankWorkload,
    ScalableHierarchicalMapper,
    SparseCommMatrix,
    SpmvHaloWorkload,
    make_pagerank,
    make_spmv,
)
from repro.engine import (
    CellFailure,
    EngineConfig,
    GridResult,
    Policy,
    ResultCache,
    RunSettings,
    SimulationResult,
    Simulator,
    run_cell,
    run_grid,
    run_replicated,
    run_single,
)
from repro.machine import Machine, build_machine, dual_xeon_e5_2650
from repro.obs import JsonlRecorder, TraceRecorder
from repro.placement import (
    PlacementDecision,
    PlacementPolicy,
    canonical_policies,
    resolve_policy,
)
from repro.workloads import ProducerConsumerWorkload, SyntheticNpbWorkload, make_npb

__version__ = "1.4.0"

__all__ = [
    "CellFailure",
    "CommunicationFilter",
    "CommunicationMatrix",
    "CsrGraph",
    "EngineConfig",
    "GridResult",
    "HierarchicalMapper",
    "JsonlRecorder",
    "Machine",
    "PartitionPageRankWorkload",
    "PlacementDecision",
    "PlacementPolicy",
    "Policy",
    "ProducerConsumerWorkload",
    "ResultCache",
    "RunSettings",
    "ScalableHierarchicalMapper",
    "SimulationResult",
    "Simulator",
    "SparseCommMatrix",
    "SpcdConfig",
    "SpcdDetector",
    "SpcdManager",
    "SpmvHaloWorkload",
    "SyntheticNpbWorkload",
    "TraceRecorder",
    "build_machine",
    "canonical_policies",
    "dual_xeon_e5_2650",
    "make_mapper",
    "make_npb",
    "make_pagerank",
    "make_spmv",
    "max_weight_perfect_matching",
    "resolve_policy",
    "run_cell",
    "run_grid",
    "run_replicated",
    "run_single",
    "__version__",
]
