"""Hardware machine model: topology tree, caches, interconnect, NUMA.

This package models the shared-memory machine of the paper's Table I — a
dual-socket Intel Xeon E5-2650 with eight 2-way-SMT cores per socket, private
L1/L2 caches, one shared 20 MiB L3 per socket and two NUMA nodes — as well as
arbitrary symmetric topologies for sensitivity studies.
"""

from repro.machine.cache_params import CacheParams
from repro.machine.interconnect import InterconnectModel, LinkParams
from repro.machine.numa import NumaModel, NumaNode
from repro.machine.topology import (
    CommDistance,
    Machine,
    ProcessingUnit,
    build_machine,
    dual_xeon_e5_2650,
)

__all__ = [
    "CacheParams",
    "CommDistance",
    "InterconnectModel",
    "LinkParams",
    "Machine",
    "NumaModel",
    "NumaNode",
    "ProcessingUnit",
    "build_machine",
    "dual_xeon_e5_2650",
]
