"""Machine topology: sockets, cores, SMT processing units and distances.

The topology is a three-level symmetric tree (socket -> core -> PU).  The
*communication distance* between two PUs corresponds to the three cases the
paper marks *a*, *b*, *c* in its Figure 1:

* ``SAME_CORE`` (*a*)   — two SMT threads of one core, communicating via L1/L2.
* ``SAME_SOCKET`` (*b*) — two cores of one socket, communicating via the L3.
* ``CROSS_SOCKET`` (*c*) — different sockets / NUMA nodes, off-chip link.

PU numbering follows Linux convention on such machines: PUs ``0..n_cores-1``
are the first hardware thread of each core (socket-major), and PUs
``n_cores..2*n_cores-1`` are the SMT siblings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.machine.cache_params import (
    L1D_E5_2650,
    L2_E5_2650,
    L3_E5_2650,
    CacheParams,
)
from repro.units import GIB


class CommDistance(enum.IntEnum):
    """Placement distance between two processing units.

    Ordered so that smaller values mean *closer* (cheaper communication).
    """

    SAME_PU = 0
    SAME_CORE = 1  # case (a): SMT siblings, share L1/L2
    SAME_SOCKET = 2  # case (b): share L3 and the intra-chip interconnect
    CROSS_SOCKET = 3  # case (c): off-chip interconnect between NUMA nodes


@dataclass(frozen=True)
class ProcessingUnit:
    """One hardware thread (SMT context)."""

    pu_id: int
    core_id: int
    socket_id: int
    smt_id: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PU(pu={self.pu_id}, core={self.core_id}, "
            f"socket={self.socket_id}, smt={self.smt_id})"
        )


@dataclass(frozen=True)
class Machine:
    """A symmetric shared-memory machine.

    Attributes:
        name: descriptive name for reports.
        n_sockets: number of processor packages (= NUMA nodes).
        cores_per_socket: physical cores per package.
        smt_per_core: hardware threads per core.
        l1_params / l2_params: per-core private cache parameters.
        l3_params: per-socket shared cache parameters.
        memory_per_node: bytes of DRAM attached to each NUMA node.
        frequency_ghz: nominal core frequency (used by the time model).
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    smt_per_core: int
    l1_params: CacheParams = L1D_E5_2650
    l2_params: CacheParams = L2_E5_2650
    l3_params: CacheParams = L3_E5_2650
    memory_per_node: int = 16 * GIB
    frequency_ghz: float = 2.0
    _pus: tuple[ProcessingUnit, ...] = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if min(self.n_sockets, self.cores_per_socket, self.smt_per_core) < 1:
            raise TopologyError("topology dimensions must all be >= 1")
        object.__setattr__(self, "_pus", tuple(self._build_pus()))

    # -- construction ---------------------------------------------------
    def _build_pus(self) -> Iterator[ProcessingUnit]:
        n_cores = self.n_sockets * self.cores_per_socket
        for smt in range(self.smt_per_core):
            for socket in range(self.n_sockets):
                for core_in_socket in range(self.cores_per_socket):
                    core = socket * self.cores_per_socket + core_in_socket
                    yield ProcessingUnit(
                        pu_id=smt * n_cores + core,
                        core_id=core,
                        socket_id=socket,
                        smt_id=smt,
                    )

    # -- sizes ------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total physical cores."""
        return self.n_sockets * self.cores_per_socket

    @property
    def n_pus(self) -> int:
        """Total hardware threads (the paper's machine: 32)."""
        return self.n_cores * self.smt_per_core

    @property
    def n_numa_nodes(self) -> int:
        """One NUMA node per socket in this model."""
        return self.n_sockets

    # -- lookups ----------------------------------------------------------
    @property
    def pus(self) -> tuple[ProcessingUnit, ...]:
        """All PUs, indexed by ``pu_id``."""
        return self._pus

    def pu(self, pu_id: int) -> ProcessingUnit:
        """The PU with the given id."""
        if not 0 <= pu_id < self.n_pus:
            raise TopologyError(f"pu_id {pu_id} out of range [0, {self.n_pus})")
        return self._pus[pu_id]

    def core_of(self, pu_id: int) -> int:
        """Physical core id hosting *pu_id*."""
        return self.pu(pu_id).core_id

    def socket_of(self, pu_id: int) -> int:
        """Socket (== NUMA node) id hosting *pu_id*."""
        return self.pu(pu_id).socket_id

    def numa_node_of(self, pu_id: int) -> int:
        """NUMA node of a PU (identical to its socket in this model)."""
        return self.socket_of(pu_id)

    def pus_of_core(self, core_id: int) -> list[int]:
        """PU ids of all SMT siblings on a core."""
        if not 0 <= core_id < self.n_cores:
            raise TopologyError(f"core_id {core_id} out of range [0, {self.n_cores})")
        return [smt * self.n_cores + core_id for smt in range(self.smt_per_core)]

    def pus_of_socket(self, socket_id: int) -> list[int]:
        """PU ids of all hardware threads on a socket."""
        if not 0 <= socket_id < self.n_sockets:
            raise TopologyError(f"socket_id {socket_id} out of range")
        return [
            pu.pu_id for pu in self._pus if pu.socket_id == socket_id
        ]

    def cores_of_socket(self, socket_id: int) -> list[int]:
        """Core ids of a socket."""
        base = socket_id * self.cores_per_socket
        return list(range(base, base + self.cores_per_socket))

    # -- distances ----------------------------------------------------------
    def distance(self, pu_a: int, pu_b: int) -> CommDistance:
        """Communication distance class between two PUs (cases a/b/c)."""
        a, b = self.pu(pu_a), self.pu(pu_b)
        if a.pu_id == b.pu_id:
            return CommDistance.SAME_PU
        if a.core_id == b.core_id:
            return CommDistance.SAME_CORE
        if a.socket_id == b.socket_id:
            return CommDistance.SAME_SOCKET
        return CommDistance.CROSS_SOCKET

    def distance_matrix(self) -> np.ndarray:
        """``(n_pus, n_pus)`` matrix of :class:`CommDistance` values."""
        cores = np.array([p.core_id for p in self._pus])
        sockets = np.array([p.socket_id for p in self._pus])
        same_core = cores[:, None] == cores[None, :]
        same_socket = sockets[:, None] == sockets[None, :]
        out = np.full((self.n_pus, self.n_pus), int(CommDistance.CROSS_SOCKET))
        out[same_socket] = int(CommDistance.SAME_SOCKET)
        out[same_core] = int(CommDistance.SAME_CORE)
        np.fill_diagonal(out, int(CommDistance.SAME_PU))
        return out

    # -- hierarchy for the mapper ------------------------------------------
    def sharing_levels(self) -> list[list[list[int]]]:
        """Groups of PUs sharing each hierarchy level, innermost first.

        Returns a list of levels; each level is a list of PU-id groups that
        share that resource.  Level 0 is cores (shared L1/L2 between SMT
        siblings), level 1 is sockets (shared L3), level 2 is the machine.
        The hierarchical mapper pairs threads innermost-level-first.
        """
        levels: list[list[list[int]]] = []
        if self.smt_per_core > 1:
            levels.append([self.pus_of_core(c) for c in range(self.n_cores)])
        if self.n_sockets > 1:
            levels.append([self.pus_of_socket(s) for s in range(self.n_sockets)])
        levels.append([[p.pu_id for p in self._pus]])
        return levels

    def describe(self) -> str:
        """Multi-line human-readable summary (used by Table I bench)."""
        lines = [
            f"Machine: {self.name}",
            f"  sockets={self.n_sockets} cores/socket={self.cores_per_socket} "
            f"smt={self.smt_per_core} (total {self.n_pus} PUs)",
            f"  L1: {self.l1_params.size // 1024} KiB, {self.l1_params.associativity}-way",
            f"  L2: {self.l2_params.size // 1024} KiB, {self.l2_params.associativity}-way",
            f"  L3: {self.l3_params.size // (1024 * 1024)} MiB, "
            f"{self.l3_params.associativity}-way (per socket)",
            f"  memory/node: {self.memory_per_node // (1024 ** 3)} GiB, "
            f"frequency: {self.frequency_ghz} GHz",
        ]
        return "\n".join(lines)


def build_machine(
    n_sockets: int,
    cores_per_socket: int,
    smt_per_core: int = 1,
    *,
    name: str | None = None,
    l1: CacheParams = L1D_E5_2650,
    l2: CacheParams = L2_E5_2650,
    l3: CacheParams = L3_E5_2650,
    memory_per_node: int = 16 * GIB,
    frequency_ghz: float = 2.0,
) -> Machine:
    """Build an arbitrary symmetric machine."""
    if name is None:
        name = f"{n_sockets}s{cores_per_socket}c{smt_per_core}t"
    return Machine(
        name=name,
        n_sockets=n_sockets,
        cores_per_socket=cores_per_socket,
        smt_per_core=smt_per_core,
        l1_params=l1,
        l2_params=l2,
        l3_params=l3,
        memory_per_node=memory_per_node,
        frequency_ghz=frequency_ghz,
    )


def dual_xeon_e5_2650() -> Machine:
    """The evaluation machine of the paper's Table I.

    2x Intel Xeon E5-2650 @ 2.0 GHz, 8 cores per socket, 2-way SMT
    (32 hardware threads), 32 KiB L1d + 256 KiB L2 per core, 20 MiB L3 per
    socket, 16 GiB DDR3 per NUMA node (32 GiB total).
    """
    return build_machine(
        n_sockets=2,
        cores_per_socket=8,
        smt_per_core=2,
        name="2x Intel Xeon E5-2650",
        memory_per_node=16 * GIB,
        frequency_ghz=2.0,
    )


def pin_sequence(machine: Machine, order: Sequence[int] | None = None) -> dict[int, int]:
    """Identity-ish pinning of thread ids to PU ids (thread i -> PU i).

    Used by static mapping policies as the canonical starting placement; an
    explicit *order* permutes it.
    """
    if order is None:
        order = list(range(machine.n_pus))
    if sorted(order) != list(range(machine.n_pus)):
        raise TopologyError("order must be a permutation of all PU ids")
    return {tid: int(pu) for tid, pu in enumerate(order)}
