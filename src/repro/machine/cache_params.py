"""Cache geometry descriptors.

:class:`CacheParams` captures size/associativity/line-size/latency of one
cache level; the actual behaviour lives in :mod:`repro.cachesim`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_SIZE, KIB, MIB, is_power_of_two


@dataclass(frozen=True)
class CacheParams:
    """Static parameters of one cache.

    Attributes:
        name: human-readable name, e.g. ``"L2"``.
        size: total capacity in bytes.
        associativity: number of ways per set.
        line_size: cache line size in bytes (power of two).
        latency_ns: access (hit) latency in nanoseconds.
        level: 1, 2 or 3.
    """

    name: str
    size: int
    associativity: int
    line_size: int = CACHE_LINE_SIZE
    latency_ns: float = 1.0
    level: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: size/associativity must be positive")
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size % (self.associativity * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size} not divisible by "
                f"associativity*line_size ({self.associativity}*{self.line_size})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (ways * line size))."""
        return self.size // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size


# Parameters of the machine in the paper's Table I (Intel Xeon E5-2650,
# SandyBridge-EP).  Latencies are the commonly published load-to-use numbers
# for that micro-architecture, converted to ns at 2.0 GHz.
L1D_E5_2650 = CacheParams(name="L1d", size=32 * KIB, associativity=8, latency_ns=2.0, level=1)
L2_E5_2650 = CacheParams(name="L2", size=256 * KIB, associativity=8, latency_ns=6.0, level=2)
L3_E5_2650 = CacheParams(name="L3", size=20 * MIB, associativity=20, latency_ns=15.0, level=3)
