"""NUMA model: per-node DRAM with local/remote access latencies.

On the paper's machine each socket is one NUMA node; a memory access that
misses the whole cache hierarchy is served by the node holding the physical
frame.  Remote accesses pay the off-chip link in addition to DRAM latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.interconnect import InterconnectModel
from repro.machine.topology import CommDistance, Machine
from repro.units import CACHE_LINE_SIZE


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node (socket-attached DRAM)."""

    node_id: int
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("NUMA node capacity must be positive")


class NumaModel:
    """Latency/energy view of the machine's DRAM.

    Attributes:
        dram_latency_ns: row access latency of local DRAM.
        dram_energy_pj_per_access: DRAM dynamic energy per line access.
        dram_background_w_per_node: standby/refresh power per node
            (drives the time-proportional part of DRAM energy).
    """

    def __init__(
        self,
        machine: Machine,
        interconnect: InterconnectModel | None = None,
        *,
        dram_latency_ns: float = 60.0,
        dram_energy_pj_per_access: float = 2000.0,
        dram_background_w_per_node: float = 2.0,
    ) -> None:
        self.machine = machine
        self.interconnect = interconnect or InterconnectModel()
        self.dram_latency_ns = dram_latency_ns
        self.dram_energy_pj_per_access = dram_energy_pj_per_access
        self.dram_background_w_per_node = dram_background_w_per_node
        self.nodes = tuple(
            NumaNode(node_id=i, capacity=machine.memory_per_node)
            for i in range(machine.n_numa_nodes)
        )

    def n_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.nodes)

    def access_latency_ns(self, pu_id: int, home_node: int) -> float:
        """Latency for a DRAM access from *pu_id* to memory on *home_node*."""
        local = self.machine.numa_node_of(pu_id) == home_node
        if local:
            return self.dram_latency_ns + self.interconnect.transfer_ns(
                CommDistance.SAME_SOCKET
            )
        return self.dram_latency_ns + self.interconnect.transfer_ns(
            CommDistance.CROSS_SOCKET
        )

    def pt_walk_level_ns(self, local: bool) -> float:
        """Latency of one radix page-table level resolved on-/off-node.

        Each level of a walk is one dependent DRAM reference against the
        directory page's home node; remote levels additionally cross the
        socket interconnect (the cost Mitosis-style replication removes —
        see :class:`repro.mem.ptreplica.ReplicatedPageTable`).
        """
        distance = CommDistance.SAME_SOCKET if local else CommDistance.CROSS_SOCKET
        return self.dram_latency_ns + self.interconnect.transfer_ns(distance)

    def access_energy_pj(self, pu_id: int, home_node: int) -> float:
        """DRAM + interconnect energy for one line access."""
        local = self.machine.numa_node_of(pu_id) == home_node
        distance = CommDistance.SAME_SOCKET if local else CommDistance.CROSS_SOCKET
        return self.dram_energy_pj_per_access + self.interconnect.transfer_pj(
            distance, CACHE_LINE_SIZE
        )

    def is_local(self, pu_id: int, home_node: int) -> bool:
        """True if *home_node* is the node of the PU's socket."""
        return self.machine.numa_node_of(pu_id) == home_node
