"""Interconnect cost model: intra-chip ring vs. off-chip link.

The paper attributes part of the mapping gains to replacing slow inter-chip
(QPI-like) traffic with intra-chip traffic.  This module models both link
classes with latency + occupancy-per-transfer so cache-to-cache transfers and
remote memory accesses can be charged to the right link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.topology import CommDistance
from repro.units import CACHE_LINE_SIZE


@dataclass(frozen=True)
class LinkParams:
    """Latency/bandwidth of one interconnect class.

    Attributes:
        latency_ns: one-way transfer start latency.
        bandwidth_gbps: sustained bandwidth in GiB/s.
        energy_pj_per_byte: transfer energy (feeds the energy model).
    """

    latency_ns: float
    bandwidth_gbps: float
    energy_pj_per_byte: float

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.bandwidth_gbps <= 0 or self.energy_pj_per_byte < 0:
            raise ConfigurationError("invalid link parameters")

    def transfer_ns(self, nbytes: int = CACHE_LINE_SIZE) -> float:
        """Time to move *nbytes* over this link once (latency + serialisation)."""
        return self.latency_ns + nbytes / (self.bandwidth_gbps * 1.073741824)

    def transfer_pj(self, nbytes: int = CACHE_LINE_SIZE) -> float:
        """Energy in picojoules to move *nbytes* over this link once."""
        return self.energy_pj_per_byte * nbytes


#: Intra-chip ring of SandyBridge-EP: low latency, high bandwidth.
RING_SNB = LinkParams(latency_ns=5.0, bandwidth_gbps=96.0, energy_pj_per_byte=2.0)
#: Inter-chip QPI link: much higher latency and energy, lower bandwidth.
QPI_SNB = LinkParams(latency_ns=60.0, bandwidth_gbps=16.0, energy_pj_per_byte=15.0)


class InterconnectModel:
    """Maps a :class:`CommDistance` to the link(s) a transfer crosses.

    * ``SAME_PU`` / ``SAME_CORE``: no interconnect involved (L1/L2 local).
    * ``SAME_SOCKET``: one intra-chip ring hop.
    * ``CROSS_SOCKET``: ring hop on each side plus the off-chip link.
    """

    def __init__(self, ring: LinkParams = RING_SNB, offchip: LinkParams = QPI_SNB) -> None:
        self.ring = ring
        self.offchip = offchip

    def transfer_ns(self, distance: CommDistance, nbytes: int = CACHE_LINE_SIZE) -> float:
        """Interconnect time for one transfer across *distance*."""
        if distance in (CommDistance.SAME_PU, CommDistance.SAME_CORE):
            return 0.0
        if distance == CommDistance.SAME_SOCKET:
            return self.ring.transfer_ns(nbytes)
        return 2 * self.ring.transfer_ns(nbytes) + self.offchip.transfer_ns(nbytes)

    def transfer_pj(self, distance: CommDistance, nbytes: int = CACHE_LINE_SIZE) -> float:
        """Interconnect energy (pJ) for one transfer across *distance*."""
        if distance in (CommDistance.SAME_PU, CommDistance.SAME_CORE):
            return 0.0
        if distance == CommDistance.SAME_SOCKET:
            return self.ring.transfer_pj(nbytes)
        return 2 * self.ring.transfer_pj(nbytes) + self.offchip.transfer_pj(nbytes)

    def crosses_offchip(self, distance: CommDistance) -> bool:
        """True if a transfer at *distance* uses the inter-chip link."""
        return distance == CommDistance.CROSS_SOCKET
