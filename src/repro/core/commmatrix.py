"""The communication matrix (paper Sec. II-B).

Cell ``(i, j)`` holds the amount of communication detected between threads
*i* and *j*.  The matrix is symmetric with an all-zero diagonal; complexity
of everything here is at most Theta(N^2) as the paper requires.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CommunicationMatrix"]


class CommunicationMatrix:
    """Symmetric, zero-diagonal communication counts between thread pairs."""

    def __init__(self, n_threads: int, data: np.ndarray | None = None) -> None:
        if n_threads <= 0:
            raise ConfigurationError("need at least one thread")
        self.n = n_threads
        if data is None:
            self._m = np.zeros((n_threads, n_threads), dtype=np.float64)
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (n_threads, n_threads):
                raise ConfigurationError(f"matrix shape {data.shape} != ({n_threads},)*2")
            if not np.allclose(data, data.T):
                raise ConfigurationError("communication matrix must be symmetric")
            self._m = data.copy()
            np.fill_diagonal(self._m, 0.0)

    # -- mutation -----------------------------------------------------------
    def add(self, i: int, j: int, amount: float = 1.0) -> None:
        """Record *amount* of communication between threads *i* and *j*."""
        if i == j:
            return  # a thread does not communicate with itself
        self._m[i, j] += amount
        self._m[j, i] += amount

    def add_events(self, i: int, partners: np.ndarray) -> None:
        """Record one unit event between *i* and every thread in *partners*.

        *partners* may repeat ids; each occurrence is one event.  Uses
        ``np.add.at``, which applies the additions one by one — bit-identical
        to the equivalent sequence of :meth:`add` calls even where repeated
        float rounding matters (e.g. after :meth:`decay` left fractions).
        Small event lists take a plain loop of the same additions instead
        (cheaper than two ``np.add.at`` dispatches).
        """
        if len(partners) <= 8:
            m = self._m
            for j in partners.tolist() if hasattr(partners, "tolist") else partners:
                if j != i:
                    m[i, j] += 1.0
                    m[j, i] += 1.0
            return
        partners = np.asarray(partners, dtype=np.int64)
        partners = partners[partners != i]
        if partners.size == 0:
            return
        np.add.at(self._m, (i, partners), 1.0)
        np.add.at(self._m, (partners, i), 1.0)

    def merge(self, other: "CommunicationMatrix", scale: float = 1.0) -> "CommunicationMatrix":
        """Accumulate *other* into this matrix in place; returns ``self``.

        ``self[i, j] += scale * other[i, j]`` for every cell.  This is the
        shard-reduction primitive: a detection pipeline split across shards
        (each owning a disjoint slice of the sharing table, as in
        :mod:`repro.serve.session`) folds its per-shard matrices into one
        aggregate with repeated merges.  For integer-valued matrices the
        result is exact and therefore independent of merge order — merging
        shards in any order produces bit-identical aggregates (pinned by
        ``tests/test_commmatrix.py``).
        """
        if other.n != self.n:
            raise ConfigurationError("matrices must have the same size")
        if scale == 1.0:
            self._m += other._m
        else:
            self._m += scale * other._m
        return self

    def decay(self, factor: float) -> None:
        """Multiply everything by *factor* (aging for dynamic detection)."""
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError("decay factor must be in [0, 1]")
        self._m *= factor

    def reset(self) -> None:
        """Zero the matrix."""
        self._m[:] = 0.0

    # -- views ---------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The underlying array (a live view; do not mutate directly)."""
        return self._m

    def copy(self) -> "CommunicationMatrix":
        """Deep copy."""
        return CommunicationMatrix(self.n, self._m)

    def diff(self, earlier: "CommunicationMatrix") -> "CommunicationMatrix":
        """Communication accumulated since *earlier* (clipped at zero).

        Used to extract per-interval matrices — e.g. the per-phase views of
        the producer/consumer experiment (paper Fig. 6a-c) — from cumulative
        snapshots.
        """
        if earlier.n != self.n:
            raise ConfigurationError("matrices must have the same size")
        return CommunicationMatrix(self.n, np.clip(self._m - earlier._m, 0.0, None))

    def total(self) -> float:
        """Total communication (each pair counted once)."""
        return float(self._m.sum() / 2.0)

    def nnz(self) -> int:
        """Nonzero off-diagonal cells (both triangles counted)."""
        return int(np.count_nonzero(self._m))

    def density(self) -> float:
        """Nonzero fraction of the off-diagonal cells, in [0, 1].

        The observability signal behind the ``REPRO_SPARSE_COMM`` gate:
        power-law patterns at large n sit well below 0.1, blocky NAS
        patterns near 1.0.  Emitted with every ``MappingDecision`` event.
        """
        off_diag = self.n * (self.n - 1)
        return self.nnz() / off_diag if off_diag else 0.0

    def normalized(self) -> np.ndarray:
        """Matrix scaled to [0, 1] by its maximum (for heatmaps)."""
        peak = self._m.max()
        return self._m / peak if peak > 0 else self._m.copy()

    def partners(self) -> np.ndarray:
        """Each thread's single most-communicating partner (-1 if none).

        This is the subgroup-of-size-2 notion the communication filter uses
        (paper Sec. IV-A).  Ties resolve to the lowest thread id, and threads
        with an all-zero row have no partner.
        """
        out = np.full(self.n, -1, dtype=np.int64)
        row_max = self._m.max(axis=1)
        has_comm = row_max > 0
        out[has_comm] = np.argmax(self._m[has_comm], axis=1)
        return out

    # -- comparison / accuracy ------------------------------------------------
    def correlation(self, other: "CommunicationMatrix") -> float:
        """Pearson correlation of the upper triangles (pattern accuracy).

        Used to quantify how well a detected matrix matches the ground
        truth; 1.0 is a perfect pattern match (scale-invariant).
        """
        if other.n != self.n:
            raise ConfigurationError("matrices must have the same size")
        iu = np.triu_indices(self.n, k=1)
        a, b = self._m[iu], other._m[iu]
        if a.std() == 0 or b.std() == 0:
            return 1.0 if np.allclose(a, a.mean()) and np.allclose(b, b.mean()) else 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def heterogeneity(self) -> float:
        """Coefficient of variation of the off-diagonal cells.

        The paper classifies patterns as *homogeneous* (similar amounts
        everywhere — low value) or *heterogeneous* (clear sub-groups — high
        value).  We use CV = std/mean of the upper triangle; a matrix with
        no communication at all reports 0 (homogeneous, like EP).
        """
        iu = np.triu_indices(self.n, k=1)
        vals = self._m[iu]
        mean = vals.mean()
        if mean == 0:
            return 0.0
        return float(vals.std() / mean)

    # -- serialisation ---------------------------------------------------------
    def to_csv(self, path: "str | os.PathLike") -> None:
        """Write the matrix as CSV, atomically.

        The data goes to a temp file next to *path* and is moved into place
        with :func:`os.replace`, so a concurrent reader (or a crash mid-write)
        never observes a truncated matrix.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                np.savetxt(f, self._m, delimiter=",", fmt="%.6g")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def from_csv(cls, path: "str | os.PathLike") -> "CommunicationMatrix":
        """Read a matrix previously written by :meth:`to_csv`."""
        data = np.loadtxt(Path(path), delimiter=",")
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ConfigurationError("CSV does not contain a square matrix")
        return cls(data.shape[0], data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommunicationMatrix(n={self.n}, total={self.total():.0f})"
