"""SPCD — Shared Pages Communication Detection and thread mapping.

The paper's contribution: detect communication by watching page faults on
shared pages (:mod:`repro.core.spcd`), keep the detection alive by injecting
extra faults (:mod:`repro.core.injector`), decide *when* to remap with the
communication filter (:mod:`repro.core.filter`) and *where* with hierarchical
maximum-weight matching (:mod:`repro.core.matching`,
:mod:`repro.core.grouping`, :mod:`repro.core.mapping`), all orchestrated by
:class:`repro.core.manager.SpcdManager`.
"""

from repro.core.commmatrix import CommunicationMatrix
from repro.core.datamap import SpcdDataMapper
from repro.core.filter import CommunicationFilter
from repro.core.grouping import group_matrix, pair_groups
from repro.core.hashtable import ArrayShareTable, ShareTable, ShareEntry, hash_64, hash_64_batch
from repro.core.injector import FaultInjector, InjectorMode
from repro.core.manager import SpcdManager, SpcdConfig
from repro.core.mapping import (
    MAPPER_ALGORITHMS,
    HierarchicalMapper,
    lay_out_socket_groups,
    make_mapper,
    mapping_comm_cost,
)
from repro.core.matching import (
    greedy_matching,
    matching_weight,
    max_weight_perfect_matching,
)
from repro.core.spcd import SpcdDetector

__all__ = [
    "MAPPER_ALGORITHMS",
    "CommunicationFilter",
    "SpcdDataMapper",
    "CommunicationMatrix",
    "FaultInjector",
    "HierarchicalMapper",
    "InjectorMode",
    "ShareEntry",
    "ArrayShareTable",
    "ShareTable",
    "SpcdConfig",
    "SpcdDetector",
    "SpcdManager",
    "greedy_matching",
    "group_matrix",
    "hash_64",
    "hash_64_batch",
    "lay_out_socket_groups",
    "make_mapper",
    "mapping_comm_cost",
    "matching_weight",
    "max_weight_perfect_matching",
    "pair_groups",
]
