"""SPCD communication detection (paper Sec. III).

The detector is a page-fault hook.  On every fault of the parallel
application it:

1. maps the faulting address to a *region* (address // granularity; the
   granularity defaults to the 4 KiB page size but is decoupled from it,
   Sec. III-C1);
2. looks the region up in the sharing table;
3. counts communication with every **other** thread that accessed the same
   region within the temporal window (Sec. III-C2 — accesses far apart in
   time are *temporal false communication* and are ignored);
4. records the faulting thread's time stamp in the entry.

The amount of communication between threads *i* and *j* is therefore the
number of (windowed) fault pairs on shared regions, exactly the paper's
metric.

Two engines implement the hook.  The default ``"array"`` engine registers a
*batch* hook: one :class:`~repro.mem.fault.FaultBatch` is processed in a
single vectorised pass over an :class:`~repro.core.hashtable.ArrayShareTable`
and the windowed communication events are scattered into the matrix with
``np.add.at``.  The ``"dict"`` engine is the original per-fault
implementation over the dict-backed
:class:`~repro.core.hashtable.ShareTable`; it is selected by
``REPRO_SLOW_SPCD=1`` and serves as the differential-testing reference —
both engines produce bit-identical matrices, stats and table counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.hashtable import DEFAULT_TABLE_SIZE, ArrayShareTable, ShareTable
from repro.errors import ConfigurationError
from repro.mem.fault import FaultBatch, FaultInfo, FaultPipeline, slow_spcd_requested
from repro.units import MSEC, PAGE_SIZE

#: fault batches at or below this size take the detector's scalar pass
#: (performance-only cutover; both passes are bit-identical — see
#: tests/test_spcd_parity.py)
_SCALAR_DETECT_MAX = 12


@dataclass
class SpcdDetectorStats:
    """Counters of the detection hook."""

    faults_seen: int = 0
    comm_events: int = 0
    windowed_out: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.faults_seen = 0
        self.comm_events = 0
        self.windowed_out = 0


class SpcdDetector:
    """The fault-hook half of SPCD.

    Attributes:
        granularity: region size in bytes used to decide sharing
            (paper default: the 4 KiB page size).
        window_ns: temporal window; a previous access older than this does
            not count as communication.  The paper gives no number; 200 ms
            keeps phase changes of the producer/consumer benchmark visible
            while suppressing cross-phase false communication.
        detect_cost_ns: virtual time charged per fault for the hash-table
            work (constant-time, Sec. III-C4) — feeds the Fig. 16 overhead
            accounting.
        engine: ``"array"`` (vectorised batch engine, the default) or
            ``"dict"`` (per-fault reference engine).  ``None`` follows
            ``REPRO_SLOW_SPCD``.
    """

    def __init__(
        self,
        n_threads: int,
        *,
        granularity: int = PAGE_SIZE,
        window_ns: int = 200 * MSEC,
        table_size: int = DEFAULT_TABLE_SIZE,
        detect_cost_ns: float = 250.0,
        pipeline: FaultPipeline | None = None,
        engine: str | None = None,
        scalar_touch_max: "int | None" = None,
        sparse_matrix: bool = False,
    ) -> None:
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if window_ns <= 0:
            raise ConfigurationError("temporal window must be positive")
        if engine is None:
            engine = "dict" if slow_spcd_requested() else "array"
        if engine not in ("array", "dict"):
            raise ConfigurationError("detector engine must be 'array' or 'dict'")
        self.granularity = granularity
        self.window_ns = window_ns
        self.detect_cost_ns = detect_cost_ns
        self.engine = engine
        if engine == "array":
            self.table: ArrayShareTable | ShareTable = ArrayShareTable(
                table_size, n_threads, scalar_touch_max=scalar_touch_max
            )
        else:
            self.table = ShareTable(table_size)
        if sparse_matrix:
            # Sparse storage, identical semantics: every detection digest is
            # bit-for-bit the dense backend's (tests/test_sparse_comm.py).
            from repro.graphs.sparse import SparseCommMatrix

            self.matrix: CommunicationMatrix = SparseCommMatrix(n_threads)
        else:
            self.matrix = CommunicationMatrix(n_threads)
        self.stats = SpcdDetectorStats()
        self._pipeline = pipeline
        if pipeline is not None:
            if engine == "array":
                pipeline.add_batch_hook(self.on_fault_batch)
            else:
                pipeline.add_hook(self.on_fault)

    def on_fault(self, info: FaultInfo) -> None:
        """Per-fault hook: update sharing table and communication matrix."""
        if self.engine == "array":
            # Route through the batch engine so both entry points observe
            # the same table (used by direct callers; the pipeline hands the
            # array engine whole batches).
            self.on_fault_batch(
                FaultBatch(
                    thread_id=info.thread_id,
                    pu_id=info.pu_id,
                    now_ns=info.now_ns,
                    vaddrs=np.array([info.vaddr], dtype=np.int64),
                    vpns=np.array([info.vpn], dtype=np.int64),
                    is_write=np.array([info.is_write], dtype=bool),
                    injected=np.array([True], dtype=bool),
                    home_nodes=np.array([info.home_node], dtype=np.int64),
                )
            )
            return
        self.stats.faults_seen += 1
        region = info.vaddr // self.granularity
        entry = self.table.get_or_create(region)
        tid = info.thread_id
        now = info.now_ns
        window = self.window_ns
        for other_tid, last_ns in entry.last_access.items():
            if other_tid == tid:
                continue
            if now - last_ns <= window:
                self.matrix.add(tid, other_tid, 1.0)
                self.stats.comm_events += 1
            else:
                self.stats.windowed_out += 1
        entry.touch(tid, now)
        if self._pipeline is not None:
            self._pipeline.charge_hook_time(self.detect_cost_ns)

    def on_fault_batch(self, batch: FaultBatch) -> None:
        """Batch hook: one vectorised table pass for a whole fault batch.

        Small batches (the steady-state common case: a thread batch faults
        on only a few pages) take a per-fault scalar pass over the same
        array table instead — cheaper than the vectorised machinery at that
        size, and bit-identical to it.
        """
        m = batch.n_faults
        if m == 0:
            return
        self.stats.faults_seen += m
        tid = batch.thread_id
        if m <= _SCALAR_DETECT_MAX:
            now = batch.now_ns
            window = self.window_ns
            g = self.granularity
            table = self.table
            matrix = self.matrix
            windowed_out = 0
            comm = 0
            for va in batch.vaddrs.tolist():
                js, wout = table.touch(va // g, tid, now, window)
                windowed_out += wout
                for j in js:
                    matrix.add(tid, j, 1.0)
                    comm += 1
            self.stats.windowed_out += windowed_out
            self.stats.comm_events += comm
        else:
            regions = batch.vaddrs // self.granularity
            partners, windowed_out = self.table.touch_batch(
                regions, tid, batch.now_ns, self.window_ns
            )
            self.stats.windowed_out += windowed_out
            if partners.size:
                self.stats.comm_events += int(partners.size)
                self.matrix.add_events(tid, partners)
        if self._pipeline is not None:
            self._pipeline.charge_hook_time(m * self.detect_cost_ns)

    def detach(self) -> None:
        """Unregister from the fault pipeline."""
        if self._pipeline is not None:
            if self.engine == "array":
                self._pipeline.remove_batch_hook(self.on_fault_batch)
            else:
                self._pipeline.remove_hook(self.on_fault)
            self._pipeline = None

    def snapshot_matrix(self) -> CommunicationMatrix:
        """A copy of the current communication matrix."""
        return self.matrix.copy()

    def shared_region_count(self) -> int:
        """Regions currently known to be shared."""
        return self.table.shared_region_count()
