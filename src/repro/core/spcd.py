"""SPCD communication detection (paper Sec. III).

The detector is a page-fault hook.  On every fault of the parallel
application it:

1. maps the faulting address to a *region* (address // granularity; the
   granularity defaults to the 4 KiB page size but is decoupled from it,
   Sec. III-C1);
2. looks the region up in the :class:`~repro.core.hashtable.ShareTable`;
3. counts communication with every **other** thread that accessed the same
   region within the temporal window (Sec. III-C2 — accesses far apart in
   time are *temporal false communication* and are ignored);
4. records the faulting thread's time stamp in the entry.

The amount of communication between threads *i* and *j* is therefore the
number of (windowed) fault pairs on shared regions, exactly the paper's
metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commmatrix import CommunicationMatrix
from repro.core.hashtable import DEFAULT_TABLE_SIZE, ShareTable
from repro.errors import ConfigurationError
from repro.mem.fault import FaultInfo, FaultPipeline
from repro.units import MSEC, PAGE_SIZE


@dataclass
class SpcdDetectorStats:
    """Counters of the detection hook."""

    faults_seen: int = 0
    comm_events: int = 0
    windowed_out: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.faults_seen = 0
        self.comm_events = 0
        self.windowed_out = 0


class SpcdDetector:
    """The fault-hook half of SPCD.

    Attributes:
        granularity: region size in bytes used to decide sharing
            (paper default: the 4 KiB page size).
        window_ns: temporal window; a previous access older than this does
            not count as communication.  The paper gives no number; 200 ms
            keeps phase changes of the producer/consumer benchmark visible
            while suppressing cross-phase false communication.
        detect_cost_ns: virtual time charged per fault for the hash-table
            work (constant-time, Sec. III-C4) — feeds the Fig. 16 overhead
            accounting.
    """

    def __init__(
        self,
        n_threads: int,
        *,
        granularity: int = PAGE_SIZE,
        window_ns: int = 200 * MSEC,
        table_size: int = DEFAULT_TABLE_SIZE,
        detect_cost_ns: float = 250.0,
        pipeline: FaultPipeline | None = None,
    ) -> None:
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if window_ns <= 0:
            raise ConfigurationError("temporal window must be positive")
        self.granularity = granularity
        self.window_ns = window_ns
        self.detect_cost_ns = detect_cost_ns
        self.table = ShareTable(table_size)
        self.matrix = CommunicationMatrix(n_threads)
        self.stats = SpcdDetectorStats()
        self._pipeline = pipeline
        if pipeline is not None:
            pipeline.add_hook(self.on_fault)

    def on_fault(self, info: FaultInfo) -> None:
        """Fault hook: update sharing table and communication matrix."""
        self.stats.faults_seen += 1
        region = info.vaddr // self.granularity
        entry = self.table.get_or_create(region)
        tid = info.thread_id
        now = info.now_ns
        window = self.window_ns
        for other_tid, last_ns in entry.last_access.items():
            if other_tid == tid:
                continue
            if now - last_ns <= window:
                self.matrix.add(tid, other_tid, 1.0)
                self.stats.comm_events += 1
            else:
                self.stats.windowed_out += 1
        entry.touch(tid, now)
        if self._pipeline is not None:
            self._pipeline.charge_hook_time(self.detect_cost_ns)

    def detach(self) -> None:
        """Unregister from the fault pipeline."""
        if self._pipeline is not None:
            self._pipeline.remove_hook(self.on_fault)
            self._pipeline = None

    def snapshot_matrix(self) -> CommunicationMatrix:
        """A copy of the current communication matrix."""
        return self.matrix.copy()

    def shared_region_count(self) -> int:
        """Regions currently known to be shared."""
        return self.table.shared_region_count()
