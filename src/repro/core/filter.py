"""The communication filter (paper Sec. IV-A).

Calling the mapping algorithm on every matrix evaluation would be wasteful;
the filter decides whether the pattern changed enough.  Every thread has one
*partner thread* — the thread it communicates most with (sub-groups limited
to size 2).  On each evaluation the filter counts how many threads changed
partner since the last time the mapper ran; if at least ``threshold``
(paper: 2) did, the mapper is invoked and the partner snapshot updated.

Complexity is Theta(N^2) per evaluation — one argmax over the matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import ConfigurationError


class CommunicationFilter:
    """Decides whether a new mapping is warranted."""

    def __init__(
        self,
        n_threads: int,
        threshold: int = 2,
        hysteresis: float = 1.25,
        margin: float = 0.5,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError("threshold must be >= 1")
        if hysteresis < 1.0:
            raise ConfigurationError("hysteresis must be >= 1")
        if margin < 0.0:
            raise ConfigurationError("margin must be >= 0")
        self.n = n_threads
        self.threshold = threshold
        #: a partner change only counts when the new partner communicates at
        #: least this factor more than the recorded one — absorbs sampling
        #: noise between near-equal candidates (e.g. a thread's two chain
        #: neighbours) that would otherwise re-trigger mapping constantly
        self.hysteresis = hysteresis
        #: additional absolute margin, as a fraction of the thread's mean
        #: row communication: in *homogeneous* patterns every candidate
        #: partner is statistically equivalent, so the argmax flips with
        #: sampling noise; requiring the new partner to beat the old one by
        #: a slice of the row mean keeps such patterns from re-triggering
        #: the mapper (the paper's FT/IS/EP migrate at most once)
        self.margin = margin
        #: partner snapshot taken the last time the mapper was triggered
        self._partners = np.full(n_threads, -1, dtype=np.int64)
        self._ever_triggered = False
        self.evaluations = 0
        self.triggers = 0

    def should_remap(self, matrix: CommunicationMatrix) -> bool:
        """Evaluate *matrix*; True if the mapping algorithm should run.

        The first evaluation with any detected communication always
        triggers (there is no previous mapping to keep).
        """
        self.evaluations += 1
        current = matrix.partners()
        if not self._ever_triggered:
            if np.any(current >= 0):
                self._trigger(current)
                return True
            return False
        if self.changed_partner_count(matrix) >= self.threshold:
            self._trigger(current)
            return True
        return False

    def _trigger(self, partners: np.ndarray) -> None:
        self._partners = partners.copy()
        self._ever_triggered = True
        self.triggers += 1

    def changed_partner_count(self, matrix: CommunicationMatrix) -> int:
        """Threads whose partner genuinely changed since the snapshot.

        A change counts only when the thread has a partner now, the partner
        differs from the snapshot, and the new partner's communication beats
        the old partner's by the hysteresis factor (a fresh thread with no
        recorded partner always counts).
        """
        m = matrix.matrix
        current = matrix.partners()
        # The noise floor: a partner switch must clear a slice of the mean
        # positive cell, otherwise sparse/homogeneous matrices (where the
        # argmax flips with every sample) re-trigger the mapper constantly.
        positive = m[m > 0]
        noise = self.margin * float(positive.mean()) if positive.size else 0.0
        changed = 0
        for t in range(self.n):
            cur = int(current[t])
            if cur < 0 or cur == int(self._partners[t]):
                continue
            old = int(self._partners[t])
            if old < 0:
                # A first partner also has to clear the noise floor, or
                # barely-communicating threads (EP) trigger endless remaps.
                if m[t, cur] > noise:
                    changed += 1
                continue
            if m[t, cur] > self.hysteresis * m[t, old] + noise:
                changed += 1
        return changed

    @property
    def partners(self) -> np.ndarray:
        """The snapshot of partner threads at the last trigger."""
        return self._partners.copy()

    def restore(self, partners: np.ndarray) -> None:
        """Roll the snapshot back to *partners* (a prior :attr:`partners`).

        Used when a trigger was vetoed downstream (e.g. the migration's
        improvement gate): the partner change stays pending, so the same
        evidence re-triggers a later evaluation instead of being swallowed.
        """
        self._partners = np.asarray(partners, dtype=np.int64).copy()
