"""SPCD-driven data mapping (the paper's stated extension, Sec. IV).

"Although we focus on thread mapping in this paper, the mechanisms can be
used to perform data mapping as well."  This module implements exactly
that: the same injected page faults that feed the communication matrix also
reveal *which NUMA node uses each page*.  A page whose recent faults come
predominantly from a remote node is migrated there — the simulation
analogue of NUMA balancing built on SPCD's existing fault stream, with no
additional detection cost.

Mechanism:

* the fault hook records, per region, a small exponential counter of
  faults per NUMA node;
* a periodic kernel thread scans the regions touched since its last wake
  and migrates pages whose dominant node (a) differs from the current home
  and (b) holds at least ``dominance`` of the recent faults;
* a migrated page pays an explicit copy cost and its new home node is
  visible to the cache simulator's DRAM accounting immediately.

Pages shared roughly equally by both nodes (true communication pages) are
intentionally left alone — thread mapping, not data mapping, is the right
tool for those, which is why the two mechanisms compose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.fault import FaultInfo, FaultPipeline
from repro.units import MSEC


@dataclass
class DataMapperStats:
    """Counters of the data-mapping mechanism."""

    pages_migrated: int = 0
    migrations_vetoed_shared: int = 0
    scans: int = 0
    copy_time_ns: float = 0.0


class SpcdDataMapper:
    """NUMA page migration driven by the SPCD fault stream.

    Attributes:
        n_nodes: number of NUMA nodes.
        dominance: minimum share of a page's recent faults that one node
            must hold before the page is migrated there.
        decay: exponential decay of the per-node fault counters at each
            scan (keeps the view recent, like the detector's matrix aging).
        min_faults: minimum recent-fault mass before a page is considered.
        copy_cost_ns: virtual time to copy one page across nodes.
    """

    def __init__(
        self,
        pipeline: FaultPipeline,
        n_nodes: int,
        node_of_pu,
        *,
        dominance: float = 0.7,
        decay: float = 0.5,
        min_faults: float = 3.0,
        copy_cost_ns: float = 3000.0,
        scan_period_ns: int = 100 * MSEC,
    ) -> None:
        if not 0.5 < dominance <= 1.0:
            raise ConfigurationError("dominance must be in (0.5, 1]")
        if not 0.0 <= decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")
        self.pipeline = pipeline
        self.n_nodes = n_nodes
        self.node_of_pu = node_of_pu
        self.dominance = dominance
        self.decay = decay
        self.min_faults = min_faults
        self.copy_cost_ns = copy_cost_ns
        self.scan_period_ns = scan_period_ns
        #: vpn -> per-node recent fault mass
        self._node_faults: dict[int, np.ndarray] = {}
        self._touched: set[int] = set()
        self.stats = DataMapperStats()
        pipeline.add_hook(self.on_fault)

    # -- fault hook ---------------------------------------------------------
    def on_fault(self, info: FaultInfo) -> None:
        """Record which node faulted on the page (free: rides SPCD's hook)."""
        counts = self._node_faults.get(info.vpn)
        if counts is None:
            counts = np.zeros(self.n_nodes)
            self._node_faults[info.vpn] = counts
        counts[self.node_of_pu(info.pu_id)] += 1.0
        self._touched.add(info.vpn)

    # -- periodic scan ---------------------------------------------------------
    def scan(self, now_ns: int) -> int:
        """Migrate pages dominated by a remote node; returns pages moved.

        The legacy timer-driven entry point: decide, apply, then age the
        counters — kept as the composition of the three phases so the
        placement engine can drive them separately (decide inside a
        :class:`~repro.placement.decision.PlacementDecision`, apply in
        ``SpcdManager.apply_decision``).
        """
        self.stats.scans += 1
        moves, _ = self.decide()
        moved = self.apply_moves(moves)
        self.finish_scan()
        return moved

    def decide(self, *, defer_shared: bool = False) -> "tuple[list[tuple[int, int]], int]":
        """Pick pages to migrate; returns ``(moves, shared_deferred)``.

        Pure decision — no page-table mutation.  Each move is
        ``(vpn, target_node)``.  Pages whose fault mass no node dominates
        are *communication* pages: with ``defer_shared`` (combined
        placement policies) they are counted as deferred to the thread
        mapper; otherwise they are recorded as vetoed, the data-only
        semantics.
        """
        table = self.pipeline.address_space.page_table
        moves: "list[tuple[int, int]]" = []
        deferred = 0
        for vpn in list(self._touched):
            counts = self._node_faults[vpn]
            total = counts.sum()
            if total < self.min_faults or not table.is_populated(vpn):
                continue
            best = int(np.argmax(counts))
            share = counts[best] / total
            home = table.home_node_of(vpn)
            if best == home:
                continue
            if share < self.dominance:
                if defer_shared:
                    deferred += 1
                else:
                    self.stats.migrations_vetoed_shared += 1
                continue
            moves.append((vpn, best))
        return moves, deferred

    def apply_moves(self, moves: "list[tuple[int, int]]") -> int:
        """Migrate the decided pages; returns pages actually moved.

        A move migrates the frame (allocate on the dominant node, remap,
        free the old frame), preserves a cleared present bit, charges the
        copy cost, and — crucially — shoots the migrated VPNs out of every
        TLB: stale cached translations would otherwise keep resolving to
        the freed frame.
        """
        table = self.pipeline.address_space.page_table
        frames = self.pipeline.frames
        moved_vpns: "list[int]" = []
        for vpn, best in moves:
            old_frame = table.frame_of(vpn)
            new_frame = frames.allocate(best)
            if frames.node_of_frame(new_frame) != best:
                frames.free(new_frame)  # target node full: keep the page
                continue
            was_present = table.is_present(vpn)
            table.unmap_page(vpn)
            table.map_page(vpn, new_frame, best)
            if not was_present:
                table.clear_present(vpn)
            frames.free(old_frame)
            self.stats.pages_migrated += 1
            self.stats.copy_time_ns += self.copy_cost_ns
            moved_vpns.append(vpn)
        if moved_vpns and self.pipeline.tlbs is not None:
            self.pipeline.tlbs.shootdown(np.asarray(moved_vpns, dtype=np.int64))
        return len(moved_vpns)

    def finish_scan(self) -> None:
        """Age the per-node counters and reset the touched set."""
        if self.decay < 1.0:
            for counts in self._node_faults.values():
                counts *= self.decay
        self._touched.clear()

    def node_affinity(self, vpn: int) -> np.ndarray | None:
        """The recent per-node fault mass of a page (None if never seen)."""
        counts = self._node_faults.get(vpn)
        return None if counts is None else counts.copy()

    def detach(self) -> None:
        """Unregister from the fault pipeline."""
        self.pipeline.remove_hook(self.on_fault)
