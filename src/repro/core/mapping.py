"""The thread-mapping algorithm (paper Sec. IV-B).

Threads are paired by maximum-weight perfect matching on the communication
matrix; on architectures where more than two PUs share a cache the pairing is
repeated over *groups* (Eq. 1) until groups fill a socket.  The resulting
pairing tree is then laid onto the machine: socket-sized groups onto sockets,
their level-1 pairs onto cores, and pair members onto SMT siblings — so
heavily communicating threads land as close as the hierarchy allows.

Thread counts that do not fill the machine are padded with zero-communication
virtual threads; topologies whose per-level capacities are not powers of two
fall back to a greedy affinity packing for that level.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.commmatrix import CommunicationMatrix
from repro.core.grouping import Group, build_hierarchy, group_matrix
from repro.core.matching import greedy_matching
from repro.errors import MappingError
from repro.machine.topology import CommDistance, Machine

__all__ = [
    "HierarchicalMapper",
    "MAPPER_ALGORITHMS",
    "lay_out_socket_groups",
    "make_mapper",
    "mapping_comm_cost",
]

#: Relative communication cost per distance class, used only for *evaluating*
#: mapping quality (tests/oracle comparisons), not by the algorithm itself.
DISTANCE_COST = {
    CommDistance.SAME_PU: 0.0,
    CommDistance.SAME_CORE: 1.0,
    CommDistance.SAME_SOCKET: 2.5,
    CommDistance.CROSS_SOCKET: 10.0,
}


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _pack_greedy(
    comm: np.ndarray, groups: list[Group], n_bins: int, per_bin: int
) -> list[list[Group]]:
    """Greedy affinity packing of *groups* into *n_bins* bins.

    Fallback for levels whose capacity is not a power-of-two multiple of the
    group size.  Seeds each bin with the heaviest unassigned group, then
    repeatedly adds the group with the highest communication toward the
    fullest-affinity bin.
    """
    h = group_matrix(comm, groups)
    unassigned = set(range(len(groups)))
    bins: list[list[int]] = []
    for _ in range(n_bins):
        if not unassigned:
            bins.append([])
            continue
        seed = max(unassigned, key=lambda g: h[g].sum())
        unassigned.discard(seed)
        members = [seed]
        while len(members) < per_bin and unassigned:
            best = max(unassigned, key=lambda g: h[members, g].sum())
            unassigned.discard(best)
            members.append(best)
        bins.append(members)
    if unassigned:
        raise MappingError("greedy packing left groups unassigned")
    return [[groups[g] for g in members] for members in bins]


def lay_out_socket_groups(
    machine: Machine,
    socket_groups: list[list[Group]],
    current: np.ndarray | None,
    n_threads: int,
) -> np.ndarray:
    """Assign socket groups to sockets, core groups to cores, threads to
    PUs — breaking equivalence ties toward the *current* placement.

    Shared by the Edmonds-backed :class:`HierarchicalMapper` and the
    scalable bisection mapper in :mod:`repro.graphs.hiermap`: both reduce
    their pairing/partition tree to this ``socket -> core -> SMT`` slot
    assignment, so stickiness-vs-current behaviour is identical across
    mapping algorithms.
    """
    pu_of_slot = np.full(machine.n_pus, -1, dtype=np.int64)

    def cur_socket(tid: int) -> int:
        return machine.socket_of(int(current[tid]))  # type: ignore[index]

    def cur_core(tid: int) -> int:
        return machine.core_of(int(current[tid]))  # type: ignore[index]

    # Socket level: maximise threads already on their assigned socket.
    n_groups = len(socket_groups)
    if current is not None and n_groups > 1:
        overlap = np.zeros((n_groups, machine.n_sockets))
        for g, cores in enumerate(socket_groups):
            for group in cores:
                for tid in group:
                    if tid < n_threads:
                        overlap[g, cur_socket(tid)] += 1
        rows, cols = linear_sum_assignment(-overlap)
        socket_of_group = dict(zip(rows.tolist(), cols.tolist()))
    else:
        socket_of_group = {g: g for g in range(n_groups)}

    for g, cores in enumerate(socket_groups):
        socket_id = socket_of_group[g]
        core_ids = machine.cores_of_socket(socket_id)
        if len(cores) > len(core_ids):
            raise MappingError("more core groups than cores in socket")
        # Core level: maximise threads already on their assigned core.
        if current is not None:
            overlap = np.zeros((len(cores), len(core_ids)))
            for ci, group in enumerate(cores):
                for tid in group:
                    if tid < n_threads:
                        cc = cur_core(tid)
                        if cc in core_ids:
                            overlap[ci, core_ids.index(cc)] += 1
            rows, cols = linear_sum_assignment(-overlap)
            core_of_group = {r: core_ids[c] for r, c in zip(rows, cols)}
        else:
            core_of_group = dict(enumerate(core_ids))
        for ci, core_group in enumerate(cores):
            core_id = core_of_group[ci]
            pus = machine.pus_of_core(core_id)
            if len(core_group) > len(pus):
                raise MappingError("core group larger than SMT width")
            members = list(core_group)
            # SMT level: keep a member on its current PU where possible.
            if current is not None:
                ov = np.zeros((len(members), len(pus)))
                for mi, tid in enumerate(members):
                    if tid < n_threads:
                        for pi, pu in enumerate(pus):
                            if int(current[tid]) == pu:
                                ov[mi, pi] += 1
                rows, cols = linear_sum_assignment(-ov)
                for mi, pi in zip(rows, cols):
                    pu_of_slot[members[mi]] = pus[pi]
            else:
                for slot, pu in zip(members, pus):
                    pu_of_slot[slot] = pu
    return pu_of_slot


class HierarchicalMapper:
    """Computes a thread -> PU mapping from a communication matrix."""

    def __init__(
        self,
        machine: Machine,
        *,
        use_greedy_matching: bool = False,
        stickiness: float = 0.2,
    ) -> None:
        self.machine = machine
        self.use_greedy_matching = use_greedy_matching
        #: bonus (as a fraction of the mean positive communication) granted
        #: to pairs already sharing a core / socket when a current placement
        #: is supplied — ties and near-ties resolve toward the existing
        #: placement so sampling noise does not flip the pairing structure
        #: and migrate every thread
        self.stickiness = stickiness
        #: total mapper invocations (Table II reports migrations; the
        #: manager reports calls for the overhead figure)
        self.calls = 0

    # -- internals -----------------------------------------------------------
    def _grow(self, comm: np.ndarray, groups: list[Group], target: int) -> list[Group]:
        """Pair *groups* until they hold *target* threads each."""
        if self.use_greedy_matching:
            while len(groups[0]) < target:
                h = group_matrix(comm, groups)
                pairs = greedy_matching(h)
                groups = [tuple(groups[a]) + tuple(groups[b]) for a, b in pairs]
            return groups
        return build_hierarchy(comm, target, start=groups)

    def map(
        self,
        matrix: CommunicationMatrix | np.ndarray,
        current: np.ndarray | None = None,
    ) -> np.ndarray:
        """Thread -> PU assignment maximising nearby communication.

        Args:
            matrix: the communication matrix (``n_threads <= machine.n_pus``).
            current: the threads' current PU placement.  The grouping the
                matcher produces is invariant under permuting equivalent
                sockets/cores/SMT slots; when *current* is given, those ties
                are broken to minimise the number of threads that actually
                move (matching the paper's goal of migrating only when the
                pattern really changed).

        Returns:
            int array ``pu_of_tid`` of length ``n_threads``.
        """
        self.calls += 1
        comm = matrix.matrix if isinstance(matrix, CommunicationMatrix) else np.asarray(matrix)
        n_threads = comm.shape[0]
        machine = self.machine
        n_pus = machine.n_pus
        if n_threads > n_pus:
            raise MappingError(
                f"{n_threads} threads exceed the machine's {n_pus} PUs"
            )
        # Pad with zero-communication virtual threads to fill the machine.
        padded = np.zeros((n_pus, n_pus))
        padded[:n_threads, :n_threads] = comm
        if current is not None and self.stickiness > 0:
            padded = padded + self._stickiness_bonus(comm, current, n_pus)

        smt = machine.smt_per_core
        per_socket = machine.cores_per_socket * smt

        groups: list[Group] = [(t,) for t in range(n_pus)]
        # Level 1: fill cores (SMT siblings share L1/L2).
        if smt > 1:
            if _is_pow2(smt):
                groups = self._grow(padded, groups, smt)
            else:
                packed = _pack_greedy(padded, groups, machine.n_cores, smt)
                groups = [tuple(t for g in bin_ for t in g) for bin_ in packed]
        core_groups = list(groups)

        # Level 2: fill sockets (cores share the L3).
        if machine.n_sockets > 1:
            if _is_pow2(machine.cores_per_socket):
                groups = self._grow(padded, core_groups, per_socket)
                socket_groups = [list(self._split(g, smt)) for g in groups]
            else:
                socket_groups = [
                    [tuple(cg) for cg in bin_]
                    for bin_ in _pack_greedy(
                        padded, core_groups, machine.n_sockets, machine.cores_per_socket
                    )
                ]
        else:
            socket_groups = [core_groups]

        pu_of_slot = lay_out_socket_groups(machine, socket_groups, current, n_threads)
        if np.any(pu_of_slot[:n_threads] < 0):
            raise MappingError("mapping left threads unassigned")
        return pu_of_slot[:n_threads]

    def _stickiness_bonus(
        self, comm: np.ndarray, current: np.ndarray, n_pus: int
    ) -> np.ndarray:
        """Small extra weight for pairs already placed close together."""
        n_threads = comm.shape[0]
        positive = comm[comm > 0]
        if positive.size == 0:
            return np.zeros((n_pus, n_pus))
        unit = self.stickiness * float(positive.mean())
        bonus = np.zeros((n_pus, n_pus))
        machine = self.machine
        cores = [machine.core_of(int(current[t])) for t in range(n_threads)]
        sockets = [machine.socket_of(int(current[t])) for t in range(n_threads)]
        # Every currently co-located pair gets the bonus — including pairs
        # with no observed communication.  In homogeneous patterns all
        # pairings are equivalent, and without this the matcher would pick
        # an arbitrary new structure each call and migrate every thread.
        for i in range(n_threads):
            for j in range(i + 1, n_threads):
                if cores[i] == cores[j]:
                    bonus[i, j] = bonus[j, i] = unit
                elif sockets[i] == sockets[j]:
                    bonus[i, j] = bonus[j, i] = 0.5 * unit
        return bonus

    @staticmethod
    def _split(group: Group, size: int) -> list[Group]:
        """Split a merged group back into its *size*-thread constituents.

        Valid because :func:`repro.core.grouping.pair_groups` concatenates
        constituent groups in order, so the pairing tree is recoverable by
        slicing.
        """
        return [tuple(group[i : i + size]) for i in range(0, len(group), size)]


def mapping_comm_cost(
    comm: np.ndarray, pu_of_tid: np.ndarray, machine: Machine
) -> float:
    """Total communication cost of a placement (lower is better).

    Weighs each pair's communication by the distance class of their PUs;
    used to compare mappings (e.g. SPCD vs. oracle) in tests and analysis.

    Cost: O(nnz) in the upper triangle, not O(n^2) scalar distance lookups —
    at 1024 threads on a power-law matrix that is the difference between
    milliseconds and seconds per evaluation.  The accumulation walks the
    nonzero pairs in the same row-major i<j order and adds them one by one,
    so the float result is bit-identical to the historical nested loop.
    """
    comm = np.asarray(comm, dtype=float)
    pu_of_tid = np.asarray(pu_of_tid, dtype=np.int64)
    cost_of_distance = {int(d): c for d, c in DISTANCE_COST.items()}
    dist = machine.distance_matrix()[np.ix_(pu_of_tid, pu_of_tid)]
    rows, cols = np.nonzero(np.triu(comm, 1))
    cost = 0.0
    for w, d in zip(comm[rows, cols].tolist(), dist[rows, cols].tolist()):
        cost += w * cost_of_distance[d]
    return cost


#: Registered thread-mapping algorithms (the ``make_mapper`` registry).
#: ``"edmonds"`` is the paper's blossom-backed pairing hierarchy;
#: ``"hierarchical"`` is the Schulz/Woydt-style recursive-bisection mapper
#: from :mod:`repro.graphs.hiermap`, which trades exact matchings for
#: near-linear decision latency at 128+ threads.
MAPPER_ALGORITHMS = ("edmonds", "hierarchical")


def make_mapper(
    algorithm: str,
    machine: Machine,
    *,
    use_greedy_matching: bool = False,
    stickiness: float = 0.2,
):
    """Construct a registered mapping engine by name.

    Both engines expose the same surface — ``map(matrix, current=None)``
    and a ``calls`` counter — so the SPCD manager and the placement
    policies treat them interchangeably.
    """
    if algorithm == "edmonds":
        return HierarchicalMapper(
            machine, use_greedy_matching=use_greedy_matching, stickiness=stickiness
        )
    if algorithm == "hierarchical":
        from repro.graphs.hiermap import ScalableHierarchicalMapper

        return ScalableHierarchicalMapper(machine, stickiness=stickiness)
    raise MappingError(
        f"unknown mapping algorithm {algorithm!r}; registered: {MAPPER_ALGORITHMS}"
    )
