"""Additional page-fault injection (paper Sec. III-B2).

A kernel thread wakes at a fixed 10 ms interval, walks the application's
page table, and clears the present bit of a random sample of pages (plus a
TLB shootdown), so that pages already mapped fault again and the detector
keeps seeing accesses.  The thread *dynamically adjusts* how many faults it
creates so extra faults track a chosen ratio of total faults.

Two controller interpretations are provided:

* ``CUMULATIVE`` — paper-literal: injected faults never exceed
  ``ratio/(1-ratio) * natural_faults`` cumulatively.  In a long steady-state
  run (no new first-touch faults) injection stops once the budget is spent.
* ``STEADY`` (default) — the cumulative budget plus a small per-wake floor,
  keeping detection alive in steady state.  This is what a practical
  deployment needs to track *dynamic* pattern changes (the paper's
  producer/consumer experiment demonstrates exactly that ability), and the
  floor is small enough to stay within the paper's <2 % overhead envelope.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.fault import FaultPipeline
from repro.mem.tlb import TlbArray
from repro.obs.events import InjectorWake, TlbShootdown
from repro.obs.recorder import TraceRecorder
from repro.units import MSEC


class InjectorMode(enum.Enum):
    """How the injection budget is computed (see module docstring)."""

    CUMULATIVE = "cumulative"
    STEADY = "steady"


class FaultInjector:
    """Clears present bits of random mapped pages on a periodic wakeup.

    Attributes:
        target_ratio: desired share of injected faults among all faults
            (paper: ~10 %, Table I).
        mode: budget controller interpretation.
        floor_per_wake: minimum pages cleared per wake in ``STEADY`` mode.
        max_per_wake: safety cap on pages cleared in one wake.
        clear_cost_ns: virtual cost per cleared page (one page-table walk
            plus TLB shootdown work) — feeds the overhead accounting.
    """

    #: wake interval from the paper (Sec. III-B2)
    DEFAULT_PERIOD_NS = 10 * MSEC

    def __init__(
        self,
        pipeline: FaultPipeline,
        rng: np.random.Generator,
        *,
        tlbs: TlbArray | None = None,
        target_ratio: float = 0.10,
        mode: InjectorMode = InjectorMode.STEADY,
        floor_per_wake: int = 32,
        max_per_wake: int = 4096,
        clear_cost_ns: float = 150.0,
        sampling: str = "accessed",
        recorder: TraceRecorder | None = None,
    ) -> None:
        if not 0.0 < target_ratio < 1.0:
            raise ConfigurationError("target ratio must be in (0, 1)")
        if floor_per_wake < 0 or max_per_wake <= 0:
            raise ConfigurationError("invalid per-wake bounds")
        if sampling not in ("accessed", "uniform"):
            raise ConfigurationError("sampling must be 'accessed' or 'uniform'")
        self.pipeline = pipeline
        self.rng = rng
        self.tlbs = tlbs
        self.target_ratio = target_ratio
        self.mode = mode
        self.floor_per_wake = floor_per_wake
        self.max_per_wake = max_per_wake
        self.clear_cost_ns = clear_cost_ns
        #: "accessed" restricts the random sample to pages whose accessed
        #: bit was set since the previous wake (the page-table walk already
        #: reads the PTEs, so filtering on the A bit is free) — injected
        #: faults then land on the application's *live* working set instead
        #: of cold streaming pages.  "uniform" is the paper-literal random
        #: sample over all present pages (kept for the ablation).
        self.sampling = sampling
        self.recorder = recorder
        self.cleared_total = 0
        self.wakes = 0
        self.inject_time_ns = 0.0

    # -- budget -------------------------------------------------------------
    def _budget(self) -> int:
        """Pages to clear on this wake, per the configured controller."""
        natural = self.pipeline.first_touch_faults
        injected = self.pipeline.injected_faults
        ratio = self.target_ratio
        # Injected / (natural + injected) == ratio  =>  allowed below:
        allowed = ratio / (1.0 - ratio) * natural
        deficit = int(allowed) - injected
        # Clearing a present bit only *eventually* produces a fault; pages
        # cleared but not yet re-touched are in flight.  Subtract them so
        # the cumulative controller does not overshoot.  The STEADY floor is
        # intentionally exempt: rarely-touched pages stay in flight forever
        # and would otherwise strangle the trickle that keeps detection
        # alive.
        in_flight = max(0, self.cleared_total - injected)
        deficit -= in_flight
        if self.mode is InjectorMode.STEADY:
            deficit = max(deficit, self.floor_per_wake)
        return int(np.clip(deficit, 0, self.max_per_wake))

    # -- wakeup -------------------------------------------------------------
    def wake(self, now_ns: int) -> int:
        """One injector wakeup: sample pages, clear bits, shoot down TLBs.

        Returns the number of present bits cleared.
        """
        self.wakes += 1
        want = self._budget()
        table = self.pipeline.address_space.page_table
        if want <= 0:
            if self.sampling == "accessed":
                table.age_accessed()
            return self._record_wake(now_ns, want, 0, 0)
        if self.sampling == "accessed":
            candidates = table.accessed_present_vpns()
            table.age_accessed()
            if candidates.size < want:
                candidates = table.present_vpns()
        else:
            candidates = table.present_vpns()
        if candidates.size == 0:
            return self._record_wake(now_ns, want, 0, 0)
        count = min(want, candidates.size)
        chosen = self.rng.choice(candidates, size=count, replace=False)
        cleared = table.clear_present(chosen)
        if self.tlbs is not None:
            removed = self.tlbs.shootdown(chosen)  # bulk ndarray path
            if self.recorder is not None:
                self.recorder.emit(
                    TlbShootdown(
                        now_ns=int(now_ns),
                        n_vpns=int(chosen.size),
                        entries_removed=int(removed),
                        shootdowns=self.tlbs.shootdowns,
                    )
                )
        self.cleared_total += cleared
        self.inject_time_ns += cleared * self.clear_cost_ns
        return self._record_wake(now_ns, want, int(candidates.size), cleared)

    def _record_wake(self, now_ns: int, budget: int, candidates: int, cleared: int) -> int:
        """Emit this wake's adaptivity record; returns *cleared* (pass-through)."""
        if self.recorder is not None:
            self.recorder.emit(
                InjectorWake(
                    now_ns=int(now_ns),
                    wake=self.wakes,
                    budget=int(budget),
                    candidates=candidates,
                    cleared=cleared,
                    cleared_total=self.cleared_total,
                    inject_time_ns=self.inject_time_ns,
                )
            )
        return cleared

    def achieved_ratio(self) -> float:
        """Observed injected-fault share (should approach ``target_ratio``)."""
        return self.pipeline.injected_fraction()
