"""SPCD orchestration: detection + injection + filter + mapping + migration.

:class:`SpcdManager` wires the pieces the way the paper's kernel module does:

* the detector hooks the page-fault pipeline;
* the injector runs as a 10 ms kernel thread;
* a second periodic activity evaluates the communication matrix, asks the
  communication filter whether the pattern changed, and if so computes a new
  hierarchical mapping and migrates the threads.

It also carries the virtual-time overhead accounting that reproduces the
paper's Fig. 16 split into *detection overhead* (fault hook + injection) and
*mapping overhead* (matrix analysis, matching, migrations).
"""

from __future__ import annotations

import hashlib
import logging
import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.filter import CommunicationFilter
from repro.core.injector import FaultInjector, InjectorMode
from repro.core.mapping import make_mapper, mapping_comm_cost
from repro.core.spcd import SpcdDetector
from repro.kernelsim.kthread import TimerWheel
from repro.kernelsim.migration import MigrationEngine
from repro.kernelsim.scheduler import PinnedScheduler
from repro.machine.topology import Machine
from repro.mem.fault import FaultPipeline
from repro.mem.tlb import TlbArray
from repro.mem.ptreplica import ReplicatedPageTable
from repro.obs.events import MappingDecision, PlacementApplied, SpcdEvaluation
from repro.obs.recorder import TraceRecorder
from repro.placement.decision import PageMigration, PlacementDecision, PlacementView
from repro.placement.policy import PlacementPolicy, ThreadPlacementPolicy
from repro.units import MSEC, PAGE_SIZE

_log = logging.getLogger(__name__)

#: standalone-default for the Edmonds -> hierarchical auto-switch; mirrors
#: ``RunSettings.map_hierarchical_min_n`` (the simulator threads the settings
#: value through ``SpcdConfig.hierarchical_min_n``)
DEFAULT_HIERARCHICAL_MIN_N = 128


def matrix_digest(matrix) -> str:
    """Short content digest of a communication matrix (trace audit anchor).

    BLAKE2b over the raw float64 payload, 8-byte digest — the format every
    trace event (:class:`~repro.obs.events.SpcdEvaluation`, the serve
    layer's evaluation events) uses, so digests from any pipeline that
    detected the same matrix compare equal byte for byte.
    """
    return hashlib.blake2b(
        np.ascontiguousarray(matrix.matrix).tobytes(), digest_size=8
    ).hexdigest()


@dataclass
class SpcdConfig:
    """Tunables of the full SPCD mechanism (defaults follow Table I)."""

    granularity: int = PAGE_SIZE
    window_ns: int = 250 * MSEC
    table_size: int = 256_000
    injector_period_ns: int = 10 * MSEC
    injector_ratio: float = 0.10
    injector_mode: InjectorMode = InjectorMode.STEADY
    #: pages cleared per wake at minimum.  The paper keeps injected faults at
    #: ~10 % of total faults on a machine taking millions of faults; a
    #: sampled simulation has ~10^3x fewer natural faults per unit of virtual
    #: time, so STEADY mode keeps a fixed trickle instead to reach the same
    #: effective detection density (CUMULATIVE mode is the paper-literal
    #: controller, used by the rate ablation).
    injector_floor: int = 256
    injector_max_per_wake: int = 4096
    #: "accessed" (default) or "uniform" — see FaultInjector.sampling
    injector_sampling: str = "accessed"
    eval_period_ns: int = 50 * MSEC
    #: minimum time between two migration events.  Thread migration costs a
    #: working-set refill; production schedulers rate-limit migrations for
    #: exactly this reason, and the paper's low migration counts (Table II:
    #: at most 6) show SPCD remaps sparingly.
    remap_cooldown_ns: int = 250 * MSEC
    #: migrate only when the proposed mapping's communication cost (under
    #: the detected matrix) is below this fraction of the current
    #: placement's cost.  Homogeneous patterns, where every placement is
    #: equivalent, therefore migrate at most once — matching the paper's
    #: Table II (FT/IS/EP: 0-1 migrations) — while a genuine pattern change
    #: clears the bar easily.
    min_improvement: float = 0.85
    filter_threshold: int = 2
    filter_enabled: bool = True
    filter_hysteresis: float = 1.25
    filter_margin: float = 0.5
    #: do not trigger the first mapping before this many communication
    #: events were observed (guards against mapping pure noise right after
    #: start-up, when the matrix holds a handful of samples)
    filter_min_events: float = 128.0
    #: matrix aging factor applied after every evaluation; makes the
    #: partner/pattern view an exponential moving average so the mechanism
    #: can follow dynamic phase changes (Sec. V-B) instead of being
    #: dominated by stale history.  1.0 disables aging.
    matrix_decay: float = 0.92
    use_greedy_matching: bool = False
    #: mapper tie-breaking bonus toward the current placement (see
    #: HierarchicalMapper.stickiness)
    mapper_stickiness: float = 0.75
    #: virtual cost of one mapper call, per thread^3 (blossom is O(N^3))
    mapping_cost_ns_per_n3: float = 30.0
    detect_cost_ns: float = 250.0
    clear_cost_ns: float = 150.0
    #: detection engine: "array" (vectorised fast engine), "dict" (per-fault
    #: reference engine), or None to follow ``REPRO_SLOW_SPCD``
    detector_engine: str | None = None
    #: also perform SPCD-driven *data* mapping (NUMA page migration) — the
    #: extension the paper names in Sec. IV; see repro.core.datamap
    data_mapping: bool = False
    data_scan_period_ns: int = 100 * MSEC
    #: mapping engine: "edmonds", "hierarchical", or None = resolve by
    #: precedence (explicit config > placement policy's ``mapper_algorithm``
    #: > thread-count auto-switch)
    mapper_algorithm: str | None = None
    #: auto-switch to the hierarchical mapper at this thread count; None
    #: uses :data:`DEFAULT_HIERARCHICAL_MIN_N` (the simulator threads
    #: ``REPRO_MAP_HIERARCHICAL_MIN_N`` through here)
    hierarchical_min_n: int | None = None
    #: store the detection matrix as a
    #: :class:`~repro.graphs.sparse.SparseCommMatrix` (digest-identical;
    #: ``REPRO_SPARSE_COMM``)
    sparse_matrix: bool = False


@dataclass
class SpcdOverheads:
    """Virtual-time overhead split, as in the paper's Fig. 16 / Table II."""

    detection_ns: float = 0.0
    mapping_ns: float = 0.0
    migrations: int = 0
    mapper_calls: int = 0
    filter_evaluations: int = 0

    def detection_pct(self, total_ns: float) -> float:
        """Detection overhead as % of total execution time."""
        return 100.0 * self.detection_ns / total_ns if total_ns else 0.0

    def mapping_pct(self, total_ns: float) -> float:
        """Mapping overhead as % of total execution time."""
        return 100.0 * self.mapping_ns / total_ns if total_ns else 0.0


class SpcdManager:
    """The complete SPCD mechanism bound to one running application."""

    def __init__(
        self,
        machine: Machine,
        n_threads: int,
        pipeline: FaultPipeline,
        scheduler: PinnedScheduler,
        rng: np.random.Generator,
        *,
        tlbs: TlbArray | None = None,
        timer_wheel: TimerWheel | None = None,
        config: SpcdConfig | None = None,
        recorder: TraceRecorder | None = None,
        scalar_touch_max: "int | None" = None,
        placement: PlacementPolicy | None = None,
    ) -> None:
        self.machine = machine
        self.n_threads = n_threads
        self.config = config or SpcdConfig()
        cfg = self.config
        #: the policy whose ``evaluate`` turns each periodic evaluation's
        #: evidence into one :class:`PlacementDecision`; the default
        #: reproduces the paper's thread-only mechanism bit for bit
        self.placement: PlacementPolicy = (
            ThreadPlacementPolicy() if placement is None else placement
        )
        self.pipeline = pipeline
        self.recorder = recorder
        self.detector = SpcdDetector(
            n_threads,
            granularity=cfg.granularity,
            window_ns=cfg.window_ns,
            table_size=cfg.table_size,
            detect_cost_ns=cfg.detect_cost_ns,
            pipeline=pipeline,
            engine=cfg.detector_engine,
            scalar_touch_max=scalar_touch_max,
            sparse_matrix=cfg.sparse_matrix,
        )
        self.injector = FaultInjector(
            pipeline,
            rng,
            tlbs=tlbs,
            target_ratio=cfg.injector_ratio,
            mode=cfg.injector_mode,
            floor_per_wake=cfg.injector_floor,
            max_per_wake=cfg.injector_max_per_wake,
            clear_cost_ns=cfg.clear_cost_ns,
            sampling=cfg.injector_sampling,
            recorder=recorder,
        )
        self.filter = CommunicationFilter(
            n_threads,
            cfg.filter_threshold,
            hysteresis=cfg.filter_hysteresis,
            margin=cfg.filter_margin,
        )
        self.mapper_algorithm = self._select_mapper_algorithm(cfg)
        self.mapper = make_mapper(
            self.mapper_algorithm,
            machine,
            use_greedy_matching=cfg.use_greedy_matching,
            stickiness=cfg.mapper_stickiness,
        )
        self.migrator = MigrationEngine(scheduler, tlbs, recorder=recorder)
        self.data_mapper = None
        if cfg.data_mapping or self.placement.maps_data:
            from repro.core.datamap import SpcdDataMapper

            self.data_mapper = SpcdDataMapper(
                pipeline,
                machine.n_numa_nodes,
                machine.numa_node_of,
                scan_period_ns=cfg.data_scan_period_ns,
            )
        self.overheads = SpcdOverheads()
        #: host wall-clock spent in the mapping kernels (grouping + matching
        #: + layout); harvested into ``PerfCounters.match_s`` at run end
        self.map_wall_s = 0.0
        self._mapping_history: list[tuple[int, np.ndarray]] = []
        self._events_at_last_trigger = 0.0
        self._last_migration_ns = -(1 << 62)
        if timer_wheel is not None:
            timer_wheel.register("spcd-injector", cfg.injector_period_ns, self.injector.wake)
            timer_wheel.register("spcd-evaluate", cfg.eval_period_ns, self.evaluate)
            # The legacy standalone data-mapping timer: only when the config
            # asks for it AND the placement policy does not already fold
            # page migrations into its co-decided evaluations.
            if self.data_mapper is not None and not self.placement.maps_data:
                timer_wheel.register(
                    "spcd-datamap", cfg.data_scan_period_ns, self.data_mapper.scan
                )

    def _select_mapper_algorithm(self, cfg: SpcdConfig) -> str:
        """Resolve the mapping engine for this run.

        Precedence: explicit ``SpcdConfig.mapper_algorithm``, then the
        placement policy's ``mapper_algorithm`` attribute (the ``spcd-hier``
        policy), then the thread-count auto-switch — Edmonds stays the
        default below the threshold, so every paper-scale digest is
        untouched.
        """
        explicit = cfg.mapper_algorithm or getattr(
            self.placement, "mapper_algorithm", None
        )
        if explicit:
            return str(explicit)
        min_n = (
            cfg.hierarchical_min_n
            if cfg.hierarchical_min_n is not None
            else DEFAULT_HIERARCHICAL_MIN_N
        )
        if self.n_threads >= min_n:
            _log.info(
                "mapping: auto-selected the hierarchical mapper "
                "(n_threads=%d >= REPRO_MAP_HIERARCHICAL_MIN_N=%d); "
                "Edmonds matching would be O(n^3) here",
                self.n_threads,
                min_n,
            )
            return "hierarchical"
        return "edmonds"

    # -- periodic evaluation ---------------------------------------------------
    def evaluate(self, now_ns: int) -> bool:
        """One placement evaluation: policy decides, manager applies.

        The placement policy sees the communication matrix and (when data
        mapping is on) the per-page node-fault counters through one
        :class:`~repro.placement.decision.PlacementView` and returns one
        :class:`~repro.placement.decision.PlacementDecision`; the manager
        applies its thread remap, page migrations and replication
        directive atomically.  With the default thread-only policy this
        reproduces the pre-placement evaluation bit for bit (gates,
        overhead accounting, trace events, matrix aging).

        Returns True if a thread migration was performed.
        """
        self.overheads.filter_evaluations += 1
        matrix = self.detector.matrix
        verdict = "insufficient-evidence"
        # Each mapping decision requires a quota of *fresh* communication
        # evidence since the previous one; barely-communicating
        # applications (EP) accumulate events so slowly that they remap
        # at most once, as in the paper's Table II.
        fresh = self.detector.stats.comm_events - self._events_at_last_trigger
        try:
            decision = self.placement.evaluate(self._view(now_ns, matrix, fresh))
            verdict = decision.verdict
            moved, pages_moved, replicated = self.apply_decision(decision, now_ns)
            if decision.thread_mapping is not None:
                verdict = "migrated" if moved else "no-move"
            elif pages_moved and verdict == "data-idle":
                verdict = "data-migrated"
            return moved > 0
        finally:
            if self.recorder is not None:
                self.recorder.emit(
                    SpcdEvaluation(
                        now_ns=int(now_ns),
                        evaluation=self.overheads.filter_evaluations,
                        verdict=verdict,
                        fresh_events=float(fresh),
                        partners=[int(p) for p in matrix.partners()],
                        matrix_digest=self._matrix_digest(matrix),
                        mapping_ns=self.overheads.mapping_ns,
                    )
                )
            if self.config.matrix_decay < 1.0:
                matrix.decay(self.config.matrix_decay)

    def _view(self, now_ns: int, matrix, fresh: float) -> PlacementView:
        """Assemble the evidence one policy evaluation may observe."""
        table = self.pipeline.address_space.page_table
        return PlacementView(
            now_ns=int(now_ns),
            machine=self.machine,
            matrix=matrix,
            fresh_events=float(fresh),
            table=table,
            node_faults=self.data_mapper,
            pt_replicated=bool(getattr(table, "active", False)),
            _thread_proposal=lambda: self._propose_thread_mapping(now_ns, matrix, fresh),
            _page_proposal=self._propose_page_migrations,
            current_placement=tuple(
                int(p) for p in self.migrator.scheduler.placement()
            ),
        )

    def _propose_thread_mapping(
        self, now_ns: int, matrix, fresh: float
    ) -> "tuple[np.ndarray | None, str, float, float]":
        """Evidence gates + mapper; ``(mapping|None, verdict, cost_now, cost_new)``.

        This is the pre-placement evaluation body verbatim: the fresh-
        evidence quota, the migration cooldown, the communication filter,
        the mapper call with its virtual cost, the improvement veto and
        the :class:`MappingDecision` trace event all behave identically
        regardless of which placement policy asks for the proposal.
        """
        if fresh < self.config.filter_min_events:
            return None, "insufficient-evidence", 0.0, 0.0
        if now_ns - self._last_migration_ns < self.config.remap_cooldown_ns:
            return None, "cooldown", 0.0, 0.0
        if self.config.filter_enabled and not self.filter.should_remap(matrix):
            return None, "pattern-unchanged", 0.0, 0.0
        if not self.config.filter_enabled and matrix.total() == 0:
            return None, "no-communication", 0.0, 0.0
        self._events_at_last_trigger = self.detector.stats.comm_events
        current = self.migrator.scheduler.placement()
        t_map = perf_counter()
        mapping = self.mapper.map(matrix, current=current)
        decide_wall_s = perf_counter() - t_map
        self.map_wall_s += decide_wall_s
        self.overheads.mapper_calls += 1
        n = self.n_threads
        if self.mapper_algorithm == "hierarchical":
            # Recursive bisection + bounded refinement: ~n^2 log n work, so
            # its virtual cost scales the same way (same per-unit constant).
            self.overheads.mapping_ns += (
                self.config.mapping_cost_ns_per_n3 * n * n * max(1.0, math.log2(n))
            )
        else:
            self.overheads.mapping_ns += self.config.mapping_cost_ns_per_n3 * n**3
        cost_now = mapping_comm_cost(matrix.matrix, current, self.machine)
        cost_new = mapping_comm_cost(matrix.matrix, mapping, self.machine)
        vetoed = cost_now > 0 and cost_new > self.config.min_improvement * cost_now
        if self.recorder is not None:
            self.recorder.emit(
                MappingDecision(
                    now_ns=int(now_ns),
                    current=[int(p) for p in current],
                    proposed=[int(p) for p in mapping],
                    cost_now=float(cost_now),
                    cost_new=float(cost_new),
                    accepted=not vetoed,
                    algorithm=self.mapper_algorithm,
                    matrix_density=float(matrix.density()),
                    decide_wall_s=float(decide_wall_s),
                )
            )
        if vetoed:
            # Vetoed: the filter's snapshot stays updated — the change
            # was considered and judged not worth a migration.  If the
            # pattern keeps evolving, partners will drift against the
            # new snapshot and re-trigger naturally.
            return None, "vetoed", float(cost_now), float(cost_new)
        return mapping, "proposed", float(cost_now), float(cost_new)

    def _propose_page_migrations(self) -> "tuple[tuple[PageMigration, ...], int]":
        """Scan the node-fault counters; ``(migrations, shared_deferred)``.

        One call is one data-mapping scan: the counters are decided over,
        then aged — exactly the legacy timer-driven cadence, but on the
        evaluation clock and without mutating the page table (that waits
        for :meth:`apply_decision`).
        """
        if self.data_mapper is None:
            return (), 0
        self.data_mapper.stats.scans += 1
        moves, deferred = self.data_mapper.decide(
            defer_shared=self.placement.maps_threads
        )
        self.data_mapper.finish_scan()
        return (
            tuple(PageMigration(vpn=vpn, target_node=node) for vpn, node in moves),
            deferred,
        )

    def apply_decision(
        self, decision: PlacementDecision, now_ns: int
    ) -> "tuple[int, int, bool]":
        """Apply one decision atomically; ``(threads_moved, pages_moved, replicated)``.

        Order matters and is fixed: replication first (so the migrations'
        page-table updates are already broadcast to fresh replicas), then
        page migrations, then the thread remap — the NUMA-placement
        analogue of establishing the memory layout before moving the
        compute to it.
        """
        replicated = False
        replication_cost = 0.0
        table = self.pipeline.address_space.page_table
        if decision.replicate_pt and isinstance(table, ReplicatedPageTable):
            if not table.active:
                replication_cost = table.activate()
                replicated = True
        pages_moved = 0
        if decision.page_migrations and self.data_mapper is not None:
            pages_moved = self.data_mapper.apply_moves(
                [(m.vpn, m.target_node) for m in decision.page_migrations]
            )
        moved = 0
        if decision.thread_mapping is not None:
            mapping = np.asarray(decision.thread_mapping, dtype=np.int64)
            moved = self.migrator.apply_mapping(mapping, now_ns)
            if moved:
                self._last_migration_ns = now_ns
                self._mapping_history.append((now_ns, mapping.copy()))
        if self.recorder is not None and (
            pages_moved or decision.page_migrations or replicated or decision.shared_deferred
        ):
            self.recorder.emit(
                PlacementApplied(
                    now_ns=int(now_ns),
                    policy=self.placement.name,
                    verdict=decision.verdict,
                    thread_moves=int(moved),
                    page_migrations=int(pages_moved),
                    shared_deferred=int(decision.shared_deferred),
                    replicated=bool(replicated),
                    replication_cost_ns=float(replication_cost),
                    copy_time_ns=float(
                        self.data_mapper.stats.copy_time_ns if self.data_mapper else 0.0
                    ),
                )
            )
        return moved, pages_moved, replicated

    @staticmethod
    def _matrix_digest(matrix) -> str:
        """Short content digest of the matrix snapshot (trace audit anchor)."""
        return matrix_digest(matrix)

    # -- reporting ---------------------------------------------------------------
    @property
    def migration_count(self) -> int:
        """Full-mapping migration events performed (Table II row)."""
        return self.migrator.migration_events

    def detection_time_ns(self) -> float:
        """Virtual time spent detecting (hook work + injection walks)."""
        return self.pipeline.hook_time_ns + self.injector.inject_time_ns

    def mapping_time_ns(self) -> float:
        """Virtual time spent mapping, migrating and replicating.

        Includes the page-table replication bill (activation copies +
        coherence broadcasts) when a :class:`ReplicatedPageTable` is in
        play — zero otherwise, so thread-only totals are unchanged.
        """
        return (
            self.overheads.mapping_ns
            + self.migrator.cost_ns
            + self.replication_time_ns()
        )

    def replication_time_ns(self) -> float:
        """Virtual time spent on page-table replication (0.0 when off)."""
        table = self.pipeline.address_space.page_table
        return float(getattr(table, "replication_cost_ns", 0.0))

    def overhead_summary(self, total_ns: float) -> dict[str, float]:
        """Percentages for the Fig. 16 reproduction."""
        return {
            "detection_pct": 100.0 * self.detection_time_ns() / total_ns if total_ns else 0.0,
            "mapping_pct": 100.0 * self.mapping_time_ns() / total_ns if total_ns else 0.0,
            "migrations": float(self.migration_count),
        }

    @property
    def mapping_history(self) -> list[tuple[int, np.ndarray]]:
        """(time, mapping) for every applied migration."""
        return list(self._mapping_history)
