"""Hierarchical group formation (paper Sec. IV-B, Eq. 1).

After the matching algorithm pairs threads, architectures where more than two
PUs share a cache need *groups of groups*: a new communication matrix over
the pairs is built with the heuristic

    H[(x,y),(z,k)] = M[x,z] + M[x,k] + M[y,z] + M[y,k]

and matched again, doubling group size each round.  ``group_matrix``
implements the natural generalisation (the sum of all cross-group cells,
which reduces to Eq. 1 for size-2 groups), and ``pair_groups`` performs one
matching round over groups.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.matching import max_weight_perfect_matching
from repro.errors import MappingError

Group = tuple[int, ...]


def group_matrix(comm: np.ndarray, groups: Sequence[Group]) -> np.ndarray:
    """Communication matrix *between groups* (Eq. 1 generalised).

    ``H[a, b]`` is the sum of ``comm[i, j]`` over all ``i`` in group *a* and
    ``j`` in group *b*.  Implemented as ``G @ M @ G.T`` with an indicator
    matrix; the diagonal (intra-group communication) is zeroed since matching
    never uses it.
    """
    comm = np.asarray(comm, dtype=float)
    n = comm.shape[0]
    g = len(groups)
    indicator = np.zeros((g, n))
    seen: set[int] = set()
    for a, members in enumerate(groups):
        for tid in members:
            if not 0 <= tid < n:
                raise MappingError(f"thread {tid} outside matrix of size {n}")
            if tid in seen:
                raise MappingError(f"thread {tid} appears in two groups")
            seen.add(tid)
            indicator[a, tid] = 1.0
    h = indicator @ comm @ indicator.T
    np.fill_diagonal(h, 0.0)
    return h


def pair_groups(comm: np.ndarray, groups: Sequence[Group]) -> list[Group]:
    """One pairing round: match groups, merge each matched pair.

    Returns the merged groups (half as many, each twice the size).  Member
    order within a merged group preserves the constituent groups, so the
    final group tuple encodes the whole pairing tree
    (e.g. ``(a, b, c, d)`` means (a,b) and (c,d) were level-1 pairs).
    """
    if len(groups) % 2 != 0:
        raise MappingError(f"cannot pair an odd number of groups ({len(groups)})")
    h = group_matrix(comm, groups)
    pairs = max_weight_perfect_matching(h)
    return [tuple(groups[a]) + tuple(groups[b]) for a, b in pairs]


def build_hierarchy(
    comm: np.ndarray, target_size: int, *, start: Sequence[Group] | None = None
) -> list[Group]:
    """Pair repeatedly until groups reach *target_size* threads each.

    *target_size* must be ``start_size * 2**k``.  With the default start of
    singleton groups this produces the full pairing tree bottom-up, exactly
    the paper's repeated-matching procedure.
    """
    n = np.asarray(comm).shape[0]
    groups: list[Group] = list(start) if start is not None else [(t,) for t in range(n)]
    size = len(groups[0])
    if any(len(g) != size for g in groups):
        raise MappingError("all starting groups must have equal size")
    if target_size < size or target_size % size != 0:
        raise MappingError(f"cannot grow groups of {size} to {target_size}")
    ratio = target_size // size
    if ratio & (ratio - 1):
        raise MappingError(f"target size {target_size} not a power-of-two multiple of {size}")
    while len(groups[0]) < target_size:
        groups = pair_groups(comm, groups)
    return groups
