"""Hierarchical group formation (paper Sec. IV-B, Eq. 1).

After the matching algorithm pairs threads, architectures where more than two
PUs share a cache need *groups of groups*: a new communication matrix over
the pairs is built with the heuristic

    H[(x,y),(z,k)] = M[x,z] + M[x,k] + M[y,z] + M[y,k]

and matched again, doubling group size each round.  ``group_matrix``
implements the natural generalisation (the sum of all cross-group cells,
which reduces to Eq. 1 for size-2 groups), and ``pair_groups`` performs one
matching round over groups.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.matching import max_weight_perfect_matching
from repro.errors import MappingError

Group = tuple[int, ...]


def group_matrix(comm: np.ndarray, groups: Sequence[Group]) -> np.ndarray:
    """Communication matrix *between groups* (Eq. 1 generalised).

    ``H[a, b]`` is the sum of ``comm[i, j]`` over all ``i`` in group *a* and
    ``j`` in group *b*.  For equal-size groups (the only shape the pairing
    rounds produce) this is one numpy gather-and-fold — ``comm`` indexed by
    the ``(g, s)`` member table on both axes, summed over the two member
    axes, an O(n^2) outer-sum with no Python loops.  Ragged group lists
    fall back to the indicator-matrix product ``G @ M @ G.T``.  The
    diagonal (intra-group communication) is zeroed since matching never
    uses it.
    """
    comm = np.asarray(comm, dtype=float)
    n = comm.shape[0]
    g = len(groups)
    sizes = {len(members) for members in groups}
    flat = np.fromiter(
        (tid for members in groups for tid in members),
        dtype=np.int64,
        count=sum(len(members) for members in groups),
    )
    if flat.size and ((flat < 0) | (flat >= n)).any():
        bad = int(flat[(flat < 0) | (flat >= n)][0])
        raise MappingError(f"thread {bad} outside matrix of size {n}")
    if np.unique(flat).size != flat.size:
        vals, counts = np.unique(flat, return_counts=True)
        raise MappingError(f"thread {int(vals[counts > 1][0])} appears in two groups")
    if len(sizes) == 1:
        members = flat.reshape(g, -1)
        h = comm[members[:, None, :, None], members[None, :, None, :]].sum(axis=(2, 3))
    else:
        indicator = np.zeros((g, n))
        for a, members in enumerate(groups):
            indicator[a, list(members)] = 1.0
        h = indicator @ comm @ indicator.T
    np.fill_diagonal(h, 0.0)
    return h


def pair_groups(comm: np.ndarray, groups: Sequence[Group]) -> list[Group]:
    """One pairing round: match groups, merge each matched pair.

    Returns the merged groups (half as many, each twice the size).  Member
    order within a merged group preserves the constituent groups, so the
    final group tuple encodes the whole pairing tree
    (e.g. ``(a, b, c, d)`` means (a,b) and (c,d) were level-1 pairs).
    """
    if len(groups) % 2 != 0:
        raise MappingError(f"cannot pair an odd number of groups ({len(groups)})")
    h = group_matrix(comm, groups)
    pairs = max_weight_perfect_matching(h)
    return [tuple(groups[a]) + tuple(groups[b]) for a, b in pairs]


def build_hierarchy(
    comm: np.ndarray, target_size: int, *, start: Sequence[Group] | None = None
) -> list[Group]:
    """Pair repeatedly until groups reach *target_size* threads each.

    *target_size* must be ``start_size * 2**k``.  With the default start of
    singleton groups this produces the full pairing tree bottom-up, exactly
    the paper's repeated-matching procedure.
    """
    n = np.asarray(comm).shape[0]
    groups: list[Group] = list(start) if start is not None else [(t,) for t in range(n)]
    size = len(groups[0])
    if any(len(g) != size for g in groups):
        raise MappingError("all starting groups must have equal size")
    if target_size < size or target_size % size != 0:
        raise MappingError(f"cannot grow groups of {size} to {target_size}")
    ratio = target_size // size
    if ratio & (ratio - 1):
        raise MappingError(f"target size {target_size} not a power-of-two multiple of {size}")
    while len(groups[0]) < target_size:
        groups = pair_groups(comm, groups)
    return groups
