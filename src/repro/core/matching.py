"""Maximum-weight (perfect) matching on complete weighted graphs.

The thread-mapping algorithm (paper Sec. IV-B) models threads as vertices and
communication amounts as edge weights, then extracts the pairing of maximum
total communication — the *maximum weight perfect matching* problem, solvable
in polynomial time by Edmonds' blossom algorithm [15].

:func:`max_weight_matching` below is a from-scratch implementation of the
classic O(n^3) formulation by Galil ("Efficient algorithms for finding
maximum matching in graphs", 1986), following the well-known primal-dual
staging (the same formulation underlying ``networkx``'s implementation, which
our tests cross-validate against).  :func:`max_weight_perfect_matching`
specialises it to complete graphs with an even number of vertices, where a
perfect matching always exists and maximum-cardinality mode yields it.

Two engines implement the identical algorithm:

* :func:`_blossom_reference` — the original pure-Python loops, kept as the
  differential-testing reference.
* :func:`_blossom_array` — an adjacency-array rewrite whose hot scans (the
  per-vertex slack scan of the queue drain, the best-edge recomputation when
  a blossom forms, and the dual-adjustment delta search) run as numpy bulk
  operations.  Every comparison is evaluated on the same float64 values in
  the same order-with-ties semantics (first minimum wins, strict-``<``
  replacement), so the two engines return *bit-identical* ``mate`` arrays —
  ``tests/test_matching_kernels.py`` pins this on random integer matrices
  including degenerate all-ties inputs.

:func:`max_weight_matching` dispatches on graph size: tiny graphs stay on
the reference loops (lower constant factor), everything else takes the
array engine.

A cheap O(n^2 log n) :func:`greedy_matching` is provided for the ablation
study (bench E16) and as a fallback for very large thread counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import MatchingError

__all__ = [
    "greedy_matching",
    "matching_weight",
    "max_weight_matching",
    "max_weight_perfect_matching",
]


#: below this many vertices the pure-Python loops beat the numpy engine
_ARRAY_MIN_VERTICES = 48


def max_weight_matching(
    edges: Sequence[tuple[int, int, float]], maxcardinality: bool = False
) -> list[int]:
    """Maximum-weight matching of a general graph (blossom algorithm).

    Args:
        edges: ``(i, j, weight)`` triples with ``i != j``; vertices are the
            integers appearing in the triples (dense ids recommended).
        maxcardinality: if True, only maximum-cardinality matchings are
            considered (among them, the heaviest is returned).

    Returns:
        ``mate`` array: ``mate[v]`` is the vertex matched to *v*, or -1.
    """
    if not edges:
        return []
    nvertex = 1 + max(max(i, j) for (i, j, _w) in edges)
    if nvertex >= _ARRAY_MIN_VERTICES:
        ei = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
        ej = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
        ew = np.fromiter((e[2] for e in edges), dtype=np.float64, count=len(edges))
        return _blossom_array(ei, ej, ew, maxcardinality)
    return _blossom_reference(edges, maxcardinality)


def _blossom_reference(
    edges: Sequence[tuple[int, int, float]], maxcardinality: bool = False
) -> list[int]:
    """Pure-Python blossom loops (the differential-testing reference)."""
    if not edges:
        return []
    nedge = len(edges)
    nvertex = 0
    for (i, j, w) in edges:
        if i < 0 or j < 0 or i == j:
            raise MatchingError(f"invalid edge ({i}, {j})")
        if i >= nvertex:
            nvertex = i + 1
        if j >= nvertex:
            nvertex = j + 1

    maxweight = max(0, max(w for (_i, _j, w) in edges))

    # Edge endpoints: endpoint[p] is the vertex at endpoint p, where edge k
    # has endpoints 2k (its i side) and 2k+1 (its j side).
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v]: remote endpoints of edges incident to v.
    neighbend: list[list[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    mate = nvertex * [-1]
    # label: 0 free, 1 S-vertex/blossom, 2 T-vertex/blossom (5 marks scanning)
    label = (2 * nvertex) * [0]
    labelend = (2 * nvertex) * [-1]
    inblossom = list(range(nvertex))
    blossomparent = (2 * nvertex) * [-1]
    blossombase = list(range(nvertex)) + nvertex * [-1]
    blossomchilds: list[list[int] | None] = (2 * nvertex) * [None]
    blossomendps: list[list[int] | None] = (2 * nvertex) * [None]
    bestedge = (2 * nvertex) * [-1]
    blossombestedges: list[list[int] | None] = (2 * nvertex) * [None]
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar = nvertex * [maxweight] + nvertex * [0]
    allowedge = nedge * [False]
    queue: list[int] = []

    def slack(k: int) -> float:
        (i, j, wt) = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:  # type: ignore[union-attr]
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        assert label[w] == 0 and label[b] == 0
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            queue.extend(blossom_leaves(b))
        elif t == 2:
            base = blossombase[b]
            assert mate[base] >= 0
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w to find a common ancestor (new blossom base)."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            assert label[b] == 1
            path.append(b)
            label[b] = 5
            assert labelend[b] == mate[blossombase[b]]
            if labelend[b] == -1:
                v = -1
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                assert label[b] == 2
                assert labelend[b] >= 0
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Construct a new blossom with the given base through edge k."""
        (v, w, _wt) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            assert label[bv] == 2 or (
                label[bv] == 1 and labelend[bv] == mate[blossombase[bv]]
            )
            assert labelend[bv] >= 0
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            assert label[bw] == 2 or (
                label[bw] == 1 and labelend[bw] == mate[blossombase[bw]]
            )
            assert labelend[bw] >= 0
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        assert label[bb] == 1
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for v in blossom_leaves(b):
            if label[inblossom[v]] == 2:
                queue.append(v)
            inblossom[v] = b
        # Recompute best-edge lists of the new blossom.
        bestedgeto = (2 * nvertex) * [-1]
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]] for leaf in blossom_leaves(bv)
                ]
            else:
                nblists = [blossombestedges[bv]]  # type: ignore[list-item]
            for nblist in nblists:
                for k2 in nblist:
                    (i, j, _wt2) = edges[k2]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (bestedgeto[bj] == -1 or slack(k2) < slack(bestedgeto[bj]))
                    ):
                        bestedgeto[bj] = k2
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [k2 for k2 in bestedgeto if k2 != -1]
        bestedge[b] = -1
        for k2 in blossombestedges[b]:  # type: ignore[union-attr]
            if bestedge[b] == -1 or slack(k2) < slack(bestedge[b]):
                bestedge[b] = k2

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo a blossom whose dual variable reached zero."""
        for s in blossomchilds[b]:  # type: ignore[union-attr]
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for v in blossom_leaves(s):
                    inblossom[v] = s
        if (not endstage) and label[b] == 2:
            assert labelend[b] >= 0
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)  # type: ignore[union-attr]
            if j & 1:
                j -= len(blossomchilds[b])  # type: ignore[arg-type]
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]  # type: ignore[index]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True  # type: ignore[index]
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]  # type: ignore[index]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:  # type: ignore[index]
                bv = blossomchilds[b][j]  # type: ignore[index]
                if label[bv] == 1:
                    j += jstep
                    continue
                for v in blossom_leaves(bv):
                    if label[v] != 0:
                        break
                if label[v] != 0:
                    assert label[v] == 2
                    assert inblossom[v] == bv
                    label[v] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(v, 2, labelend[v])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges along the path through blossom b to v."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)  # type: ignore[union-attr]
        if i & 1:
            j -= len(blossomchilds[b])  # type: ignore[arg-type]
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]  # type: ignore[index]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]  # type: ignore[index]
        blossombase[b] = blossombase[blossomchilds[b][0]]  # type: ignore[index]
        assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        """Flip matching along the augmenting path through edge k."""
        (v, w, _wt) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                assert label[bs] == 1
                assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                assert label[bt] == 2
                assert labelend[bt] >= 0
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                assert blossombase[bt] == t
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # Main loop: one stage per augmentation.
    for _t in range(nvertex):
        label[:] = (2 * nvertex) * [0]
        bestedge[:] = (2 * nvertex) * [-1]
        for i in range(nvertex, 2 * nvertex):
            blossombestedges[i] = None
        allowedge[:] = nedge * [False]
        del queue[:]
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            assert label[inblossom[w]] == 2
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # No augmenting path found; adjust dual variables.
            deltatype = -1
            delta = deltaedge = deltablossom = None
            if not maxcardinality:
                deltatype = 1
                delta = min(dualvar[:nvertex])
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            for b in range(2 * nvertex):
                if blossomparent[b] == -1 and label[b] == 1 and bestedge[b] != -1:
                    kslack = slack(bestedge[b])
                    d = kslack / 2
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            for b in range(nvertex, 2 * nvertex):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                # No further progress possible (maxcardinality deadlock).
                assert maxcardinality
                deltatype = 1
                delta = max(0, min(dualvar[:nvertex]))

            for v in range(nvertex):
                lab = label[inblossom[v]]
                if lab == 1:
                    dualvar[v] -= delta
                elif lab == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break
            elif deltatype == 2:
                allowedge[deltaedge] = True
                (i, j, _wt) = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                assert label[inblossom[i]] == 1
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                (i, j, _wt) = edges[deltaedge]
                assert label[inblossom[i]] == 1
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # At the end of a stage, expand all S-blossoms with zero dual.
        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    for v in range(nvertex):
        if mate[v] >= 0:
            mate[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert mate[v] == -1 or mate[mate[v]] == v
    return mate


def _blossom_array(
    ei: np.ndarray, ej: np.ndarray, ew: np.ndarray, maxcardinality: bool = False
) -> list[int]:
    """Adjacency-array blossom engine, bit-identical to the reference.

    The algorithm, its stage structure and every tie-break are those of
    :func:`_blossom_reference`; only the *scans* are bulk numpy:

    * the inner queue drain precomputes the popped vertex's full slack
      vector (the duals are constant while the queue drains — they change
      only in the delta phase between drains) and handles non-tight edges
      as vectorised best-edge updates, falling back to the scalar protocol
      body only at "hot" positions where an edge is (or may become)
      allowed;
    * ``add_blossom``'s best-edge recomputation — the dominant cost on
      dense graphs, O(leaves x degree) slack evaluations — becomes one
      gather + a stable lexsort picking the *first* minimum-slack edge per
      target blossom, exactly the sequential strict-``<`` semantics;
    * the dual-adjustment delta search evaluates each delta type as a
      masked argmin (first minimum wins, matching the ascending-index
      strict-``<`` scan).

    Scalar-rare paths (label assignment, blossom expansion, augmenting)
    keep the reference control flow verbatim, operating on the shared
    numpy state arrays.
    """
    nedge = int(ei.size)
    if nedge == 0:
        return []
    if (ei < 0).any() or (ej < 0).any() or (ei == ej).any():
        bad = int(np.flatnonzero((ei < 0) | (ej < 0) | (ei == ej))[0])
        raise MatchingError(f"invalid edge ({int(ei[bad])}, {int(ej[bad])})")
    nvertex = int(max(ei.max(), ej.max())) + 1
    maxweight = max(0.0, float(ew.max()))

    # endpoint[p]: vertex at endpoint p; edge k owns endpoints 2k and 2k+1.
    endpoint = np.empty(2 * nedge, dtype=np.int64)
    endpoint[0::2] = ei
    endpoint[1::2] = ej
    # Per-vertex remote-endpoint lists in ascending edge order — the same
    # order the reference builds neighbend[v] in.
    p_all = np.arange(2 * nedge, dtype=np.int64)
    owner = endpoint[p_all ^ 1]
    sorted_p = p_all[np.argsort(owner, kind="stable")]
    counts = np.bincount(owner, minlength=nvertex)
    starts = np.zeros(nvertex + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    adj_ps = [sorted_p[starts[v]: starts[v + 1]] for v in range(nvertex)]
    adj_ks = [p >> 1 for p in adj_ps]
    adj_ws = [endpoint[p] for p in adj_ps]

    mate = nvertex * [-1]
    label = np.zeros(2 * nvertex, dtype=np.int64)
    labelend = np.full(2 * nvertex, -1, dtype=np.int64)
    inblossom = np.arange(nvertex, dtype=np.int64)
    blossomparent = np.full(2 * nvertex, -1, dtype=np.int64)
    blossombase = np.empty(2 * nvertex, dtype=np.int64)
    blossombase[:nvertex] = np.arange(nvertex)
    blossombase[nvertex:] = -1
    blossomchilds: list[list[int] | None] = (2 * nvertex) * [None]
    blossomendps: list[list[int] | None] = (2 * nvertex) * [None]
    bestedge = np.full(2 * nvertex, -1, dtype=np.int64)
    blossombestedges: list[np.ndarray | None] = (2 * nvertex) * [None]
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar = np.empty(2 * nvertex, dtype=np.float64)
    dualvar[:nvertex] = maxweight
    dualvar[nvertex:] = 0.0
    allowedge = np.zeros(nedge, dtype=bool)
    queue: list[int] = []
    # Parallel edges force the order-preserving scalar best-edge path in
    # scan_segment; simple graphs (every caller here) never pay for it.
    pair_key = np.minimum(ei, ej) * np.int64(nvertex) + np.maximum(ei, ej)
    has_parallel = bool(np.unique(pair_key).size != nedge)

    def slack(k: int) -> float:
        return dualvar[ei[k]] + dualvar[ej[k]] - 2.0 * ew[k]

    def edge_slacks(ks: np.ndarray) -> np.ndarray:
        return dualvar[ei[ks]] + dualvar[ej[ks]] - 2.0 * ew[ks]

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:  # type: ignore[union-attr]
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = int(inblossom[w])
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            if b < nvertex:
                queue.append(b)
            else:
                queue.extend(blossom_leaves(b))
        elif t == 2:
            base = int(blossombase[b])
            assign_label(int(endpoint[mate[base]]), 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        path = []
        base = -1
        while v != -1 or w != -1:
            b = int(inblossom[v])
            if label[b] & 4:
                base = int(blossombase[b])
                break
            path.append(b)
            label[b] = 5
            if labelend[b] == -1:
                v = -1
            else:
                v = int(endpoint[labelend[b]])
                b = int(inblossom[v])
                v = int(endpoint[labelend[b]])
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        v, w = int(ei[k]), int(ej[k])
        bb = int(inblossom[base])
        bv = int(inblossom[v])
        bw = int(inblossom[w])
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(int(labelend[bv]))
            v = int(endpoint[labelend[bv]])
            bv = int(inblossom[v])
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(int(labelend[bw]) ^ 1)
            w = int(endpoint[labelend[bw]])
            bw = int(inblossom[w])
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0.0
        leaves = np.fromiter(blossom_leaves(b), dtype=np.int64)
        queue.extend(leaves[label[inblossom[leaves]] == 2].tolist())
        inblossom[leaves] = b
        # Recompute best-edge lists of the new blossom: for every edge from
        # inside the blossom to an S-blossom outside it, keep the first
        # minimum-slack edge per target (the reference's strict-< updates).
        bestedgeto = np.full(2 * nvertex, -1, dtype=np.int64)
        for bv in path:
            if blossombestedges[bv] is None:
                nb = np.concatenate(
                    [adj_ks[leaf] for leaf in blossom_leaves(bv)]
                )
            else:
                nb = blossombestedges[bv]
            jj = ej[nb]
            jj = np.where(inblossom[jj] == b, ei[nb], jj)
            bj = inblossom[jj]
            ok = (bj != b) & (label[bj] == 1)
            if ok.any():
                nbo = nb[ok]
                bjo = bj[ok]
                sl = edge_slacks(nbo)
                # first index attaining the per-target minimum slack
                order = np.lexsort((sl, bjo))
                firsts = np.ones(order.size, dtype=bool)
                sb = bjo[order]
                firsts[1:] = sb[1:] != sb[:-1]
                sel = order[firsts]
                tb = bjo[sel]
                tk = nbo[sel]
                ts = sl[sel]
                cur = bestedgeto[tb]
                has = cur != -1
                cur_sl = np.full(tb.size, np.inf)
                if has.any():
                    cur_sl[has] = edge_slacks(cur[has])
                upd = ts < cur_sl
                bestedgeto[tb[upd]] = tk[upd]
            blossombestedges[bv] = None
            bestedge[bv] = -1
        belist = bestedgeto[bestedgeto != -1]
        blossombestedges[b] = belist
        if belist.size:
            bestedge[b] = belist[int(np.argmin(edge_slacks(belist)))]
        else:
            bestedge[b] = -1

    def expand_blossom(b: int, endstage: bool) -> None:
        for s in blossomchilds[b]:  # type: ignore[union-attr]
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for v in blossom_leaves(s):
                    inblossom[v] = s
        if (not endstage) and label[b] == 2:
            entrychild = int(inblossom[endpoint[labelend[b] ^ 1]])
            j = blossomchilds[b].index(entrychild)  # type: ignore[union-attr]
            if j & 1:
                j -= len(blossomchilds[b])  # type: ignore[arg-type]
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = int(labelend[b])
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]  # type: ignore[index]
                ] = 0
                assign_label(int(endpoint[p ^ 1]), 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True  # type: ignore[index]
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]  # type: ignore[index]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:  # type: ignore[index]
                bv = blossomchilds[b][j]  # type: ignore[index]
                if label[bv] == 1:
                    j += jstep
                    continue
                for v in blossom_leaves(bv):
                    if label[v] != 0:
                        break
                if label[v] != 0:
                    label[v] = 0
                    label[endpoint[mate[int(blossombase[bv])]]] = 0
                    assign_label(v, 2, int(labelend[v]))
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        t = v
        while blossomparent[t] != b:
            t = int(blossomparent[t])
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)  # type: ignore[union-attr]
        if i & 1:
            j -= len(blossomchilds[b])  # type: ignore[arg-type]
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, int(endpoint[p]))
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, int(endpoint[p ^ 1]))
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]  # type: ignore[index]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]  # type: ignore[index]
        blossombase[b] = blossombase[blossomchilds[b][0]]  # type: ignore[index]

    def augment_matching(k: int) -> None:
        v, w = int(ei[k]), int(ej[k])
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = int(inblossom[s])
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break
                t = int(endpoint[labelend[bs]])
                bt = int(inblossom[t])
                s = int(endpoint[labelend[bt]])
                j = int(endpoint[labelend[bt] ^ 1])
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = int(labelend[bt])
                p = int(labelend[bt]) ^ 1

    def scan_segment(bv: int, k_arr, w_arr, s_arr) -> None:
        """Best-edge updates for a stretch of non-tight edges of one pop.

        Mirrors the reference's per-edge ``elif`` chain: edges to S-blossoms
        update ``bestedge[inblossom[v]]``, edges to free unlabelled vertices
        update ``bestedge[w]`` — first minimum wins within the stretch,
        strict-< against the current best.
        """
        if w_arr.size < 24 or has_parallel:
            # Short stretch (or parallel edges): the sequential updates are
            # cheaper than the numpy constant factor — same decisions.
            for x in range(w_arr.size):
                w2 = int(w_arr[x])
                bw2 = int(inblossom[w2])
                if label[bw2] == 1:
                    if bw2 != bv:
                        be = int(bestedge[bv])
                        if be == -1 or s_arr[x] < slack(be):
                            bestedge[bv] = int(k_arr[x])
                elif label[w2] == 0:
                    be = int(bestedge[w2])
                    if be == -1 or s_arr[x] < slack(be):
                        bestedge[w2] = int(k_arr[x])
            return
        bw = inblossom[w_arr]
        lab_bw = label[bw]
        is_s = lab_bw == 1
        s1 = np.where(is_s & (bw != bv), s_arr, np.inf)
        a = int(s1.argmin())
        if s1[a] != np.inf:
            be = int(bestedge[bv])
            if be == -1 or s1[a] < slack(be):
                bestedge[bv] = int(k_arr[a])
        m2 = ~is_s & (label[w_arr] == 0)
        if m2.any():
            wm = w_arr[m2]
            km = k_arr[m2]
            sm = s_arr[m2]
            cur = bestedge[wm]
            cur_sl = np.where(cur != -1, dualvar[ei[cur]] + dualvar[ej[cur]] - 2.0 * ew[cur], np.inf)
            upd = sm < cur_sl
            bestedge[wm[upd]] = km[upd]

    # Main loop: one stage per augmentation.
    for _t in range(nvertex):
        label[:] = 0
        bestedge[:] = -1
        blossombestedges[nvertex:] = nvertex * [None]
        allowedge[:] = False
        del queue[:]
        mate_arr = np.asarray(mate, dtype=np.int64)
        for v in np.flatnonzero(mate_arr == -1).tolist():
            if label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = int(queue.pop())
                ps = adj_ps[v]
                ks = adj_ks[v]
                ws = adj_ws[v]
                # Duals are frozen during the drain, so one gather gives
                # every slack this scan will ever need.
                sl = edge_slacks(ks)
                hot = np.flatnonzero((sl <= 0) | allowedge[ks])
                start = 0
                for hi in hot.tolist():
                    if start < hi:
                        scan_segment(
                            int(inblossom[v]), ks[start:hi], ws[start:hi], sl[start:hi]
                        )
                    p = int(ps[hi])
                    k = int(ks[hi])
                    w = int(ws[hi])
                    start = hi + 1
                    if inblossom[v] == inblossom[w]:
                        continue
                    if not allowedge[k] and sl[hi] <= 0:
                        allowedge[k] = True
                    if allowedge[k]:
                        lab_bw = int(label[inblossom[w]])
                        if lab_bw == 0:
                            assign_label(w, 2, p ^ 1)
                        elif lab_bw == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = int(inblossom[v])
                        if bestedge[b] == -1 or sl[hi] < slack(int(bestedge[b])):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or sl[hi] < slack(int(bestedge[w])):
                            bestedge[w] = k
                if not augmented and start < ps.size:
                    scan_segment(
                        int(inblossom[v]), ks[start:], ws[start:], sl[start:]
                    )
            if augmented:
                break

            # No augmenting path found; adjust dual variables.  Each delta
            # type is a masked first-argmin, composed with strict-< in the
            # reference's type order.
            deltatype = -1
            delta = np.inf
            deltaedge = -1
            deltablossom = -1
            if not maxcardinality:
                deltatype = 1
                delta = dualvar[:nvertex].min()
            inb_lab = label[inblossom]
            cand_v = np.flatnonzero((inb_lab == 0) & (bestedge[:nvertex] != -1))
            if cand_v.size:
                be = bestedge[cand_v]
                d = edge_slacks(be)
                a = int(np.argmin(d))
                if deltatype == -1 or d[a] < delta:
                    delta = d[a]
                    deltatype = 2
                    deltaedge = int(be[a])
            cand_b = np.flatnonzero(
                (blossomparent == -1) & (label == 1) & (bestedge != -1)
            )
            if cand_b.size:
                be = bestedge[cand_b]
                d = edge_slacks(be) / 2
                a = int(np.argmin(d))
                if deltatype == -1 or d[a] < delta:
                    delta = d[a]
                    deltatype = 3
                    deltaedge = int(be[a])
            cand_t4 = np.flatnonzero(
                (blossombase[nvertex:] >= 0)
                & (blossomparent[nvertex:] == -1)
                & (label[nvertex:] == 2)
            )
            if cand_t4.size:
                d = dualvar[nvertex + cand_t4]
                a = int(np.argmin(d))
                if deltatype == -1 or d[a] < delta:
                    delta = d[a]
                    deltatype = 4
                    deltablossom = int(nvertex + cand_t4[a])
            if deltatype == -1:
                # No further progress possible (maxcardinality deadlock).
                deltatype = 1
                delta = max(0.0, float(dualvar[:nvertex].min()))

            vslice = dualvar[:nvertex]
            vslice[inb_lab == 1] -= delta
            vslice[inb_lab == 2] += delta
            top = (blossombase[nvertex:] >= 0) & (blossomparent[nvertex:] == -1)
            bslice = dualvar[nvertex:]
            blab = label[nvertex:]
            bslice[top & (blab == 1)] += delta
            bslice[top & (blab == 2)] -= delta

            if deltatype == 1:
                break
            elif deltatype == 2:
                allowedge[deltaedge] = True
                i = int(ei[deltaedge])
                if label[inblossom[i]] == 0:
                    i = int(ej[deltaedge])
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                queue.append(int(ei[deltaedge]))
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # At the end of a stage, expand all S-blossoms with zero dual.
        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    for v in range(nvertex):
        if mate[v] >= 0:
            mate[v] = int(endpoint[mate[v]])
    for v in range(nvertex):
        assert mate[v] == -1 or mate[mate[v]] == v
    return mate


def _pairs_from_mate(mate: Sequence[int]) -> list[tuple[int, int]]:
    return [(v, m) for v, m in enumerate(mate) if m > v]


def max_weight_perfect_matching(weights: np.ndarray) -> list[tuple[int, int]]:
    """Maximum-weight perfect matching of a complete weighted graph.

    Args:
        weights: symmetric ``(n, n)`` matrix (n even); the diagonal is
            ignored.  All pairs are considered adjacent (weight may be 0),
            so a perfect matching always exists.

    Returns:
        ``n/2`` pairs ``(i, j)`` with ``i < j`` covering every vertex.
    """
    w = np.asarray(weights, dtype=float)
    n = w.shape[0]
    if w.ndim != 2 or w.shape[1] != n:
        raise MatchingError("weights must be a square matrix")
    if n % 2 != 0:
        raise MatchingError(f"perfect matching needs an even vertex count, got {n}")
    if n == 0:
        return []
    if not np.allclose(w, w.T):
        raise MatchingError("weights must be symmetric")
    if n >= _ARRAY_MIN_VERTICES:
        # Feed the complete graph to the array engine directly — same edge
        # order as the tuple construction below (row-major upper triangle).
        iu, ju = np.triu_indices(n, k=1)
        mate = _blossom_array(
            iu.astype(np.int64), ju.astype(np.int64),
            w[iu, ju].astype(np.float64), maxcardinality=True,
        )
    else:
        edges = [(i, j, float(w[i, j])) for i in range(n) for j in range(i + 1, n)]
        mate = max_weight_matching(edges, maxcardinality=True)
    pairs = _pairs_from_mate(mate)
    if len(pairs) != n // 2:
        raise MatchingError("blossom algorithm failed to produce a perfect matching")
    return pairs


def greedy_matching(weights: np.ndarray) -> list[tuple[int, int]]:
    """Greedy O(n^2 log n) perfect matching: repeatedly take the heaviest pair.

    Used by the matching ablation (bench E16) and as a fast fallback; gives
    at least half the optimal weight.
    """
    w = np.asarray(weights, dtype=float)
    n = w.shape[0]
    if n % 2 != 0:
        raise MatchingError(f"perfect matching needs an even vertex count, got {n}")
    iu, ju = np.triu_indices(n, k=1)
    order = np.argsort(-w[iu, ju], kind="stable")
    taken = np.zeros(n, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for idx in order:
        i, j = int(iu[idx]), int(ju[idx])
        if not taken[i] and not taken[j]:
            taken[i] = taken[j] = True
            pairs.append((i, j))
            if len(pairs) == n // 2:
                break
    return pairs


def matching_weight(weights: np.ndarray, pairs: Iterable[tuple[int, int]]) -> float:
    """Total weight of a matching under *weights*."""
    w = np.asarray(weights, dtype=float)
    return float(sum(w[i, j] for i, j in pairs))
