"""Maximum-weight (perfect) matching on complete weighted graphs.

The thread-mapping algorithm (paper Sec. IV-B) models threads as vertices and
communication amounts as edge weights, then extracts the pairing of maximum
total communication — the *maximum weight perfect matching* problem, solvable
in polynomial time by Edmonds' blossom algorithm [15].

:func:`max_weight_matching` below is a from-scratch implementation of the
classic O(n^3) formulation by Galil ("Efficient algorithms for finding
maximum matching in graphs", 1986), following the well-known primal-dual
staging (the same formulation underlying ``networkx``'s implementation, which
our tests cross-validate against).  :func:`max_weight_perfect_matching`
specialises it to complete graphs with an even number of vertices, where a
perfect matching always exists and maximum-cardinality mode yields it.

A cheap O(n^2 log n) :func:`greedy_matching` is provided for the ablation
study (bench E16) and as a fallback for very large thread counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import MatchingError

__all__ = [
    "greedy_matching",
    "matching_weight",
    "max_weight_matching",
    "max_weight_perfect_matching",
]


def max_weight_matching(
    edges: Sequence[tuple[int, int, float]], maxcardinality: bool = False
) -> list[int]:
    """Maximum-weight matching of a general graph (blossom algorithm).

    Args:
        edges: ``(i, j, weight)`` triples with ``i != j``; vertices are the
            integers appearing in the triples (dense ids recommended).
        maxcardinality: if True, only maximum-cardinality matchings are
            considered (among them, the heaviest is returned).

    Returns:
        ``mate`` array: ``mate[v]`` is the vertex matched to *v*, or -1.
    """
    if not edges:
        return []
    nedge = len(edges)
    nvertex = 0
    for (i, j, w) in edges:
        if i < 0 or j < 0 or i == j:
            raise MatchingError(f"invalid edge ({i}, {j})")
        if i >= nvertex:
            nvertex = i + 1
        if j >= nvertex:
            nvertex = j + 1

    maxweight = max(0, max(w for (_i, _j, w) in edges))

    # Edge endpoints: endpoint[p] is the vertex at endpoint p, where edge k
    # has endpoints 2k (its i side) and 2k+1 (its j side).
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v]: remote endpoints of edges incident to v.
    neighbend: list[list[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    mate = nvertex * [-1]
    # label: 0 free, 1 S-vertex/blossom, 2 T-vertex/blossom (5 marks scanning)
    label = (2 * nvertex) * [0]
    labelend = (2 * nvertex) * [-1]
    inblossom = list(range(nvertex))
    blossomparent = (2 * nvertex) * [-1]
    blossombase = list(range(nvertex)) + nvertex * [-1]
    blossomchilds: list[list[int] | None] = (2 * nvertex) * [None]
    blossomendps: list[list[int] | None] = (2 * nvertex) * [None]
    bestedge = (2 * nvertex) * [-1]
    blossombestedges: list[list[int] | None] = (2 * nvertex) * [None]
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar = nvertex * [maxweight] + nvertex * [0]
    allowedge = nedge * [False]
    queue: list[int] = []

    def slack(k: int) -> float:
        (i, j, wt) = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:  # type: ignore[union-attr]
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        assert label[w] == 0 and label[b] == 0
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            queue.extend(blossom_leaves(b))
        elif t == 2:
            base = blossombase[b]
            assert mate[base] >= 0
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w to find a common ancestor (new blossom base)."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            assert label[b] == 1
            path.append(b)
            label[b] = 5
            assert labelend[b] == mate[blossombase[b]]
            if labelend[b] == -1:
                v = -1
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                assert label[b] == 2
                assert labelend[b] >= 0
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Construct a new blossom with the given base through edge k."""
        (v, w, _wt) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            assert label[bv] == 2 or (
                label[bv] == 1 and labelend[bv] == mate[blossombase[bv]]
            )
            assert labelend[bv] >= 0
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            assert label[bw] == 2 or (
                label[bw] == 1 and labelend[bw] == mate[blossombase[bw]]
            )
            assert labelend[bw] >= 0
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        assert label[bb] == 1
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for v in blossom_leaves(b):
            if label[inblossom[v]] == 2:
                queue.append(v)
            inblossom[v] = b
        # Recompute best-edge lists of the new blossom.
        bestedgeto = (2 * nvertex) * [-1]
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]] for leaf in blossom_leaves(bv)
                ]
            else:
                nblists = [blossombestedges[bv]]  # type: ignore[list-item]
            for nblist in nblists:
                for k2 in nblist:
                    (i, j, _wt2) = edges[k2]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (bestedgeto[bj] == -1 or slack(k2) < slack(bestedgeto[bj]))
                    ):
                        bestedgeto[bj] = k2
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [k2 for k2 in bestedgeto if k2 != -1]
        bestedge[b] = -1
        for k2 in blossombestedges[b]:  # type: ignore[union-attr]
            if bestedge[b] == -1 or slack(k2) < slack(bestedge[b]):
                bestedge[b] = k2

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo a blossom whose dual variable reached zero."""
        for s in blossomchilds[b]:  # type: ignore[union-attr]
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for v in blossom_leaves(s):
                    inblossom[v] = s
        if (not endstage) and label[b] == 2:
            assert labelend[b] >= 0
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)  # type: ignore[union-attr]
            if j & 1:
                j -= len(blossomchilds[b])  # type: ignore[arg-type]
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]  # type: ignore[index]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True  # type: ignore[index]
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]  # type: ignore[index]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:  # type: ignore[index]
                bv = blossomchilds[b][j]  # type: ignore[index]
                if label[bv] == 1:
                    j += jstep
                    continue
                for v in blossom_leaves(bv):
                    if label[v] != 0:
                        break
                if label[v] != 0:
                    assert label[v] == 2
                    assert inblossom[v] == bv
                    label[v] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(v, 2, labelend[v])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges along the path through blossom b to v."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)  # type: ignore[union-attr]
        if i & 1:
            j -= len(blossomchilds[b])  # type: ignore[arg-type]
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            p = blossomendps[b][j - endptrick] ^ endptrick  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]  # type: ignore[index]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]  # type: ignore[index]
        blossombase[b] = blossombase[blossomchilds[b][0]]  # type: ignore[index]
        assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        """Flip matching along the augmenting path through edge k."""
        (v, w, _wt) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                assert label[bs] == 1
                assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                assert label[bt] == 2
                assert labelend[bt] >= 0
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                assert blossombase[bt] == t
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # Main loop: one stage per augmentation.
    for _t in range(nvertex):
        label[:] = (2 * nvertex) * [0]
        bestedge[:] = (2 * nvertex) * [-1]
        for i in range(nvertex, 2 * nvertex):
            blossombestedges[i] = None
        allowedge[:] = nedge * [False]
        del queue[:]
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            assert label[inblossom[w]] == 2
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # No augmenting path found; adjust dual variables.
            deltatype = -1
            delta = deltaedge = deltablossom = None
            if not maxcardinality:
                deltatype = 1
                delta = min(dualvar[:nvertex])
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            for b in range(2 * nvertex):
                if blossomparent[b] == -1 and label[b] == 1 and bestedge[b] != -1:
                    kslack = slack(bestedge[b])
                    d = kslack / 2
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            for b in range(nvertex, 2 * nvertex):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                # No further progress possible (maxcardinality deadlock).
                assert maxcardinality
                deltatype = 1
                delta = max(0, min(dualvar[:nvertex]))

            for v in range(nvertex):
                lab = label[inblossom[v]]
                if lab == 1:
                    dualvar[v] -= delta
                elif lab == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break
            elif deltatype == 2:
                allowedge[deltaedge] = True
                (i, j, _wt) = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                assert label[inblossom[i]] == 1
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                (i, j, _wt) = edges[deltaedge]
                assert label[inblossom[i]] == 1
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # At the end of a stage, expand all S-blossoms with zero dual.
        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    for v in range(nvertex):
        if mate[v] >= 0:
            mate[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert mate[v] == -1 or mate[mate[v]] == v
    return mate


def _pairs_from_mate(mate: Sequence[int]) -> list[tuple[int, int]]:
    return [(v, m) for v, m in enumerate(mate) if m > v]


def max_weight_perfect_matching(weights: np.ndarray) -> list[tuple[int, int]]:
    """Maximum-weight perfect matching of a complete weighted graph.

    Args:
        weights: symmetric ``(n, n)`` matrix (n even); the diagonal is
            ignored.  All pairs are considered adjacent (weight may be 0),
            so a perfect matching always exists.

    Returns:
        ``n/2`` pairs ``(i, j)`` with ``i < j`` covering every vertex.
    """
    w = np.asarray(weights, dtype=float)
    n = w.shape[0]
    if w.ndim != 2 or w.shape[1] != n:
        raise MatchingError("weights must be a square matrix")
    if n % 2 != 0:
        raise MatchingError(f"perfect matching needs an even vertex count, got {n}")
    if n == 0:
        return []
    if not np.allclose(w, w.T):
        raise MatchingError("weights must be symmetric")
    edges = [(i, j, float(w[i, j])) for i in range(n) for j in range(i + 1, n)]
    mate = max_weight_matching(edges, maxcardinality=True)
    pairs = _pairs_from_mate(mate)
    if len(pairs) != n // 2:
        raise MatchingError("blossom algorithm failed to produce a perfect matching")
    return pairs


def greedy_matching(weights: np.ndarray) -> list[tuple[int, int]]:
    """Greedy O(n^2 log n) perfect matching: repeatedly take the heaviest pair.

    Used by the matching ablation (bench E16) and as a fast fallback; gives
    at least half the optimal weight.
    """
    w = np.asarray(weights, dtype=float)
    n = w.shape[0]
    if n % 2 != 0:
        raise MatchingError(f"perfect matching needs an even vertex count, got {n}")
    iu, ju = np.triu_indices(n, k=1)
    order = np.argsort(-w[iu, ju], kind="stable")
    taken = np.zeros(n, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for idx in order:
        i, j = int(iu[idx]), int(ju[idx])
        if not taken[i] and not taken[j]:
            taken[i] = taken[j] = True
            pairs.append((i, j))
            if len(pairs) == n // 2:
                break
    return pairs


def matching_weight(weights: np.ndarray, pairs: Iterable[tuple[int, int]]) -> float:
    """Total weight of a matching under *weights*."""
    w = np.asarray(weights, dtype=float)
    return float(sum(w[i, j] for i, j in pairs))
