"""The SPCD sharing table (paper Sec. III-B1, Figure 4).

A fixed-size hash table keyed by memory-region id (the faulting address
divided by the detection granularity).  Each entry stores the region id, the
set of threads that faulted on it and the time stamp of each thread's last
access.  As in the paper:

* the size is fixed at construction (default 256,000 elements);
* the hash function is Linux's ``hash_64`` (golden-ratio multiplication);
* on a collision the previous entry is **overwritten** — the paper accepts
  this accuracy loss to keep the fault-path cost constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Linux's GOLDEN_RATIO_64 (include/linux/hash.h since v4.7; v3.2 used the
#: equivalent GOLDEN_RATIO_PRIME_64 multiply — same construction).
GOLDEN_RATIO_64 = 0x61C8864680B583EB
_MASK64 = (1 << 64) - 1

#: Table size used in the paper's evaluation (covers 1 GiB at 4 KiB pages).
DEFAULT_TABLE_SIZE = 256_000


def hash_64(value: int, bits: int = 64) -> int:
    """Linux kernel ``hash_64``: multiply by the golden ratio, keep top bits."""
    if not 0 < bits <= 64:
        raise ConfigurationError("bits must be in (0, 64]")
    return ((value * GOLDEN_RATIO_64) & _MASK64) >> (64 - bits)


@dataclass
class ShareEntry:
    """One sharing record: a region, its sharers and their last-access times."""

    region: int
    #: thread id -> virtual time (ns) of that thread's last fault here
    last_access: dict[int, int] = field(default_factory=dict)

    @property
    def sharers(self) -> list[int]:
        """Thread ids that have faulted on this region."""
        return list(self.last_access)

    @property
    def is_shared(self) -> bool:
        """A region becomes *shared* once two threads have touched it."""
        return len(self.last_access) >= 2

    def touch(self, tid: int, now_ns: int) -> None:
        """Record a fault by *tid* at *now_ns*."""
        self.last_access[tid] = now_ns


class ShareTable:
    """Fixed-size, overwrite-on-collision hash table of :class:`ShareEntry`.

    Attributes:
        size: number of slots (paper: 256,000 — ~18 MiB in the kernel).
        collisions: number of times an entry was overwritten by a different
            region hashing to the same slot.
    """

    def __init__(self, size: int = DEFAULT_TABLE_SIZE) -> None:
        if size <= 0:
            raise ConfigurationError("table size must be positive")
        self.size = size
        self._slots: dict[int, ShareEntry] = {}
        self.collisions = 0
        self.lookups = 0
        self.inserts = 0

    def _slot_of(self, region: int) -> int:
        return hash_64(region) % self.size

    def lookup(self, region: int) -> ShareEntry | None:
        """The entry for *region*, or ``None`` if absent / overwritten."""
        self.lookups += 1
        entry = self._slots.get(self._slot_of(region))
        if entry is not None and entry.region == region:
            return entry
        return None

    def get_or_create(self, region: int) -> ShareEntry:
        """The entry for *region*, creating (and possibly evicting) one."""
        slot = self._slot_of(region)
        entry = self._slots.get(slot)
        if entry is not None and entry.region == region:
            return entry
        if entry is not None:
            self.collisions += 1
        entry = ShareEntry(region=region)
        self._slots[slot] = entry
        self.inserts += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (e.g. when the application exits)."""
        self._slots.clear()

    def __len__(self) -> int:
        return len(self._slots)

    def occupancy(self) -> float:
        """Fraction of slots in use."""
        return len(self._slots) / self.size

    def shared_region_count(self) -> int:
        """Number of currently tracked regions with >= 2 sharers."""
        return sum(1 for e in self._slots.values() if e.is_shared)

    def entries(self) -> list[ShareEntry]:
        """All live entries (inspection/testing)."""
        return list(self._slots.values())
