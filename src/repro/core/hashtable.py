"""The SPCD sharing table (paper Sec. III-B1, Figure 4).

A fixed-size hash table keyed by memory-region id (the faulting address
divided by the detection granularity).  Each entry stores the region id, the
set of threads that faulted on it and the time stamp of each thread's last
access.  As in the paper:

* the size is fixed at construction (default 256,000 elements);
* the hash function is Linux's ``hash_64`` (golden-ratio multiplication);
* on a collision the previous entry is **overwritten** — the paper accepts
  this accuracy loss to keep the fault-path cost constant.

Two implementations share this contract:

* :class:`ShareTable` — dict-of-entries; one Python dict per slot's sharer
  timestamps.  The differential-testing reference engine
  (``REPRO_SLOW_SPCD=1``).
* :class:`ArrayShareTable` — NumPy slot arrays (a region-id vector plus a
  ``(size, n_threads)`` last-access timestamp matrix) with a vectorised
  batch touch path; its ``collisions``/``lookups``/``inserts`` counters are
  bit-identical to the reference under the same fault stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Linux's GOLDEN_RATIO_64 (include/linux/hash.h since v4.7; v3.2 used the
#: equivalent GOLDEN_RATIO_PRIME_64 multiply — same construction).
GOLDEN_RATIO_64 = 0x61C8864680B583EB
_MASK64 = (1 << 64) - 1

#: Table size used in the paper's evaluation (covers 1 GiB at 4 KiB pages).
DEFAULT_TABLE_SIZE = 256_000


def hash_64(value: int, bits: int = 64) -> int:
    """Linux kernel ``hash_64``: multiply by the golden ratio, keep top bits."""
    if not 0 < bits <= 64:
        raise ConfigurationError("bits must be in (0, 64]")
    return ((value * GOLDEN_RATIO_64) & _MASK64) >> (64 - bits)


def hash_64_batch(values: np.ndarray, bits: int = 64) -> np.ndarray:
    """Vectorised :func:`hash_64` over a non-negative int vector (uint64 out)."""
    if not 0 < bits <= 64:
        raise ConfigurationError("bits must be in (0, 64]")
    hashed = np.asarray(values).astype(np.uint64) * np.uint64(GOLDEN_RATIO_64)  # mod 2^64
    return hashed >> np.uint64(64 - bits)


@dataclass
class ShareEntry:
    """One sharing record: a region, its sharers and their last-access times."""

    region: int
    #: thread id -> virtual time (ns) of that thread's last fault here
    last_access: dict[int, int] = field(default_factory=dict)

    @property
    def sharers(self) -> list[int]:
        """Thread ids that have faulted on this region."""
        return list(self.last_access)

    @property
    def is_shared(self) -> bool:
        """A region becomes *shared* once two threads have touched it."""
        return len(self.last_access) >= 2

    def touch(self, tid: int, now_ns: int) -> None:
        """Record a fault by *tid* at *now_ns*."""
        self.last_access[tid] = now_ns


class ShareTable:
    """Fixed-size, overwrite-on-collision hash table of :class:`ShareEntry`.

    Attributes:
        size: number of slots (paper: 256,000 — ~18 MiB in the kernel).
        collisions: number of times an entry was overwritten by a different
            region hashing to the same slot.
    """

    def __init__(self, size: int = DEFAULT_TABLE_SIZE) -> None:
        if size <= 0:
            raise ConfigurationError("table size must be positive")
        self.size = size
        self._slots: dict[int, ShareEntry] = {}
        self.collisions = 0
        self.lookups = 0
        self.inserts = 0

    def _slot_of(self, region: int) -> int:
        return hash_64(region) % self.size

    def lookup(self, region: int) -> ShareEntry | None:
        """The entry for *region*, or ``None`` if absent / overwritten."""
        self.lookups += 1
        entry = self._slots.get(self._slot_of(region))
        if entry is not None and entry.region == region:
            return entry
        return None

    def get_or_create(self, region: int) -> ShareEntry:
        """The entry for *region*, creating (and possibly evicting) one."""
        slot = self._slot_of(region)
        entry = self._slots.get(slot)
        if entry is not None and entry.region == region:
            return entry
        if entry is not None:
            self.collisions += 1
        entry = ShareEntry(region=region)
        self._slots[slot] = entry
        self.inserts += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (e.g. when the application exits)."""
        self._slots.clear()

    def __len__(self) -> int:
        return len(self._slots)

    def occupancy(self) -> float:
        """Fraction of slots in use."""
        return len(self._slots) / self.size

    def shared_region_count(self) -> int:
        """Number of currently tracked regions with >= 2 sharers."""
        return sum(1 for e in self._slots.values() if e.is_shared)

    def entries(self) -> list[ShareEntry]:
        """All live entries (inspection/testing)."""
        return list(self._slots.values())


#: sentinel region id for an empty ArrayShareTable slot (region ids are >= 0)
_EMPTY_REGION = -1

#: batches at or below this size take the scalar replay path: at steady
#: state a thread batch produces only a handful of faults, where the fixed
#: cost of the vectorised pass (hash, np.unique, fancy indexing) exceeds a
#: direct per-fault replay.  Purely a performance knob — both paths are
#: bit-identical, so the cutover never changes results.
_SCALAR_TOUCH_MAX = 12


class ArrayShareTable:
    """Array-backed, overwrite-on-collision sharing table (the fast engine).

    State is two NumPy arrays: a per-slot region id (``-1`` = empty) and a
    ``(size, n_threads)`` last-access matrix storing ``timestamp + 1`` with
    ``0`` as the "never touched" sentinel — the bias keeps the matrix a
    plain ``np.zeros`` allocation, so untouched slots of a paper-sized
    256k-entry table never cost physical memory.

    :meth:`touch_batch` replays a whole fault batch: slots are computed with
    a vectorised ``hash_64``, batch members landing on distinct slots are
    processed in one pass, and the rare members colliding on a slot *within*
    the batch are replayed scalarly in reference order — so ``collisions``
    and ``inserts`` match the dict engine exactly, and the returned
    communication events reproduce the reference engine's per-event matrix
    updates bit for bit.
    """

    def __init__(
        self,
        size: int = DEFAULT_TABLE_SIZE,
        n_threads: int = 1,
        *,
        scalar_touch_max: "int | None" = None,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("table size must be positive")
        if n_threads <= 0:
            raise ConfigurationError("need at least one thread")
        if scalar_touch_max is not None and scalar_touch_max < 0:
            raise ConfigurationError("scalar_touch_max must be >= 0")
        self.size = size
        self.n_threads = n_threads
        #: batch-size cutover below which touch_batch replays scalarly
        #: (``RunSettings.batch_cutover_touch`` when plumbed from settings)
        self.scalar_touch_max = (
            _SCALAR_TOUCH_MAX if scalar_touch_max is None else scalar_touch_max
        )
        self._region = np.full(size, _EMPTY_REGION, dtype=np.int64)
        #: biased timestamps: value v != 0 means last access at time v - 1
        self._last = np.zeros((size, n_threads), dtype=np.int64)
        self.collisions = 0
        self.lookups = 0
        self.inserts = 0

    # -- hashing ------------------------------------------------------------
    def slots_of(self, regions: np.ndarray) -> np.ndarray:
        """Vectorised slot computation (``hash_64(region) % size``)."""
        return (hash_64_batch(regions) % np.uint64(self.size)).astype(np.int64)

    def _slot_of(self, region: int) -> int:
        # hash_64(region) inlined (bits=64): called once per fault.
        return ((region * GOLDEN_RATIO_64) & _MASK64) % self.size

    # -- batch touch (the fault path) -----------------------------------------
    def touch_batch(
        self, regions: np.ndarray, tid: int, now_ns: int, window_ns: int
    ) -> tuple[np.ndarray, int]:
        """Record a fault batch by *tid* at *now_ns*; returns the comm events.

        Returns ``(partners, windowed_out)``: one entry in *partners* per
        communication event (the other thread's id, possibly repeated —
        exactly the events the reference engine would emit one
        ``matrix.add`` at a time), and the count of sharer timestamps that
        fell outside the temporal window.
        """
        regions = np.asarray(regions, dtype=np.int64)
        m = int(regions.size)
        if m == 0:
            return np.empty(0, dtype=np.int64), 0
        if m <= self.scalar_touch_max:
            partners: list[int] = []
            windowed_out = 0
            for region in regions.tolist():
                js, wout = self.touch(region, tid, now_ns, window_ns)
                partners.extend(js)
                windowed_out += wout
            return np.asarray(partners, dtype=np.int64), windowed_out
        return self.touch_batch_at(self.slots_of(regions), regions, tid, now_ns, window_ns)

    def touch_batch_at(
        self,
        slots: np.ndarray,
        regions: np.ndarray,
        tid: int,
        now_ns: int,
        window_ns: int,
    ) -> tuple[np.ndarray, int]:
        """:meth:`touch_batch` with the slot of each region precomputed.

        A sharded deployment (:mod:`repro.serve.session`) hashes regions
        against the *logical* table once, partitions them across shard
        tables, and hands each shard its local slot indices — so the
        partition is a slice of the single-table slot space and collisions,
        inserts and communication events stay bit-identical to an unsharded
        table of the logical size.  *slots* must be what the table's own
        hash would produce for an unsharded table, or any consistent
        partition of it; members colliding on a slot within the batch are
        replayed scalarly in fault order, exactly as in :meth:`touch_batch`.
        """
        regions = np.asarray(regions, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        _, inverse, counts = np.unique(slots, return_inverse=True, return_counts=True)
        dup = counts[inverse] > 1
        if not dup.any():
            return self._touch_distinct(slots, regions, tid, now_ns, window_ns)
        events: list[np.ndarray] = []
        windowed_out = 0
        single = ~dup
        if single.any():
            js, wout = self._touch_distinct(
                slots[single], regions[single], tid, now_ns, window_ns
            )
            events.append(js)
            windowed_out += wout
        # Batch members sharing a slot interact; replay them in fault order.
        for k in np.flatnonzero(dup):
            js, wout = self._touch_one(int(slots[k]), int(regions[k]), tid, now_ns, window_ns)
            events.append(np.asarray(js, dtype=np.int64))
            windowed_out += wout
        return np.concatenate(events), windowed_out

    def _touch_distinct(
        self, slots: np.ndarray, regions: np.ndarray, tid: int, now_ns: int, window_ns: int
    ) -> tuple[np.ndarray, int]:
        """Touch faults whose slots are distinct within the batch."""
        current = self._region[slots]
        match = current == regions
        self.collisions += int(np.count_nonzero((current != _EMPTY_REGION) & ~match))
        partners = np.empty(0, dtype=np.int64)
        windowed_out = 0
        if match.any():
            rows = self._last[slots[match]]
            valid = rows != 0
            valid[:, tid] = False
            in_window = valid & ((now_ns + 1 - rows) <= window_ns)
            partners = np.nonzero(in_window)[1].astype(np.int64)
            windowed_out = int(np.count_nonzero(valid)) - int(partners.size)
        fresh = ~match
        n_fresh = int(np.count_nonzero(fresh))
        if n_fresh:
            fresh_slots = slots[fresh]
            self._region[fresh_slots] = regions[fresh]
            self._last[fresh_slots] = 0
            self.inserts += n_fresh
        self._last[slots, tid] = now_ns + 1
        return partners, windowed_out

    def touch(
        self, region: int, tid: int, now_ns: int, window_ns: int
    ) -> tuple[list[int], int]:
        """Record one fault by *tid* on *region*; returns its comm events.

        The scalar entry point (reference ``get_or_create`` + window-scan
        semantics); the detector's small-batch path calls it per fault.
        """
        return self._touch_one(self._slot_of(region), region, tid, now_ns, window_ns)

    def _touch_one(
        self, slot: int, region: int, tid: int, now_ns: int, window_ns: int
    ) -> tuple[list[int], int]:
        """Scalar replay of one fault (reference ``get_or_create`` semantics)."""
        biased = now_ns + 1
        if self._region[slot] != region:
            if self._region[slot] != _EMPTY_REGION:
                self.collisions += 1
            self._region[slot] = region
            self._last[slot] = 0
            self.inserts += 1
            self._last[slot, tid] = biased
            return [], 0
        partners: list[int] = []
        windowed_out = 0
        for j, stamp in enumerate(self._last[slot].tolist()):
            if stamp == 0 or j == tid:
                continue
            if biased - stamp <= window_ns:
                partners.append(j)
            else:
                windowed_out += 1
        self._last[slot, tid] = biased
        return partners, windowed_out

    # -- dict-engine-compatible inspection API --------------------------------
    def lookup(self, region: int) -> ShareEntry | None:
        """Snapshot of the entry for *region*, or ``None`` (absent/overwritten).

        Unlike the dict engine this returns a materialised copy, not a live
        entry — mutate the table through :meth:`touch_batch`.
        """
        self.lookups += 1
        slot = self._slot_of(region)
        if self._region[slot] != region:
            return None
        return self._entry_at(slot)

    def _entry_at(self, slot: int) -> ShareEntry:
        row = self._last[slot]
        touched = np.flatnonzero(row)
        return ShareEntry(
            region=int(self._region[slot]),
            last_access={int(t): int(row[t]) - 1 for t in touched},
        )

    def clear(self) -> None:
        """Drop every entry (e.g. when the application exits)."""
        self._region[:] = _EMPTY_REGION
        self._last[:] = 0

    def __len__(self) -> int:
        return int(np.count_nonzero(self._region != _EMPTY_REGION))

    def occupancy(self) -> float:
        """Fraction of slots in use."""
        return len(self) / self.size

    def shared_region_count(self) -> int:
        """Number of currently tracked regions with >= 2 sharers."""
        occupied = self._region != _EMPTY_REGION
        if not occupied.any():
            return 0
        return int(np.count_nonzero((self._last[occupied] != 0).sum(axis=1) >= 2))

    def entries(self) -> list[ShareEntry]:
        """All live entries as snapshots (inspection/testing)."""
        return [self._entry_at(int(s)) for s in np.flatnonzero(self._region != _EMPTY_REGION)]
