"""Paper-style tables and figure series.

The benchmark harness prints, for every figure of the paper, the same
series the figure plots: per benchmark, one bar per mapping policy,
normalised to the OS baseline.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.engine.runner import ReplicatedResult, normalized_to

#: policy display order of the paper's figures
POLICY_ORDER = ("os", "random", "oracle", "spcd")


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None
) -> str:
    """Plain fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def figure_series(
    results: Mapping[str, Mapping[str, ReplicatedResult]],
    metric: str,
    *,
    baseline: str = "os",
) -> dict[str, dict[str, float]]:
    """Normalised series for one figure.

    Args:
        results: ``{benchmark: {policy: ReplicatedResult}}``.
        metric: which metric the figure plots.

    Returns:
        ``{benchmark: {policy: value_normalised_to_baseline}}``.
    """
    return {
        bench: normalized_to(dict(per_policy), metric, baseline)
        for bench, per_policy in results.items()
    }


def format_figure_table(
    series: Mapping[str, Mapping[str, float]],
    *,
    title: str,
    policies: Sequence[str] = POLICY_ORDER,
) -> str:
    """Text rendering of one normalised figure (benchmarks x policies)."""
    headers = ["benchmark"] + [p.upper() for p in policies]
    rows = []
    for bench in series:
        row: list[object] = [bench]
        for p in policies:
            row.append(series[bench].get(p, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title)
