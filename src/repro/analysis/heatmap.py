"""Communication-matrix heatmaps without plotting dependencies.

The paper's Figs. 6 and 7 are grayscale heatmaps (darker = more
communication).  We render them as ASCII shade ramps for terminals and as
binary PGM images (viewable anywhere) for files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.commmatrix import CommunicationMatrix

#: light -> dark ramp; darker cells mean more communication, as in the paper
_RAMP = " .:-=+*#%@"


def _as_array(matrix: CommunicationMatrix | np.ndarray) -> np.ndarray:
    if isinstance(matrix, CommunicationMatrix):
        return matrix.matrix
    return np.asarray(matrix, dtype=float)


def heatmap_ascii(matrix: CommunicationMatrix | np.ndarray, *, title: str | None = None) -> str:
    """Render a matrix as an ASCII heatmap string."""
    m = _as_array(matrix)
    peak = m.max()
    norm = m / peak if peak > 0 else m
    lines = []
    if title:
        lines.append(title)
    idx = np.minimum((norm * (len(_RAMP) - 1)).round().astype(int), len(_RAMP) - 1)
    for row in idx:
        lines.append("".join(_RAMP[v] * 2 for v in row))
    return "\n".join(lines)


def heatmap_pgm(
    matrix: CommunicationMatrix | np.ndarray, path: str | Path, *, cell: int = 8
) -> Path:
    """Write the matrix as a binary PGM image (darker = more communication)."""
    m = _as_array(matrix)
    peak = m.max()
    norm = m / peak if peak > 0 else m
    # 255 = white (no communication), 0 = black (max), paper-style.
    gray = (255 * (1.0 - norm)).astype(np.uint8)
    img = np.kron(gray, np.ones((cell, cell), dtype=np.uint8))
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        fh.write(img.tobytes())
    return path


def save_matrix_csv(matrix: CommunicationMatrix | np.ndarray, path: str | Path) -> Path:
    """Write the matrix values as CSV."""
    path = Path(path)
    np.savetxt(path, _as_array(matrix), delimiter=",", fmt="%.6g")
    return path
