"""Result analysis and paper-style reporting."""

from repro.analysis.heatmap import heatmap_ascii, heatmap_pgm, save_matrix_csv
from repro.analysis.report import (
    figure_series,
    format_figure_table,
    format_table,
)

__all__ = [
    "figure_series",
    "format_figure_table",
    "format_table",
    "heatmap_ascii",
    "heatmap_pgm",
    "save_matrix_csv",
]
