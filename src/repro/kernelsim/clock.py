"""Virtual time for the simulation.

All components observe one monotonically advancing clock in nanoseconds.
The execution engine advances it from the time model after every quantum;
periodic kernel threads (:mod:`repro.kernelsim.kthread`) fire off it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonic virtual clock in nanoseconds."""

    def __init__(self, start_ns: int = 0) -> None:
        self._now = int(start_ns)

    @property
    def now_ns(self) -> int:
        """Current virtual time."""
        return self._now

    def advance(self, delta_ns: float) -> int:
        """Move time forward by *delta_ns* (must be non-negative)."""
        if delta_ns < 0:
            raise SimulationError(f"clock cannot go backwards (delta={delta_ns})")
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, t_ns: int) -> int:
        """Jump to absolute time *t_ns* (must not be in the past)."""
        if t_ns < self._now:
            raise SimulationError(f"clock cannot go backwards (to {t_ns} < {self._now})")
        self._now = int(t_ns)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now} ns)"
