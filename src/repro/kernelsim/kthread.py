"""Periodic kernel threads and the timer wheel that drives them.

The SPCD injector runs as a kernel thread waking every 10 ms (paper
Sec. III-B2).  The engine advances virtual time in quanta; after each
advance it asks the wheel to fire every kernel thread whose deadline passed
(possibly several times if a quantum spanned multiple periods).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError


class KernelThread:
    """A callback invoked every *period_ns* of virtual time."""

    def __init__(self, name: str, period_ns: int, callback: Callable[[int], None]) -> None:
        if period_ns <= 0:
            raise ConfigurationError(f"kthread {name!r}: period must be positive")
        self.name = name
        self.period_ns = period_ns
        self.callback = callback
        self.next_fire_ns = period_ns
        self.fire_count = 0
        self.enabled = True

    def fire_due(self, now_ns: int, max_catchup: int = 32) -> int:
        """Run the callback for every period boundary up to *now_ns*.

        At most *max_catchup* invocations are made per call; if the quantum
        jumped far ahead, remaining periods are skipped (like a real kthread
        that oversleeps: it does not replay missed wakeups).  Returns the
        number of invocations.
        """
        fired = 0
        while self.enabled and self.next_fire_ns <= now_ns:
            if fired < max_catchup:
                self.callback(self.next_fire_ns)
                self.fire_count += 1
                fired += 1
            self.next_fire_ns += self.period_ns
        return fired


class TimerWheel:
    """All periodic kernel threads of the simulated kernel."""

    def __init__(self) -> None:
        self._threads: list[KernelThread] = []

    def register(
        self, name: str, period_ns: int, callback: Callable[[int], None]
    ) -> KernelThread:
        """Create and track a new kernel thread."""
        kt = KernelThread(name, period_ns, callback)
        self._threads.append(kt)
        return kt

    def tick(self, now_ns: int) -> int:
        """Fire every due kernel thread; returns total invocations."""
        return sum(kt.fire_due(now_ns) for kt in self._threads)

    def threads(self) -> list[KernelThread]:
        """Registered kernel threads."""
        return list(self._threads)
