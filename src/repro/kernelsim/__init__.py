"""Simulated operating-system substrate.

Provides virtual time, kernel threads with periodic timers (the SPCD
injector runs as one), thread/task state with affinities, the baseline
communication-oblivious scheduler standing in for Linux's CFS, and thread
migration with its costs.
"""

from repro.kernelsim.clock import VirtualClock
from repro.kernelsim.kthread import KernelThread, TimerWheel
from repro.kernelsim.migration import MigrationEngine
from repro.kernelsim.scheduler import CfsLikeScheduler, PinnedScheduler, Scheduler
from repro.kernelsim.task import Task, TaskState

__all__ = [
    "CfsLikeScheduler",
    "KernelThread",
    "MigrationEngine",
    "PinnedScheduler",
    "Scheduler",
    "Task",
    "TaskState",
    "TimerWheel",
    "VirtualClock",
]
