"""Tasks (threads of the parallel application) and their placement state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchedulerError


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Task:
    """One application thread.

    Attributes:
        tid: thread id, dense from 0 (matrix row index in SPCD).
        pu: processing unit currently executing the task.
        affinity: allowed PU set (``None`` = all allowed).
        migrations: times this task has been moved between PUs.
    """

    tid: int
    pu: int
    state: TaskState = TaskState.RUNNABLE
    affinity: frozenset[int] | None = None
    migrations: int = 0
    instructions: int = 0
    vruntime_ns: float = 0.0
    _history: list[tuple[int, int]] = field(default_factory=list, repr=False)

    def set_affinity(self, pus: frozenset[int] | None) -> None:
        """Restrict the task to *pus* (``None`` clears the restriction)."""
        if pus is not None and not pus:
            raise SchedulerError(f"task {self.tid}: empty affinity mask")
        self.affinity = pus

    def can_run_on(self, pu: int) -> bool:
        """Whether the affinity mask allows *pu*."""
        return self.affinity is None or pu in self.affinity

    def move_to(self, pu: int, now_ns: int) -> None:
        """Record a migration to *pu* at time *now_ns*."""
        if not self.can_run_on(pu):
            raise SchedulerError(f"task {self.tid}: pu {pu} not in affinity mask")
        if pu != self.pu:
            self._history.append((now_ns, pu))
            self.pu = pu
            self.migrations += 1

    @property
    def placement_history(self) -> list[tuple[int, int]]:
        """(time, pu) records of every migration."""
        return list(self._history)
