"""Thread migration and its direct costs.

Migrating a thread costs kernel work (dequeue/enqueue, IPI) and a TLB flush
on the destination; the *indirect* cost — refilling caches near the new PU —
emerges naturally in the cache simulator, since the thread's working set
stays behind and is pulled over by coherence misses.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernelsim.scheduler import PinnedScheduler
from repro.mem.tlb import TlbArray
from repro.obs.events import Migration
from repro.obs.recorder import TraceRecorder


class MigrationEngine:
    """Applies mapping decisions to a :class:`PinnedScheduler`."""

    def __init__(
        self,
        scheduler: PinnedScheduler,
        tlbs: TlbArray | None = None,
        *,
        cost_per_move_ns: float = 50_000.0,
        recorder: TraceRecorder | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.tlbs = tlbs
        self.cost_per_move_ns = cost_per_move_ns
        self.recorder = recorder
        self.moves = 0
        #: times a full mapping was applied with at least one actual move
        self.migration_events = 0
        self.cost_ns = 0.0

    def apply_mapping(self, mapping: Sequence[int], now_ns: int) -> int:
        """Re-pin all threads to *mapping*; returns number of threads moved."""
        moved = self.scheduler.repin(mapping, now_ns)
        for tid, pu in moved:
            if self.tlbs is not None:
                self.tlbs.flush_pu(pu)
            self.cost_ns += self.cost_per_move_ns
        self.moves += len(moved)
        if moved:
            self.migration_events += 1
            if self.recorder is not None:
                self.recorder.emit(
                    Migration(
                        now_ns=int(now_ns),
                        n_moved=len(moved),
                        mapping=[int(p) for p in mapping],
                        migration_events=self.migration_events,
                        cost_ns=self.cost_ns,
                    )
                )
        return len(moved)
