"""Thread placement policies at the scheduler level.

Two schedulers matter for the paper's evaluation:

* :class:`CfsLikeScheduler` — the *baseline*.  Linux's CFS balances load but
  is oblivious to communication: with as many threads as hardware contexts
  it spreads one thread per PU in wake-up order (effectively arbitrary with
  respect to the communication pattern) and occasionally migrates threads
  when run-queue weights drift.  We reproduce exactly those properties:
  arbitrary initial placement plus rare communication-oblivious migrations.

* :class:`PinnedScheduler` — fixed thread->PU pinning.  The random and
  oracle mappings use it statically; SPCD uses it and *re-pins* on every
  mapping decision.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SchedulerError
from repro.kernelsim.task import Task
from repro.machine.topology import Machine


class Scheduler(abc.ABC):
    """Owns the tasks of one application and decides where they run."""

    def __init__(self, machine: Machine, n_threads: int) -> None:
        if n_threads <= 0:
            raise SchedulerError("need at least one thread")
        self.machine = machine
        self.n_threads = n_threads
        self.tasks: list[Task] = []

    @abc.abstractmethod
    def initial_placement(self) -> list[int]:
        """PU for each thread at start, indexed by tid."""

    def start(self) -> None:
        """Create the tasks at their initial placement."""
        placement = self.initial_placement()
        if len(placement) != self.n_threads:
            raise SchedulerError("initial placement size mismatch")
        self.tasks = [Task(tid=t, pu=placement[t]) for t in range(self.n_threads)]

    def placement(self) -> np.ndarray:
        """Current thread->PU mapping as an int array indexed by tid."""
        return np.array([task.pu for task in self.tasks], dtype=np.int64)

    def pu_of(self, tid: int) -> int:
        """PU currently running thread *tid*."""
        return self.tasks[tid].pu

    def on_quantum(self, now_ns: int, rng: np.random.Generator) -> list[tuple[int, int]]:
        """Called once per scheduling quantum; returns [(tid, new_pu)] moves."""
        return []

    def migrate(self, tid: int, pu: int, now_ns: int) -> None:
        """Move one thread (used by the mapping mechanism)."""
        if not 0 <= pu < self.machine.n_pus:
            raise SchedulerError(f"pu {pu} out of range")
        self.tasks[tid].move_to(pu, now_ns)

    def total_migrations(self) -> int:
        """Migrations across all tasks."""
        return sum(t.migrations for t in self.tasks)


class PinnedScheduler(Scheduler):
    """Static pinning given an explicit thread->PU mapping."""

    def __init__(
        self, machine: Machine, n_threads: int, mapping: Sequence[int] | Mapping[int, int]
    ) -> None:
        super().__init__(machine, n_threads)
        if isinstance(mapping, Mapping):
            mapping = [mapping[t] for t in range(n_threads)]
        mapping = list(mapping)
        if len(mapping) != n_threads:
            raise SchedulerError(
                f"mapping covers {len(mapping)} threads, expected {n_threads}"
            )
        for pu in mapping:
            if not 0 <= pu < machine.n_pus:
                raise SchedulerError(f"pu {pu} out of range")
        if n_threads <= machine.n_pus and len(set(mapping)) != n_threads:
            raise SchedulerError("mapping assigns two threads to one PU")
        self._mapping = mapping

    def initial_placement(self) -> list[int]:
        return list(self._mapping)

    def repin(self, mapping: Sequence[int], now_ns: int) -> list[tuple[int, int]]:
        """Apply a new full mapping; returns the moves performed."""
        if len(mapping) != self.n_threads:
            raise SchedulerError("mapping size mismatch")
        moves: list[tuple[int, int]] = []
        for tid, pu in enumerate(mapping):
            if self.tasks[tid].pu != pu:
                self.migrate(tid, int(pu), now_ns)
                moves.append((tid, int(pu)))
        self._mapping = [int(p) for p in mapping]
        return moves


class CfsLikeScheduler(Scheduler):
    """Communication-oblivious baseline with occasional rebalancing.

    Attributes:
        shuffle_initial: whether the wake-up order (and hence placement) is
            randomised, as it effectively is for OpenMP teams under CFS.
        rebalance_period_ns: how often the load balancer considers moving.
        migration_rate: probability that a balancing pass swaps one random
            pair of threads (models CFS's sporadic migrations; the paper's
            OS baseline shows exactly this noisy behaviour).
    """

    def __init__(
        self,
        machine: Machine,
        n_threads: int,
        rng: np.random.Generator,
        *,
        shuffle_initial: bool = True,
        rebalance_period_ns: int = 50_000_000,
        migration_rate: float = 0.03,
    ) -> None:
        super().__init__(machine, n_threads)
        self._rng = rng
        self.shuffle_initial = shuffle_initial
        self.rebalance_period_ns = rebalance_period_ns
        self.migration_rate = migration_rate
        self._next_rebalance_ns = rebalance_period_ns

    def initial_placement(self) -> list[int]:
        pus = np.arange(self.machine.n_pus)
        if self.shuffle_initial:
            self._rng.shuffle(pus)
        if self.n_threads <= self.machine.n_pus:
            return [int(p) for p in pus[: self.n_threads]]
        # Oversubscribed: wrap around PUs round-robin.
        return [int(pus[t % self.machine.n_pus]) for t in range(self.n_threads)]

    def on_quantum(self, now_ns: int, rng: np.random.Generator) -> list[tuple[int, int]]:
        """Sporadically swap a random pair of threads (load-balance noise)."""
        moves: list[tuple[int, int]] = []
        if now_ns < self._next_rebalance_ns:
            return moves
        self._next_rebalance_ns = now_ns + self.rebalance_period_ns
        if self.n_threads >= 2 and rng.random() < self.migration_rate:
            a, b = rng.choice(self.n_threads, size=2, replace=False)
            pa, pb = self.tasks[a].pu, self.tasks[b].pu
            self.migrate(int(a), pb, now_ns)
            self.migrate(int(b), pa, now_ns)
            moves.extend([(int(a), pb), (int(b), pa)])
        return moves
