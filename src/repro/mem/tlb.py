"""Per-PU translation lookaside buffers with shootdown.

SPCD must remove the TLB entry of a page whose present bit it clears,
otherwise the hardware would keep translating and no fault would occur
(paper Sec. III-A).  The execution engine's vectorised fast path treats the
present bitmap as authoritative — exactly the state *after* such a shootdown —
while this class provides the full insert/lookup/invalidate semantics for the
per-fault path, the walk-cost accounting and the tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class Tlb:
    """A fully-associative LRU TLB for one processing unit."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigurationError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()  # vpn -> frame
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, vpn: int) -> int | None:
        """Translate *vpn*; returns the frame or ``None`` on a miss."""
        frame = self._entries.get(vpn)
        if frame is None:
            self.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.hits += 1
        return frame

    def insert(self, vpn: int, frame: int) -> None:
        """Install a translation, evicting LRU if full."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            self._entries[vpn] = frame
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = frame

    def insert_batch(
        self, vpns: np.ndarray, frames: np.ndarray, *, assume_unique: bool = False
    ) -> None:
        """Install translations in order, exactly as repeated :meth:`insert`.

        With ``assume_unique`` (distinct VPNs, as the batched fault path
        guarantees) and a batch at least as long as the TLB, only the last
        ``capacity`` pairs can survive the LRU, so the loop is skipped.
        """
        vpn_list = vpns.tolist() if hasattr(vpns, "tolist") else list(vpns)
        frame_list = frames.tolist() if hasattr(frames, "tolist") else list(frames)
        if assume_unique and len(vpn_list) >= self.capacity:
            self._entries.clear()
            start = len(vpn_list) - self.capacity
            for vpn, frame in zip(vpn_list[start:], frame_list[start:]):
                self._entries[vpn] = frame
            return
        for vpn, frame in zip(vpn_list, frame_list):
            self.insert(vpn, frame)

    def invalidate(self, vpn: int) -> bool:
        """Drop the entry for *vpn* if cached; True if it was present."""
        if vpn in self._entries:
            del self._entries[vpn]
            self.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop every entry (full TLB flush, e.g. on migration)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries


class TlbArray:
    """The TLBs of every PU of a machine, with shootdown broadcast."""

    def __init__(self, n_pus: int, capacity: int = 64) -> None:
        if n_pus <= 0:
            raise ConfigurationError("need at least one PU")
        self.tlbs = [Tlb(capacity) for _ in range(n_pus)]
        self.shootdowns = 0

    def __getitem__(self, pu_id: int) -> Tlb:
        return self.tlbs[pu_id]

    def __len__(self) -> int:
        return len(self.tlbs)

    def shootdown(self, vpns: "np.ndarray | Iterable[int]") -> int:
        """Invalidate *vpns* on every PU (inter-processor interrupt model).

        Returns the number of entries actually removed across all TLBs.
        This is what the SPCD injector performs after clearing present bits.
        Accepts an int ndarray directly (the injector's bulk path); per TLB
        the cost is one set intersection over at most ``capacity`` entries
        rather than a Python loop over every shot-down VPN.
        """
        tolist = getattr(vpns, "tolist", None)
        targets = set(tolist()) if tolist is not None else {int(v) for v in vpns}
        removed = 0
        for tlb in self.tlbs:
            hits = targets.intersection(tlb._entries)
            for vpn in hits:
                del tlb._entries[vpn]
            tlb.invalidations += len(hits)
            removed += len(hits)
        self.shootdowns += 1
        return removed

    def flush_pu(self, pu_id: int) -> None:
        """Full flush of one PU's TLB (thread migration cost)."""
        self.tlbs[pu_id].flush()

    def total_hits(self) -> int:
        """Aggregate hit count."""
        return sum(t.hits for t in self.tlbs)

    def total_misses(self) -> int:
        """Aggregate miss count."""
        return sum(t.misses for t in self.tlbs)
