"""Mitosis-style per-node page-table replication.

On a NUMA machine the page-table pages themselves live somewhere; a TLB
miss from the wrong socket walks up to four remote memory references.
Mitosis (PAPERS.md) replicates the page table on every node so walks
resolve locally, paying instead a coherence broadcast on every
page-table mutation.  :class:`ReplicatedPageTable` models exactly that
trade: it *is* a :class:`~repro.mem.pagetable.PageTable` (the primary),
plus per-node replica arrays kept coherent by broadcasting every batch
of mutated VPNs.

Coherence rules (pinned by the small-model check in
:mod:`repro.check.replica` and DESIGN.md §14):

* every mutation of translation state — ``map_page`` / ``map_pages``
  (fault path), ``unmap_page`` (migration), ``clear_present`` (SPCD
  injection), ``restore_present`` / ``restore_present_batch`` (fault
  resolution) — broadcasts the touched VPNs to every replica *in the
  same operation* (the model analogue of Mitosis' eager pvops hooks);
* accessed/dirty bits are deliberately **not** replicated: they are
  per-walk metadata, harvested from the primary only (Mitosis likewise
  treats A/D as reconcilable);
* broadcasts are batched: one per mutation call, charging a fixed
  per-replica cost plus a per-entry cost into
  :attr:`replication_cost_ns` (virtual time, folded into the SPCD
  mapping-overhead bucket).

Replicas start **inactive** — an inactive replicated table is
bit-identical to a plain :class:`PageTable` in behaviour, counters and
cost (the differential parity suite pins this).  A
:class:`~repro.placement.decision.PlacementDecision` with
``replicate_pt=True`` activates them mid-run via :meth:`activate`,
copying the current page-table pages to every node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.address import N_LEVELS
from repro.mem.pagetable import PageTable

__all__ = ["PtReplica", "ReplicatedPageTable"]


@dataclass
class PtReplica:
    """One node's replica of the translation-relevant PTE arrays."""

    node: int
    present: np.ndarray
    populated: np.ndarray
    frame: np.ndarray
    home_node: np.ndarray


class ReplicatedPageTable(PageTable):
    """A page table that can keep coherent per-node replicas (Mitosis).

    Attributes:
        n_nodes: NUMA nodes (one replica each once active).
        update_cost_ns: virtual cost per replicated PTE update.
        broadcast_cost_ns: fixed virtual cost per replica per batched
            broadcast (the IPI/pvop dispatch).
        page_copy_cost_ns: virtual cost of copying one page-table page
            to one node at activation.
    """

    def __init__(
        self,
        capacity: int,
        n_nodes: int,
        *,
        update_cost_ns: float = 40.0,
        broadcast_cost_ns: float = 400.0,
        page_copy_cost_ns: float = 950.0,
        broadcast_present: bool = True,
    ) -> None:
        if n_nodes <= 0:
            raise ConfigurationError("need at least one NUMA node to replicate over")
        super().__init__(capacity)
        self.n_nodes = n_nodes
        self.update_cost_ns = update_cost_ns
        self.broadcast_cost_ns = broadcast_cost_ns
        self.page_copy_cost_ns = page_copy_cost_ns
        #: negative control for the model check: with ``False`` the
        #: present-bit half of every broadcast is dropped — the replica
        #: bug the coherence check must be able to catch (same pattern as
        #: ``inject_noshoot`` in :mod:`repro.check.interleave`).
        self.broadcast_present = broadcast_present
        self.active = False
        self.replicas: "list[PtReplica]" = []
        self.replica_updates = 0
        self.replication_cost_ns = 0.0

    # -- activation ---------------------------------------------------------
    def activate(self) -> float:
        """Build one replica per node from the primary; returns the cost.

        Activation copies every page-table directory page to every node
        (Mitosis' initial replication pass); the cost lands in
        :attr:`replication_cost_ns` and is also returned so the caller
        can attribute it to the decision that directed it.  Idempotent.
        """
        if self.active:
            return 0.0
        self.replicas = [
            PtReplica(
                node=node,
                present=self._present.copy(),
                populated=self._populated.copy(),
                frame=self._frame.copy(),
                home_node=self._home_node.copy(),
            )
            for node in range(self.n_nodes)
        ]
        self.active = True
        cost = self.n_nodes * self.dir_page_count() * self.page_copy_cost_ns
        self.replication_cost_ns += cost
        return cost

    # -- coherence broadcast ------------------------------------------------
    def _broadcast(self, vpns: "np.ndarray | int") -> None:
        if not self.active:
            return
        vpns = np.atleast_1d(np.asarray(vpns, dtype=np.int64))
        if vpns.size == 0:
            return
        for replica in self.replicas:
            if self.broadcast_present:
                replica.present[vpns] = self._present[vpns]
            replica.populated[vpns] = self._populated[vpns]
            replica.frame[vpns] = self._frame[vpns]
            replica.home_node[vpns] = self._home_node[vpns]
        n = len(self.replicas)
        self.replica_updates += int(vpns.size) * n
        self.replication_cost_ns += n * (
            self.broadcast_cost_ns + int(vpns.size) * self.update_cost_ns
        )

    # -- mutation overrides (primary first, then broadcast) -----------------
    def map_page(self, vpn: int, frame: int, home_node: int) -> None:
        """Install a frame at *vpn* and broadcast the new PTE."""
        super().map_page(vpn, frame, home_node)
        self._broadcast(vpn)

    def map_pages(self, vpns, frames, home_nodes) -> None:
        """Bulk install and broadcast (one batched update per call)."""
        super().map_pages(vpns, frames, home_nodes)
        self._broadcast(vpns)

    def unmap_page(self, vpn: int) -> int:
        """Remove the mapping at *vpn* on the primary and every replica."""
        frame = super().unmap_page(vpn)
        self._broadcast(vpn)
        return frame

    def clear_present(self, vpns) -> int:
        """Clear present bits (SPCD injection) coherently across replicas."""
        cleared = super().clear_present(vpns)
        self._broadcast(vpns)
        return cleared

    def restore_present(self, vpn: int) -> None:
        """Restore a present bit and broadcast it."""
        super().restore_present(vpn)
        self._broadcast(vpn)

    def restore_present_batch(self, vpns) -> None:
        """Bulk present-bit restore with one batched broadcast."""
        super().restore_present_batch(vpns)
        self._broadcast(vpns)

    # -- walks --------------------------------------------------------------
    def charge_walk(self, vpns, node: int) -> float:
        """Walk cost with replicas: every level resolves on the local node."""
        if not self.active:
            return super().charge_walk(vpns, node)
        vpns = np.atleast_1d(np.asarray(vpns, dtype=np.int64))
        if vpns.size == 0:
            return 0.0
        levels = int(vpns.size) * N_LEVELS
        self.walk_levels_local += levels
        cost = levels * self.level_local_ns
        self.walk_cost_ns += cost
        return cost

    # -- invariants ---------------------------------------------------------
    def replica_divergence(self) -> "str | None":
        """First replica/primary mismatch, or ``None`` when coherent.

        Accessed/dirty bits are excluded by design (not replicated); the
        translation-relevant arrays must match element-wise.
        """
        if not self.active:
            return None
        for replica in self.replicas:
            for label, primary, mirrored in (
                ("present", self._present, replica.present),
                ("populated", self._populated, replica.populated),
                ("frame", self._frame, replica.frame),
                ("home_node", self._home_node, replica.home_node),
            ):
                bad = np.flatnonzero(primary != mirrored)
                if bad.size:
                    vpn = int(bad[0])
                    return (
                        f"replica on node {replica.node} diverged at vpn {vpn}: "
                        f"{label} is {mirrored[vpn]!r}, primary says {primary[vpn]!r}"
                    )
        return None

    def replicas_coherent(self) -> bool:
        """True when every active replica matches the primary."""
        return self.replica_divergence() is None

    def consistency_ok(self) -> bool:
        """Structural invariants of the primary *and* replica coherence."""
        return super().consistency_ok() and self.replicas_coherent()
