"""Simulated virtual-memory subsystem.

This is the substrate SPCD hooks into: a 4-level page table with present /
accessed / dirty bits, per-PU TLBs with shootdown, a NUMA-aware physical frame
allocator with first-touch policy, process address spaces, and a page-fault
pipeline with hook points (the simulation equivalent of the paper's modified
Linux fault handler).
"""

from repro.mem.address import (
    VPN_BITS_PER_LEVEL,
    page_offset,
    radix_indices,
    vaddr_of_vpn,
    vpn_of,
)
from repro.mem.addresspace import AddressSpace, Region
from repro.mem.fault import FaultBatch, FaultInfo, FaultKind, FaultPipeline
from repro.mem.pagetable import PageTable, PageTableEntry
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import Tlb, TlbArray

__all__ = [
    "AddressSpace",
    "FaultBatch",
    "FaultInfo",
    "FaultKind",
    "FaultPipeline",
    "FrameAllocator",
    "PageTable",
    "PageTableEntry",
    "Region",
    "Tlb",
    "TlbArray",
    "VPN_BITS_PER_LEVEL",
    "page_offset",
    "radix_indices",
    "vaddr_of_vpn",
    "vpn_of",
]
