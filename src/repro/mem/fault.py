"""Page-fault pipeline with hook points.

This is the simulation analogue of the paper's modified Linux page-fault
handler (their Figure 2): resolve the fault — first-touch allocation or
restoring a present bit SPCD cleared — and then run registered hooks with the
full fault information (faulting thread, address, time, kind).  SPCD's
communication detection registers exactly one such hook.

Two resolution paths exist, mirroring the cache hierarchy's fast/reference
split:

* :meth:`FaultPipeline.handle_fault` resolves one fault at a time — the
  reference path, selected end-to-end by ``REPRO_SLOW_SPCD=1``;
* :meth:`FaultPipeline.handle_fault_batch` resolves every unique faulting
  VPN of one thread batch in a single vectorised pass (bulk present-bit
  restore, bulk frame allocation, bulk mapping and TLB refill) and hands the
  whole fault vector to batch-aware hooks as one :class:`FaultBatch`.

Both paths produce bit-identical page-table state, counters and hook
observations; ``tests/test_spcd_parity.py`` pins the equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

import numpy as np

from repro.errors import PageFaultError
from repro.mem.addresspace import AddressSpace
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray
from repro.units import PAGE_SHIFT


def slow_spcd_requested() -> bool:
    """True when ``REPRO_SLOW_SPCD`` selects the reference fault/SPCD path.

    Delegates to :class:`repro.engine.settings.RunSettings` — the single
    home of every ``REPRO_*`` environment read.  (Imported lazily: the
    engine imports this module.)
    """
    from repro.engine.settings import RunSettings

    return RunSettings.from_env().slow_spcd


class FaultKind(enum.Enum):
    """Why the fault happened."""

    #: First access ever to the page — demand paging / first touch.
    FIRST_TOUCH = "first_touch"
    #: Present bit was cleared by the SPCD injector; page already has a frame.
    INJECTED = "injected"


@dataclass(frozen=True)
class FaultInfo:
    """Everything a fault hook may observe about one page fault."""

    thread_id: int
    pu_id: int
    vaddr: int
    vpn: int
    now_ns: int
    is_write: bool
    kind: FaultKind
    home_node: int


@dataclass(frozen=True)
class FaultBatch:
    """One thread batch's resolved faults, as parallel arrays.

    Faults are ordered by ascending VPN (the order the per-fault reference
    loop resolves them in); ``vaddrs``/``is_write`` carry the first faulting
    access of each unique VPN.
    """

    thread_id: int
    pu_id: int
    now_ns: int
    #: first faulting virtual address per unique VPN
    vaddrs: np.ndarray
    vpns: np.ndarray
    is_write: np.ndarray
    #: True where the fault was SPCD-injected; False means first touch
    injected: np.ndarray
    home_nodes: np.ndarray

    @property
    def n_faults(self) -> int:
        """Number of faults in the batch."""
        return int(self.vpns.size)

    def infos(self) -> list[FaultInfo]:
        """Materialise per-fault :class:`FaultInfo` records (hook compat)."""
        return [
            FaultInfo(
                thread_id=self.thread_id,
                pu_id=self.pu_id,
                vaddr=int(self.vaddrs[i]),
                vpn=int(self.vpns[i]),
                now_ns=self.now_ns,
                is_write=bool(self.is_write[i]),
                kind=FaultKind.INJECTED if self.injected[i] else FaultKind.FIRST_TOUCH,
                home_node=int(self.home_nodes[i]),
            )
            for i in range(self.n_faults)
        ]


FaultHook = Callable[[FaultInfo], None]
FaultBatchHook = Callable[[FaultBatch], None]

#: batches with at most this many faulting accesses resolve scalarly inside
#: :meth:`FaultPipeline.handle_fault_batch`: a steady-state thread batch
#: faults on only a few pages, where the vectorised pass's fixed cost
#: (np.unique, mask building, fancy indexing) exceeds the per-fault loop.
#: Performance-only — both resolutions are bit-identical.
_SCALAR_RESOLVE_MAX = 4


class FaultPipeline:
    """Per-application fault handling: resolution, TLB refill, hooks.

    Attributes:
        first_touch_cost_ns: resolution cost of a demand-paging fault.
        injected_cost_ns: resolution cost of an SPCD-injected fault
            (page-table walk + present-bit restore + return; the paper's
            "resolved quickly" minor-fault path).
    """

    def __init__(
        self,
        address_space: AddressSpace,
        frames: FrameAllocator,
        tlbs: TlbArray | None = None,
        *,
        node_of_pu: Callable[[int], int],
        first_touch_cost_ns: float = 2500.0,
        injected_cost_ns: float = 900.0,
        scalar_resolve_max: "int | None" = None,
    ) -> None:
        self.address_space = address_space
        self.frames = frames
        self.tlbs = tlbs
        self.node_of_pu = node_of_pu
        self.first_touch_cost_ns = first_touch_cost_ns
        self.injected_cost_ns = injected_cost_ns
        #: batch-size cutover below which handle_fault_batch resolves
        #: scalarly (``RunSettings.batch_cutover_resolve`` when plumbed)
        self.scalar_resolve_max = (
            _SCALAR_RESOLVE_MAX if scalar_resolve_max is None else scalar_resolve_max
        )
        self._hooks: list[FaultHook] = []
        self._batch_hooks: list[FaultBatchHook] = []
        #: when True, each fault's page-table walk additionally charges
        #: NUMA-aware per-level latency via ``PageTable.charge_walk``
        #: (``RunSettings.placement_walk``); off by default so flat-cost
        #: digests stay bit-identical.
        self.numa_walk = False
        self.first_touch_faults = 0
        self.injected_faults = 0
        self.fault_time_ns = 0.0
        #: extra time spent inside hooks (SPCD detection overhead), charged
        #: separately so Fig. 16 can report it.
        self.hook_time_ns = 0.0
        #: host wall-clock spent dispatching hooks (feeds ``PerfCounters.detect_s``)
        self.hook_wall_s = 0.0

    # -- hooks -------------------------------------------------------------
    def add_hook(self, hook: FaultHook) -> None:
        """Register *hook* to run on every resolved fault."""
        self._hooks.append(hook)

    def remove_hook(self, hook: FaultHook) -> None:
        """Unregister a hook."""
        self._hooks.remove(hook)

    def add_batch_hook(self, hook: FaultBatchHook) -> None:
        """Register *hook* to run once per resolved :class:`FaultBatch`."""
        self._batch_hooks.append(hook)

    def remove_batch_hook(self, hook: FaultBatchHook) -> None:
        """Unregister a batch hook."""
        self._batch_hooks.remove(hook)

    def charge_hook_time(self, ns: float) -> None:
        """Hooks call this to account their processing cost (virtual ns)."""
        self.hook_time_ns += ns

    def enable_numa_walk(self, local_ns: float, remote_ns: float) -> None:
        """Charge NUMA-aware per-level walk latency on every handled fault.

        *local_ns*/*remote_ns* are the cost of one radix level whose
        directory page is homed on / off the walking PU's node (see
        :meth:`repro.mem.pagetable.PageTable.charge_walk`).
        """
        table = self.address_space.page_table
        table.level_local_ns = local_ns
        table.level_remote_ns = remote_ns
        self.numa_walk = True

    def _dispatch(self, batch: FaultBatch) -> None:
        """Run batch hooks on *batch* and per-fault hooks on each fault."""
        if not (self._hooks or self._batch_hooks):
            return
        t0 = perf_counter()
        for hook in self._batch_hooks:
            hook(batch)
        if self._hooks:
            for info in batch.infos():
                for hook in self._hooks:
                    hook(info)
        self.hook_wall_s += perf_counter() - t0

    # -- fault handling ------------------------------------------------------
    def faulting_mask(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised: which of *vpns* would fault right now?"""
        return ~self.address_space.page_table.present_mask(vpns)

    def handle_fault(
        self,
        thread_id: int,
        pu_id: int,
        vaddr: int,
        *,
        is_write: bool,
        now_ns: int,
    ) -> FaultInfo:
        """Resolve one fault and run the hooks; returns the fault record."""
        table = self.address_space.page_table
        vpn = vaddr >> PAGE_SHIFT
        if table.is_present(vpn):
            raise PageFaultError(f"vpn {vpn} is present; no fault to handle")

        table.walk(vpn)  # handler performs one page-table walk (Sec. III-C4)
        if self.numa_walk:
            self.fault_time_ns += table.charge_walk(vpn, self.node_of_pu(pu_id))
        if table.is_populated(vpn):
            kind = FaultKind.INJECTED
            table.restore_present(vpn)
            home_node = table.home_node_of(vpn)
            self.injected_faults += 1
            self.fault_time_ns += self.injected_cost_ns
        else:
            kind = FaultKind.FIRST_TOUCH
            home_node = self.node_of_pu(pu_id)
            frame = self.frames.allocate(home_node)
            home_node = self.frames.node_of_frame(frame)
            table.map_page(vpn, frame, home_node)
            self.first_touch_faults += 1
            self.fault_time_ns += self.first_touch_cost_ns

        table.mark_accessed(vpn, dirty=is_write)
        if self.tlbs is not None:
            self.tlbs[pu_id].insert(vpn, table.frame_of(vpn))

        info = FaultInfo(
            thread_id=thread_id,
            pu_id=pu_id,
            vaddr=vaddr,
            vpn=vpn,
            now_ns=now_ns,
            is_write=is_write,
            kind=kind,
            home_node=home_node,
        )
        if self._hooks or self._batch_hooks:
            t0 = perf_counter()
            if self._batch_hooks:
                batch = FaultBatch(
                    thread_id=thread_id,
                    pu_id=pu_id,
                    now_ns=now_ns,
                    vaddrs=np.array([vaddr], dtype=np.int64),
                    vpns=np.array([vpn], dtype=np.int64),
                    is_write=np.array([is_write], dtype=bool),
                    injected=np.array([kind is FaultKind.INJECTED], dtype=bool),
                    home_nodes=np.array([home_node], dtype=np.int64),
                )
                for hook in self._batch_hooks:
                    hook(batch)
            for hook in self._hooks:
                hook(info)
            self.hook_wall_s += perf_counter() - t0
        return info

    def handle_fault_batch(
        self,
        thread_id: int,
        pu_id: int,
        vaddrs: np.ndarray,
        is_write: np.ndarray,
        *,
        now_ns: int,
    ) -> FaultBatch:
        """Resolve every unique faulting VPN of one batch in one pass.

        *vaddrs*/*is_write* are the batch's faulting accesses (duplicates per
        VPN allowed; the first access of each VPN wins, as in the per-fault
        loop).  Every VPN must currently be non-present.  Returns the
        resolved :class:`FaultBatch` after dispatching the hooks.
        """
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if vaddrs.size <= self.scalar_resolve_max:
            return self._handle_small_batch(thread_id, pu_id, vaddrs, is_write, now_ns)
        all_vpns = vaddrs >> PAGE_SHIFT
        vpns, first = np.unique(all_vpns, return_index=True)
        vaddrs = vaddrs[first]
        writes = is_write[first]

        table = self.address_space.page_table
        table.walk_batch(vpns)  # bounds-checks and accounts one walk per fault
        if self.numa_walk:
            self.fault_time_ns += table.charge_walk(vpns, self.node_of_pu(pu_id))
        if table.present_mask(vpns).any():
            bad = vpns[table.present_mask(vpns)][0]
            raise PageFaultError(f"vpn {int(bad)} is present; no fault to handle")

        injected = table.populated_mask(vpns).copy()
        frames = np.empty(vpns.size, dtype=np.int64)
        home_nodes = np.empty(vpns.size, dtype=np.int64)

        inj_vpns = vpns[injected]
        if inj_vpns.size:
            table.restore_present_batch(inj_vpns)
            home_nodes[injected] = table.home_nodes(inj_vpns)
            frames[injected] = table.frames_of(inj_vpns)
            self.injected_faults += int(inj_vpns.size)
            self.fault_time_ns += inj_vpns.size * self.injected_cost_ns

        first_touch = ~injected
        ft_vpns = vpns[first_touch]
        if ft_vpns.size:
            node = self.node_of_pu(pu_id)
            new_frames = self.frames.allocate_batch(node, int(ft_vpns.size))
            nodes = self.frames.nodes_of_frames(new_frames)
            table.map_pages(ft_vpns, new_frames, nodes)
            frames[first_touch] = new_frames
            home_nodes[first_touch] = nodes
            self.first_touch_faults += int(ft_vpns.size)
            self.fault_time_ns += ft_vpns.size * self.first_touch_cost_ns

        table.mark_accessed_batch(vpns, dirty=writes)
        if self.tlbs is not None:
            self.tlbs[pu_id].insert_batch(vpns, frames, assume_unique=True)

        batch = FaultBatch(
            thread_id=thread_id,
            pu_id=pu_id,
            now_ns=now_ns,
            vaddrs=vaddrs,
            vpns=vpns,
            is_write=writes,
            injected=injected,
            home_nodes=home_nodes,
        )
        self._dispatch(batch)
        return batch

    def _handle_small_batch(
        self,
        thread_id: int,
        pu_id: int,
        vaddrs: np.ndarray,
        is_write: np.ndarray,
        now_ns: int,
    ) -> FaultBatch:
        """Scalar resolution of a small batch (same contract and results)."""
        by_vpn: dict[int, tuple[int, bool]] = {}
        for va, w in zip(vaddrs.tolist(), is_write.tolist()):
            vpn = va >> PAGE_SHIFT
            if vpn not in by_vpn:
                by_vpn[vpn] = (va, w)
        order = sorted(by_vpn)

        table = self.address_space.page_table
        tlb = self.tlbs[pu_id] if self.tlbs is not None else None
        node: int | None = None
        u_vaddrs: list[int] = []
        u_writes: list[bool] = []
        injected: list[bool] = []
        homes: list[int] = []
        for vpn in order:
            va, w = by_vpn[vpn]
            if table.is_present(vpn):
                raise PageFaultError(f"vpn {vpn} is present; no fault to handle")
            table.walk(vpn)
            if self.numa_walk:
                self.fault_time_ns += table.charge_walk(vpn, self.node_of_pu(pu_id))
            if table.is_populated(vpn):
                table.restore_present(vpn)
                home = table.home_node_of(vpn)
                frame = table.frame_of(vpn)
                self.injected_faults += 1
                self.fault_time_ns += self.injected_cost_ns
                inj = True
            else:
                if node is None:
                    node = self.node_of_pu(pu_id)
                frame = self.frames.allocate(node)
                home = self.frames.node_of_frame(frame)
                table.map_page(vpn, frame, home)
                self.first_touch_faults += 1
                self.fault_time_ns += self.first_touch_cost_ns
                inj = False
            table.mark_accessed(vpn, dirty=w)
            if tlb is not None:
                tlb.insert(vpn, frame)
            u_vaddrs.append(va)
            u_writes.append(w)
            injected.append(inj)
            homes.append(home)

        batch = FaultBatch(
            thread_id=thread_id,
            pu_id=pu_id,
            now_ns=now_ns,
            vaddrs=np.asarray(u_vaddrs, dtype=np.int64),
            vpns=np.asarray(order, dtype=np.int64),
            is_write=np.asarray(u_writes, dtype=bool),
            injected=np.asarray(injected, dtype=bool),
            home_nodes=np.asarray(homes, dtype=np.int64),
        )
        self._dispatch(batch)
        return batch

    @property
    def total_faults(self) -> int:
        """All faults handled so far."""
        return self.first_touch_faults + self.injected_faults

    def injected_fraction(self) -> float:
        """Share of faults that were SPCD-injected (the paper targets ~10%)."""
        total = self.total_faults
        return self.injected_faults / total if total else 0.0
