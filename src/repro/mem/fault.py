"""Page-fault pipeline with hook points.

This is the simulation analogue of the paper's modified Linux page-fault
handler (their Figure 2): resolve the fault — first-touch allocation or
restoring a present bit SPCD cleared — and then run registered hooks with the
full fault information (faulting thread, address, time, kind).  SPCD's
communication detection registers exactly one such hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PageFaultError
from repro.mem.addresspace import AddressSpace
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray
from repro.units import PAGE_SHIFT


class FaultKind(enum.Enum):
    """Why the fault happened."""

    #: First access ever to the page — demand paging / first touch.
    FIRST_TOUCH = "first_touch"
    #: Present bit was cleared by the SPCD injector; page already has a frame.
    INJECTED = "injected"


@dataclass(frozen=True)
class FaultInfo:
    """Everything a fault hook may observe about one page fault."""

    thread_id: int
    pu_id: int
    vaddr: int
    vpn: int
    now_ns: int
    is_write: bool
    kind: FaultKind
    home_node: int


FaultHook = Callable[[FaultInfo], None]


class FaultPipeline:
    """Per-application fault handling: resolution, TLB refill, hooks.

    Attributes:
        first_touch_cost_ns: resolution cost of a demand-paging fault.
        injected_cost_ns: resolution cost of an SPCD-injected fault
            (page-table walk + present-bit restore + return; the paper's
            "resolved quickly" minor-fault path).
    """

    def __init__(
        self,
        address_space: AddressSpace,
        frames: FrameAllocator,
        tlbs: TlbArray | None = None,
        *,
        node_of_pu: Callable[[int], int],
        first_touch_cost_ns: float = 2500.0,
        injected_cost_ns: float = 900.0,
    ) -> None:
        self.address_space = address_space
        self.frames = frames
        self.tlbs = tlbs
        self.node_of_pu = node_of_pu
        self.first_touch_cost_ns = first_touch_cost_ns
        self.injected_cost_ns = injected_cost_ns
        self._hooks: list[FaultHook] = []
        self.first_touch_faults = 0
        self.injected_faults = 0
        self.fault_time_ns = 0.0
        #: extra time spent inside hooks (SPCD detection overhead), charged
        #: separately so Fig. 16 can report it.
        self.hook_time_ns = 0.0
        #: per-hook cost model: seconds are virtual, so hooks report their
        #: own cost via :meth:`charge_hook_time`.
        self._last_info: FaultInfo | None = None

    # -- hooks -------------------------------------------------------------
    def add_hook(self, hook: FaultHook) -> None:
        """Register *hook* to run on every resolved fault."""
        self._hooks.append(hook)

    def remove_hook(self, hook: FaultHook) -> None:
        """Unregister a hook."""
        self._hooks.remove(hook)

    def charge_hook_time(self, ns: float) -> None:
        """Hooks call this to account their processing cost (virtual ns)."""
        self.hook_time_ns += ns

    # -- fault handling ------------------------------------------------------
    def faulting_mask(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised: which of *vpns* would fault right now?"""
        return ~self.address_space.page_table.present_mask(vpns)

    def handle_fault(
        self,
        thread_id: int,
        pu_id: int,
        vaddr: int,
        *,
        is_write: bool,
        now_ns: int,
    ) -> FaultInfo:
        """Resolve one fault and run the hooks; returns the fault record."""
        table = self.address_space.page_table
        vpn = vaddr >> PAGE_SHIFT
        if table.is_present(vpn):
            raise PageFaultError(f"vpn {vpn} is present; no fault to handle")

        table.walk(vpn)  # handler performs one page-table walk (Sec. III-C4)
        if table.is_populated(vpn):
            kind = FaultKind.INJECTED
            table.restore_present(vpn)
            home_node = table.home_node_of(vpn)
            self.injected_faults += 1
            self.fault_time_ns += self.injected_cost_ns
        else:
            kind = FaultKind.FIRST_TOUCH
            home_node = self.node_of_pu(pu_id)
            frame = self.frames.allocate(home_node)
            home_node = self.frames.node_of_frame(frame)
            table.map_page(vpn, frame, home_node)
            self.first_touch_faults += 1
            self.fault_time_ns += self.first_touch_cost_ns

        table.mark_accessed(vpn, dirty=is_write)
        if self.tlbs is not None:
            self.tlbs[pu_id].insert(vpn, table.frame_of(vpn))

        info = FaultInfo(
            thread_id=thread_id,
            pu_id=pu_id,
            vaddr=vaddr,
            vpn=vpn,
            now_ns=now_ns,
            is_write=is_write,
            kind=kind,
            home_node=home_node,
        )
        self._last_info = info
        for hook in self._hooks:
            hook(info)
        return info

    @property
    def total_faults(self) -> int:
        """All faults handled so far."""
        return self.first_touch_faults + self.injected_faults

    def injected_fraction(self) -> float:
        """Share of faults that were SPCD-injected (the paper targets ~10%)."""
        total = self.total_faults
        return self.injected_faults / total if total else 0.0
