"""Physical frame allocation with NUMA first-touch policy.

Linux's default policy backs a page with memory from the NUMA node of the CPU
that first touches it.  The paper's baseline relies on this, and SPCD does not
change data placement (it notes data mapping as possible future use), so the
simulator reproduces first-touch faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, PageFaultError
from repro.units import PAGE_SIZE


class FrameAllocator:
    """Bump-with-free-list frame allocator over per-node frame ranges."""

    def __init__(self, n_nodes: int, frames_per_node: int) -> None:
        if n_nodes <= 0 or frames_per_node <= 0:
            raise ConfigurationError("need positive node count and frames per node")
        self.n_nodes = n_nodes
        self.frames_per_node = frames_per_node
        self._next = [node * frames_per_node for node in range(n_nodes)]
        self._free: list[list[int]] = [[] for _ in range(n_nodes)]
        self.allocated = [0] * n_nodes

    def node_of_frame(self, frame: int) -> int:
        """NUMA node owning *frame*."""
        node = frame // self.frames_per_node
        if not 0 <= node < self.n_nodes:
            raise PageFaultError(f"frame {frame} outside any node")
        return node

    def allocate(self, node: int) -> int:
        """Allocate one frame on *node* (falls back to other nodes if full).

        Returns the frame number.  Fallback mirrors the kernel's zone
        fallback order (nearest node first, here: increasing node distance
        in id space).
        """
        order = sorted(range(self.n_nodes), key=lambda n: abs(n - node))
        for candidate in order:
            if self._free[candidate]:
                self.allocated[candidate] += 1
                return self._free[candidate].pop()
            limit = (candidate + 1) * self.frames_per_node
            if self._next[candidate] < limit:
                frame = self._next[candidate]
                self._next[candidate] += 1
                self.allocated[candidate] += 1
                return frame
        raise PageFaultError("out of physical memory on all nodes")

    def allocate_batch(self, node: int, count: int) -> np.ndarray:
        """Allocate *count* frames on *node*, with the same fallback order.

        Returns exactly the frames ``count`` successive :meth:`allocate`
        calls would return, in the same order: free-list frames newest-first,
        then bump allocation, walking nodes by increasing id distance.
        """
        if count < 0:
            raise ConfigurationError("cannot allocate a negative frame count")
        out = np.empty(count, dtype=np.int64)
        filled = 0
        order = sorted(range(self.n_nodes), key=lambda n: abs(n - node))
        for candidate in order:
            if filled >= count:
                break
            free = self._free[candidate]
            take = min(len(free), count - filled)
            if take:
                # pop() order: newest free frame first
                out[filled : filled + take] = free[: -take - 1 : -1]
                del free[-take:]
                self.allocated[candidate] += take
                filled += take
            limit = (candidate + 1) * self.frames_per_node
            nxt = self._next[candidate]
            take = min(limit - nxt, count - filled)
            if take > 0:
                out[filled : filled + take] = np.arange(nxt, nxt + take, dtype=np.int64)
                self._next[candidate] = nxt + take
                self.allocated[candidate] += take
                filled += take
        if filled < count:
            raise PageFaultError("out of physical memory on all nodes")
        return out

    def nodes_of_frames(self, frames: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`node_of_frame`."""
        frames = np.asarray(frames, dtype=np.int64)
        nodes = frames // self.frames_per_node
        if frames.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise PageFaultError("frame outside any node")
        return nodes

    def free(self, frame: int) -> None:
        """Return *frame* to its node's free list."""
        node = self.node_of_frame(frame)
        if self.allocated[node] <= 0:
            raise PageFaultError(f"double free of frame {frame}")
        self.allocated[node] -= 1
        self._free[node].append(frame)

    def available(self, node: int) -> int:
        """Frames still allocatable on *node*."""
        limit = (node + 1) * self.frames_per_node
        return (limit - self._next[node]) + len(self._free[node])

    @classmethod
    def for_memory(cls, n_nodes: int, bytes_per_node: int) -> "FrameAllocator":
        """Allocator sized for *bytes_per_node* of DRAM per node."""
        return cls(n_nodes, max(1, bytes_per_node // PAGE_SIZE))
