"""Process address space: named regions over a compact VPN range.

Workloads allocate their shared vectors / private arrays as regions; the
address space hands out page-aligned base addresses and owns the process's
page table.  Keeping the VPN range compact lets the page table store entries
flat (see :mod:`repro.mem.pagetable`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError
from repro.mem.pagetable import PageTable
from repro.units import PAGE_SHIFT, PAGE_SIZE, align_up


@dataclass(frozen=True)
class Region:
    """A contiguous mapped region (mmap-style)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    @property
    def first_vpn(self) -> int:
        """VPN of the first page."""
        return self.base >> PAGE_SHIFT

    @property
    def n_pages(self) -> int:
        """Number of pages spanned."""
        return (align_up(self.size, PAGE_SIZE)) >> PAGE_SHIFT

    def vpns(self) -> np.ndarray:
        """All VPNs of the region as an int64 array."""
        return np.arange(self.first_vpn, self.first_vpn + self.n_pages, dtype=np.int64)

    def contains(self, vaddr: int) -> bool:
        """True if *vaddr* lies inside the region."""
        return self.base <= vaddr < self.end

    def addr(self, offset: int) -> int:
        """Virtual address at byte *offset* into the region."""
        if not 0 <= offset < self.size:
            raise AddressError(f"offset {offset} outside region {self.name!r}")
        return self.base + offset


class AddressSpace:
    """The shared address space of one parallel application.

    Attributes:
        capacity_pages: maximum pages this space may span (page-table size).
        guard_pages: unmapped pages placed between regions so off-by-one
            region accesses fault loudly rather than aliasing.
    """

    def __init__(
        self,
        capacity_pages: int = 1 << 18,
        guard_pages: int = 1,
        page_table: PageTable | None = None,
    ) -> None:
        if page_table is None:
            page_table = PageTable(capacity_pages)
        elif page_table.capacity != capacity_pages:
            raise AddressError(
                f"page table capacity {page_table.capacity} does not match "
                f"address-space capacity {capacity_pages}"
            )
        self.page_table = page_table
        self.capacity_pages = capacity_pages
        self.guard_pages = guard_pages
        self._regions: dict[str, Region] = {}
        self._next_vpn = 1  # keep page 0 unmapped (null-page convention)

    # -- allocation ---------------------------------------------------------
    def mmap(self, name: str, size: int) -> Region:
        """Create a new region of *size* bytes; returns it."""
        if size <= 0:
            raise AddressError("region size must be positive")
        if name in self._regions:
            raise AddressError(f"region {name!r} already exists")
        n_pages = align_up(size, PAGE_SIZE) >> PAGE_SHIFT
        if self._next_vpn + n_pages > self.capacity_pages:
            raise AddressError(
                f"address space exhausted: need {n_pages} pages at vpn "
                f"{self._next_vpn}, capacity {self.capacity_pages}"
            )
        region = Region(name=name, base=self._next_vpn << PAGE_SHIFT, size=size)
        self._next_vpn += n_pages + self.guard_pages
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(f"no region named {name!r}") from None

    def regions(self) -> list[Region]:
        """All regions in allocation order."""
        return sorted(self._regions.values(), key=lambda r: r.base)

    def region_of(self, vaddr: int) -> Region | None:
        """The region containing *vaddr*, or ``None`` (guard / unmapped)."""
        for region in self._regions.values():
            if region.contains(vaddr):
                return region
        return None

    @property
    def span_pages(self) -> int:
        """Pages from 0 to the highest allocated VPN (dense-table extent)."""
        return self._next_vpn

    def total_mapped_bytes(self) -> int:
        """Sum of region sizes."""
        return sum(r.size for r in self._regions.values())
