"""Page table shared by the threads of one parallel application.

Linux keeps one page table per process; all threads share it, which is why
the paper must *re-create* faults on already-mapped pages (Sec. III-A).  The
table here is stored flat by VPN in numpy arrays (fast vectorised present-bit
checks for the execution engine) while :meth:`walk` exposes the 4-level radix
view used for walk-cost accounting.  Both views are kept consistent by
funnelling all mutation through this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, PageFaultError
from repro.mem.address import N_LEVELS, VPN_BITS_PER_LEVEL, radix_indices

#: Sentinel frame number for "no frame mapped".
NO_FRAME: int = -1

#: Default per-level walk reference latencies (ns) for the NUMA-aware walk
#: cost model: a walk level is one memory reference to a page-table page,
#: local or remote to the walking PU's node.  The engine overrides these
#: from :meth:`repro.machine.numa.NumaModel.pt_walk_level_ns`.
PT_LEVEL_LOCAL_NS: float = 25.0
PT_LEVEL_REMOTE_NS: float = 120.0


@dataclass
class PageTableEntry:
    """Materialised view of one PTE (copies, not live references)."""

    vpn: int
    present: bool
    populated: bool
    frame: int
    accessed: bool
    dirty: bool
    home_node: int


class PageTable:
    """Flat-stored page table over a bounded VPN range ``[0, capacity)``.

    Attributes:
        capacity: number of VPNs addressable through this table.  Workload
            address spaces are compact, so a dense table is practical and
            allows vectorised fault detection.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AddressError("page table capacity must be positive")
        self.capacity = capacity
        self._present = np.zeros(capacity, dtype=bool)
        self._populated = np.zeros(capacity, dtype=bool)
        self._accessed = np.zeros(capacity, dtype=bool)
        self._dirty = np.zeros(capacity, dtype=bool)
        self._frame = np.full(capacity, NO_FRAME, dtype=np.int64)
        self._home_node = np.full(capacity, -1, dtype=np.int32)
        #: Counts of structural operations, for the overhead model.
        self.walk_count = 0
        self.present_clear_count = 0
        #: NUMA-aware walk cost accounting (enabled by the fault pipeline's
        #: ``REPRO_PLACEMENT_WALK`` path; the arrays are created lazily so
        #: the default engine never touches them).
        self.level_local_ns = PT_LEVEL_LOCAL_NS
        self.level_remote_ns = PT_LEVEL_REMOTE_NS
        self.walk_levels_local = 0
        self.walk_levels_remote = 0
        self.walk_cost_ns = 0.0
        self._dir_homes: "list[np.ndarray] | None" = None

    # -- bounds ---------------------------------------------------------
    def _check(self, vpn: int) -> None:
        if not 0 <= vpn < self.capacity:
            raise AddressError(f"vpn {vpn} outside table capacity {self.capacity}")

    # -- queries ----------------------------------------------------------
    def entry(self, vpn: int) -> PageTableEntry:
        """Snapshot of the PTE for *vpn*."""
        self._check(vpn)
        return PageTableEntry(
            vpn=vpn,
            present=bool(self._present[vpn]),
            populated=bool(self._populated[vpn]),
            frame=int(self._frame[vpn]),
            accessed=bool(self._accessed[vpn]),
            dirty=bool(self._dirty[vpn]),
            home_node=int(self._home_node[vpn]),
        )

    def is_present(self, vpn: int) -> bool:
        """Present-bit state of one VPN."""
        self._check(vpn)
        return bool(self._present[vpn])

    def is_populated(self, vpn: int) -> bool:
        """True once a frame has ever been mapped at *vpn*."""
        self._check(vpn)
        return bool(self._populated[vpn])

    def frame_of(self, vpn: int) -> int:
        """Physical frame number backing *vpn* (``NO_FRAME`` if none)."""
        self._check(vpn)
        return int(self._frame[vpn])

    def home_node_of(self, vpn: int) -> int:
        """NUMA node of the frame backing *vpn* (-1 if unpopulated)."""
        self._check(vpn)
        return int(self._home_node[vpn])

    def present_mask(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised present-bit lookup for an int array of VPNs."""
        return self._present[vpns]

    def populated_mask(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised populated-bit lookup for an int array of VPNs."""
        return self._populated[vpns]

    def frames_of(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised frame lookup (``NO_FRAME`` where unpopulated)."""
        return self._frame[vpns]

    def populated_vpns(self) -> np.ndarray:
        """All VPNs that currently have a frame (sorted)."""
        return np.flatnonzero(self._populated)

    def present_vpns(self) -> np.ndarray:
        """All VPNs whose present bit is set (sorted)."""
        return np.flatnonzero(self._present)

    def home_nodes(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorised NUMA-home lookup."""
        return self._home_node[vpns]

    @property
    def n_populated(self) -> int:
        """Number of pages with frames."""
        return int(self._populated.sum())

    # -- mutation --------------------------------------------------------
    def map_page(self, vpn: int, frame: int, home_node: int) -> None:
        """Install a frame at *vpn* (first-touch population)."""
        self._check(vpn)
        if self._populated[vpn]:
            raise PageFaultError(f"vpn {vpn} already populated")
        self._populated[vpn] = True
        self._present[vpn] = True
        self._frame[vpn] = frame
        self._home_node[vpn] = home_node

    def map_pages(self, vpns: np.ndarray, frames: np.ndarray, home_nodes: np.ndarray) -> None:
        """Bulk first-touch population: install *frames* at *vpns*.

        Equivalent to calling :meth:`map_page` per VPN; the VPNs must be
        distinct and none of them populated.
        """
        vpns = np.asarray(vpns, dtype=np.int64)
        if vpns.size == 0:
            return
        if vpns.min() < 0 or vpns.max() >= self.capacity:
            raise AddressError("vpn out of range in map_pages")
        if self._populated[vpns].any():
            bad = vpns[self._populated[vpns]][0]
            raise PageFaultError(f"vpn {int(bad)} already populated")
        self._populated[vpns] = True
        self._present[vpns] = True
        self._frame[vpns] = frames
        self._home_node[vpns] = home_nodes

    def unmap_page(self, vpn: int) -> int:
        """Remove the mapping at *vpn*; returns the freed frame."""
        self._check(vpn)
        if not self._populated[vpn]:
            raise PageFaultError(f"vpn {vpn} not populated")
        frame = int(self._frame[vpn])
        self._populated[vpn] = False
        self._present[vpn] = False
        self._accessed[vpn] = False
        self._dirty[vpn] = False
        self._frame[vpn] = NO_FRAME
        self._home_node[vpn] = -1
        return frame

    def clear_present(self, vpns: np.ndarray | int) -> int:
        """Clear the present bit of populated pages (SPCD fault injection).

        Returns the number of bits actually cleared (pages that were both
        populated and present).
        """
        vpns = np.atleast_1d(np.asarray(vpns, dtype=np.int64))
        if vpns.size and (vpns.min() < 0 or vpns.max() >= self.capacity):
            raise AddressError("vpn out of range in clear_present")
        eligible = self._populated[vpns] & self._present[vpns]
        targets = vpns[eligible]
        self._present[targets] = False
        self.present_clear_count += int(targets.size)
        return int(targets.size)

    def restore_present(self, vpn: int) -> None:
        """Set the present bit back after an SPCD-injected fault."""
        self._check(vpn)
        if not self._populated[vpn]:
            raise PageFaultError(f"cannot restore present bit of unpopulated vpn {vpn}")
        self._present[vpn] = True

    def restore_present_batch(self, vpns: np.ndarray) -> None:
        """Bulk present-bit restore after SPCD-injected faults."""
        vpns = np.asarray(vpns, dtype=np.int64)
        if vpns.size == 0:
            return
        if vpns.min() < 0 or vpns.max() >= self.capacity:
            raise AddressError("vpn out of range in restore_present_batch")
        if not self._populated[vpns].all():
            bad = vpns[~self._populated[vpns]][0]
            raise PageFaultError(f"cannot restore present bit of unpopulated vpn {int(bad)}")
        self._present[vpns] = True

    def mark_accessed(self, vpn: int, dirty: bool = False) -> None:
        """Set accessed (and optionally dirty) bits, as the MMU would."""
        self._check(vpn)
        self._accessed[vpn] = True
        if dirty:
            self._dirty[vpn] = True

    def mark_accessed_batch(self, vpns: np.ndarray, dirty: np.ndarray | None = None) -> None:
        """Vectorised accessed-bit setting (the MMU sets A on TLB refill).

        *dirty*, when given, is a boolean mask aligned with *vpns* marking
        which of them were written.
        """
        self._accessed[vpns] = True
        if dirty is not None and dirty.any():
            self._dirty[vpns[dirty]] = True

    def accessed_present_vpns(self) -> np.ndarray:
        """VPNs that are present and were accessed since the last aging."""
        return np.flatnonzero(self._accessed & self._present)

    def age_accessed(self) -> None:
        """Clear every accessed bit (kswapd-style aging sweep).

        Unpopulated pages must stay clear for :meth:`consistency_ok`; since
        aging clears everything, the invariant holds trivially.
        """
        self._accessed[:] = False

    # -- radix view -------------------------------------------------------
    def walk(self, vpn: int) -> tuple[int, int, int, int]:
        """Radix walk of *vpn*; counts toward :attr:`walk_count`.

        Returns the (PML4, PDPT, PD, PT) indices.  In the cost model every
        injected fault and every resolution performs one walk, mirroring the
        constant-time operations the paper describes (Sec. III-C4).
        """
        self._check(vpn)
        self.walk_count += 1
        return radix_indices(vpn)

    def walk_batch(self, vpns: np.ndarray) -> None:
        """Account one radix walk per VPN (the batched fault path's walks)."""
        vpns = np.asarray(vpns, dtype=np.int64)
        if vpns.size and (vpns.min() < 0 or vpns.max() >= self.capacity):
            raise AddressError("vpn out of range in walk_batch")
        self.walk_count += int(vpns.size)

    # -- NUMA-aware walk cost ---------------------------------------------
    def _dir_home_arrays(self) -> "list[np.ndarray]":
        """Home nodes of the page-table *directory* pages, per radix level.

        Index at level *l* is ``vpn >> 9*(N_LEVELS - l)``: one PT page
        (level 3) covers 512 VPNs, one PD page 512 PT pages, and so on up
        to the single PML4.  -1 means the directory page was never walked.
        """
        if self._dir_homes is None:
            self._dir_homes = [
                np.full(
                    max(1, -(-self.capacity // (1 << (VPN_BITS_PER_LEVEL * (N_LEVELS - level))))),
                    -1,
                    dtype=np.int32,
                )
                for level in range(N_LEVELS)
            ]
        return self._dir_homes

    def dir_page_count(self) -> int:
        """Total page-table directory pages the table spans (all levels)."""
        return sum(int(arr.size) for arr in self._dir_home_arrays())

    def dir_home(self, level: int, vpn: int) -> int:
        """Home node of the level-*level* directory page covering *vpn*."""
        arr = self._dir_home_arrays()[level]
        return int(arr[vpn >> (VPN_BITS_PER_LEVEL * (N_LEVELS - level))])

    def charge_walk(self, vpns: "np.ndarray | int", node: int) -> float:
        """NUMA-aware cost of walking *vpns* from a PU on *node* (ns).

        Each of the four radix levels is one memory reference to a
        page-table page; a level whose directory page lives on *node* pays
        :attr:`level_local_ns`, any other pays :attr:`level_remote_ns`.
        Directory pages are assigned first-touch — the node of the first
        walker allocates them, as Linux allocates page-table pages on the
        faulting node.  Returns the charge and updates the
        ``walk_levels_local`` / ``walk_levels_remote`` counters.
        """
        vpns = np.atleast_1d(np.asarray(vpns, dtype=np.int64))
        if vpns.size == 0:
            return 0.0
        local = 0
        for level, arr in enumerate(self._dir_home_arrays()):
            idx = vpns >> (VPN_BITS_PER_LEVEL * (N_LEVELS - level))
            homes = arr[idx]
            fresh = homes < 0
            if fresh.any():
                arr[idx[fresh]] = node
                homes = arr[idx]
            local += int((homes == node).sum())
        remote = int(vpns.size) * N_LEVELS - local
        self.walk_levels_local += local
        self.walk_levels_remote += remote
        cost = local * self.level_local_ns + remote * self.level_remote_ns
        self.walk_cost_ns += cost
        return cost

    def consistency_ok(self) -> bool:
        """Structural invariants (used by property tests).

        * present implies populated,
        * populated iff a frame is mapped,
        * unpopulated pages carry no home node and no status bits.
        """
        if np.any(self._present & ~self._populated):
            return False
        if np.any(self._populated != (self._frame != NO_FRAME)):
            return False
        if np.any((~self._populated) & (self._home_node != -1)):
            return False
        if np.any((~self._populated) & (self._accessed | self._dirty)):
            return False
        return True
