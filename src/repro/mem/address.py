"""Virtual address decomposition (x86-64-like 4-level, 4 KiB pages).

A 48-bit virtual address splits into four 9-bit radix indices (PML4, PDPT,
PD, PT) plus a 12-bit page offset.  The simulator stores page-table entries
flat by VPN for speed; these helpers provide the radix view for fidelity and
for the page-table-walk cost accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError
from repro.units import PAGE_SHIFT, PAGE_SIZE

#: Bits per radix level on x86-64 with 4 KiB pages.
VPN_BITS_PER_LEVEL: int = 9
#: Number of radix levels.
N_LEVELS: int = 4
#: Width of the virtual address space modelled (48-bit canonical).
VADDR_BITS: int = 48
MAX_VADDR: int = (1 << VADDR_BITS) - 1


def vpn_of(vaddr: int) -> int:
    """Virtual page number containing *vaddr*."""
    if not 0 <= vaddr <= MAX_VADDR:
        raise AddressError(f"virtual address {vaddr:#x} outside 48-bit space")
    return vaddr >> PAGE_SHIFT


def page_offset(vaddr: int) -> int:
    """Byte offset of *vaddr* within its page."""
    return vaddr & (PAGE_SIZE - 1)


def vaddr_of_vpn(vpn: int, offset: int = 0) -> int:
    """First byte (plus *offset*) of virtual page *vpn*."""
    if offset >= PAGE_SIZE or offset < 0:
        raise AddressError(f"offset {offset} outside page")
    vaddr = (vpn << PAGE_SHIFT) | offset
    if vaddr > MAX_VADDR:
        raise AddressError(f"vpn {vpn:#x} outside 48-bit space")
    return vaddr


def radix_indices(vpn: int) -> tuple[int, int, int, int]:
    """The (PML4, PDPT, PD, PT) indices of a virtual page number."""
    mask = (1 << VPN_BITS_PER_LEVEL) - 1
    return (
        (vpn >> (3 * VPN_BITS_PER_LEVEL)) & mask,
        (vpn >> (2 * VPN_BITS_PER_LEVEL)) & mask,
        (vpn >> VPN_BITS_PER_LEVEL) & mask,
        vpn & mask,
    )


def vpn_of_radix(indices: tuple[int, int, int, int]) -> int:
    """Inverse of :func:`radix_indices`."""
    pml4, pdpt, pd, pt = indices
    for idx in indices:
        if not 0 <= idx < (1 << VPN_BITS_PER_LEVEL):
            raise AddressError(f"radix index {idx} out of range")
    return (
        (pml4 << (3 * VPN_BITS_PER_LEVEL))
        | (pdpt << (2 * VPN_BITS_PER_LEVEL))
        | (pd << VPN_BITS_PER_LEVEL)
        | pt
    )


def vpns_of(vaddrs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`vpn_of` for an int64 array of addresses."""
    return np.asarray(vaddrs, dtype=np.int64) >> PAGE_SHIFT


def region_granules(vaddr: int, granularity: int) -> int:
    """Index of the *granularity*-sized region containing *vaddr*.

    SPCD decouples detection granularity from the hardware page size
    (paper Sec. III-C1); this is the generalisation of :func:`vpn_of`.
    """
    if granularity <= 0 or granularity & (granularity - 1):
        raise AddressError("granularity must be a positive power of two")
    return vaddr // granularity
