"""``python -m repro.serve`` — run the mapping daemon.

Configuration resolves CLI flags over ``REPRO_SERVE_*`` environment
variables (read once, through :class:`~repro.engine.settings.RunSettings`)
over defaults.  On startup the daemon prints one machine-parseable ready
line::

    repro.serve listening on 127.0.0.1:43211 metrics=127.0.0.1:43212

and then serves until SIGTERM/SIGINT, which triggers a graceful drain:
every live session is notified, queued events are processed, final
matrices are flushed to the obs trace (``--trace``/``REPRO_TRACE``), and
the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

from repro.engine.settings import RunSettings
from repro.obs.recorder import JsonlRecorder, NullRecorder, serve_trace_path
from repro.serve.router import RoutedMappingServer
from repro.serve.server import MappingServer, ServeConfig

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="SPCD mapping-as-a-service daemon",
    )
    parser.add_argument("--host", default=None, help="bind address")
    parser.add_argument("--port", type=int, default=None, help="data port (0=ephemeral)")
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="plaintext /metrics HTTP port (0=ephemeral; omit to disable)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None, help="concurrent session cap"
    )
    parser.add_argument(
        "--max-table-mb",
        type=float,
        default=None,
        help="per-tenant detection-state memory cap (MiB)",
    )
    parser.add_argument("--shards", type=int, default=None, help="table shards per session")
    parser.add_argument(
        "--eval-every",
        type=int,
        default=None,
        help="events between two mapping evaluations",
    )
    parser.add_argument(
        "--credits", type=int, default=None, help="per-client send window (events)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="detection worker processes (>1 runs the consistent-hash router)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds to wait for clients during a drain",
    )
    parser.add_argument(
        "--trace", default=None, help="obs trace sink (.jsonl file or directory)"
    )
    return parser


def _resolve_config(args: argparse.Namespace, settings: RunSettings) -> ServeConfig:
    base = ServeConfig.from_settings(settings)
    return ServeConfig(
        host=args.host if args.host is not None else base.host,
        port=args.port if args.port is not None else base.port,
        metrics_port=(
            args.metrics_port if args.metrics_port is not None else base.metrics_port
        ),
        max_sessions=(
            args.max_sessions if args.max_sessions is not None else base.max_sessions
        ),
        max_table_mb=(
            args.max_table_mb if args.max_table_mb is not None else base.max_table_mb
        ),
        shards=args.shards if args.shards is not None else base.shards,
        eval_every_events=(
            args.eval_every if args.eval_every is not None else base.eval_every_events
        ),
        credit_window=args.credits if args.credits is not None else base.credit_window,
        drain_grace_s=args.drain_grace,
        workers=args.workers if args.workers is not None else base.workers,
    )


async def _run(config: ServeConfig, trace: "str | None") -> int:
    recorder = (
        JsonlRecorder(serve_trace_path(Path(trace))) if trace else NullRecorder()
    )
    if config.workers > 1:
        server: MappingServer = RoutedMappingServer(config, recorder=recorder)
    else:
        server = MappingServer(config, recorder=recorder)
    await server.start()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            sig, lambda s=sig: asyncio.ensure_future(server.drain(signal.Signals(s).name))
        )
    ready = f"repro.serve listening on {config.host}:{server.port}"
    if server.n_workers:
        ready += f" workers={server.n_workers}"
    if server.metrics_port is not None:
        ready += f" metrics={config.host}:{server.metrics_port}"
    print(ready, flush=True)
    await server.serve_forever()
    print(
        f"repro.serve drained: {server.sessions_served} sessions, "
        f"{server.events_total} events, {server.remaps_total} remaps",
        flush=True,
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    settings = RunSettings.from_env()
    config = _resolve_config(args, settings)
    trace = args.trace if args.trace is not None else settings.trace
    return asyncio.run(_run(config, trace))


if __name__ == "__main__":
    sys.exit(main())
