"""Clients of the mapping service (blocking-socket and asyncio) + a
deterministic synthetic fault-stream generator for tests and benchmarks.

Both clients implement the credit protocol faithfully: a send blocks (or
awaits) until the window covers the batch, and every received frame is
dispatched through one handler — CREDIT replenishes the window, MAPPING
updates :attr:`mappings`, DRAINING flips :attr:`draining` (the streaming
loop should stop and call :meth:`close`), ERROR raises.  The final
:meth:`close` performs the BYE handshake and returns the server's SUMMARY
payload, which carries the session's final matrix digest — the value the
acceptance tests compare against
:func:`repro.serve.evaluator.offline_reference`.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Iterator

import numpy as np

from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve import protocol
from repro.serve.protocol import Frame, MsgType
from repro.units import MSEC, PAGE_SIZE

__all__ = ["AsyncServeClient", "ServeClient", "synthetic_fault_stream"]


def synthetic_fault_stream(
    n_threads: int,
    events_per_thread: int,
    *,
    batch_events: int = 256,
    pages_per_pair: int = 64,
    seed: int = 0,
    start_ns: int = 0,
    step_ns: int = 1 * MSEC,
) -> "Iterator[tuple[int, int, np.ndarray]]":
    """Deterministic ``(tid, now_ns, vaddrs)`` batches with a far-pair pattern.

    Thread *t* shares a private page pool with thread ``(t + n/2) % n`` —
    the partner on the *other* socket under identity placement on a
    dual-socket machine, so the optimal mapping moves pairs together and
    the service's remap decisions are observable (nearest-neighbour pairs
    would already sit on SMT siblings and every remap would be vetoed).
    Batches round-robin the threads; virtual time advances ``step_ns`` per
    round so the detection window stays open.  Everything derives from
    *seed*, so replaying the generator reproduces the stream exactly.
    """
    if n_threads < 2 or n_threads % 2:
        raise ServeError("synthetic_fault_stream needs an even n_threads >= 2")
    rng = np.random.default_rng(seed)
    rounds = -(-events_per_thread // batch_events)
    sent = [0] * n_threads
    for round_index in range(rounds):
        now_ns = start_ns + round_index * step_ns
        for tid in range(n_threads):
            remaining = events_per_thread - sent[tid]
            if remaining <= 0:
                continue
            n = min(batch_events, remaining)
            partner = (tid + n_threads // 2) % n_threads
            pair_index = min(tid, partner)
            base = (1 + pair_index) * pages_per_pair * PAGE_SIZE
            pages = rng.integers(0, pages_per_pair, size=n)
            vaddrs = base + pages.astype(np.int64) * PAGE_SIZE
            sent[tid] += n
            yield tid, now_ns, vaddrs


class _ClientState:
    """Frame-dispatch state shared by the sync and async clients."""

    def __init__(self) -> None:
        self.session_id = 0
        self.credits = 0
        self.mappings: "list[dict[str, Any]]" = []
        self.draining = False
        self.summary: "dict[str, Any] | None" = None
        self.metrics_text: "str | None" = None
        self._flush_acks = 0

    def dispatch(self, frame: Frame) -> None:
        """Fold one server frame into the client state."""
        if frame.type is MsgType.CREDIT:
            self.credits += int(frame.payload.get("events", 0))
            if frame.payload.get("ack") == "flush":
                self._flush_acks += 1
        elif frame.type is MsgType.MAPPING:
            self.mappings.append(frame.payload)
        elif frame.type is MsgType.DRAINING:
            self.draining = True
        elif frame.type is MsgType.SUMMARY:
            self.summary = frame.payload
        elif frame.type is MsgType.METRICS_TEXT:
            self.metrics_text = frame.payload.get("text", "")
        elif frame.type is MsgType.ERROR:
            raise ServeError(
                f"server error [{frame.payload.get('code')}]: "
                f"{frame.payload.get('message')}"
            )
        else:
            raise ProtocolError(f"unexpected {frame.type.name} frame from server")


def _hello_payload(
    tenant: str, n_threads: int, config: "dict[str, Any] | None"
) -> "dict[str, Any]":
    payload: dict[str, Any] = {
        "tenant": tenant,
        "n_threads": n_threads,
        "version": protocol.PROTOCOL_VERSION,
    }
    if config:
        payload["config"] = dict(config)
    return payload


def _check_welcome(frame: "Frame | None") -> "dict[str, Any]":
    if frame is None:
        raise ServeError("server closed the connection during the handshake")
    if frame.type is MsgType.ERROR:
        raise AdmissionError(
            str(frame.payload.get("message", "refused")),
            code=str(frame.payload.get("code", "refused")),
        )
    if frame.type is not MsgType.WELCOME:
        raise ProtocolError(f"expected WELCOME, got {frame.type.name}")
    return frame.payload


class ServeClient:
    """Blocking-socket client of the mapping service.

    Usage::

        with ServeClient(host, port, tenant="t0", n_threads=8) as client:
            for tid, now_ns, vaddrs in stream:
                client.send_events(tid, now_ns, vaddrs)
                if client.draining:
                    break
        summary = client.summary   # populated by close()
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str,
        n_threads: int,
        config: "dict[str, Any] | None" = None,
        timeout_s: float = 30.0,
    ) -> None:
        self._state = _ClientState()
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        try:
            protocol.send_frame(
                self._sock,
                protocol.encode(
                    MsgType.HELLO, _hello_payload(tenant, n_threads, config)
                ),
            )
            welcome = _check_welcome(protocol.recv_frame(self._sock))
        except BaseException:
            self._sock.close()
            raise
        self.welcome = welcome
        self._state.session_id = int(welcome["session_id"])
        self._state.credits = int(welcome["credits"])
        self._closed = False

    # -- state views --------------------------------------------------------
    @property
    def session_id(self) -> int:
        """Server-assigned session id."""
        return self._state.session_id

    @property
    def credits(self) -> int:
        """Events the client may still send before awaiting CREDIT."""
        return self._state.credits

    @property
    def mappings(self) -> "list[dict[str, Any]]":
        """MAPPING payloads received so far (oldest first)."""
        return self._state.mappings

    @property
    def draining(self) -> bool:
        """True once the server announced shutdown — stop streaming."""
        return self._state.draining

    @property
    def summary(self) -> "dict[str, Any] | None":
        """The final SUMMARY payload (populated by :meth:`close`)."""
        return self._state.summary

    # -- protocol -----------------------------------------------------------
    def _pump(self) -> None:
        """Read and dispatch exactly one server frame (blocking)."""
        frame = protocol.recv_frame(self._sock)
        if frame is None:
            raise ServeError("server closed the connection")
        self._state.dispatch(frame)

    def send_events(self, tid: int, now_ns: int, vaddrs: np.ndarray) -> None:
        """Stream one event batch, honouring the credit window."""
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        n = int(vaddrs.size)
        while self._state.credits < n and not self._state.draining:
            self._pump()
        if self._state.draining:
            return
        protocol.send_frame(self._sock, protocol.encode_events(tid, now_ns, vaddrs))
        self._state.credits -= n

    def flush(self) -> "dict[str, Any] | None":
        """Force an evaluation now; returns a new mapping if one was pushed."""
        before = len(self._state.mappings)
        acks = self._state._flush_acks
        protocol.send_frame(self._sock, protocol.encode(MsgType.FLUSH))
        while self._state._flush_acks == acks:
            self._pump()
        return self._state.mappings[-1] if len(self._state.mappings) > before else None

    def metrics(self) -> str:
        """Fetch the server's plaintext metrics exposition in-protocol."""
        self._state.metrics_text = None
        protocol.send_frame(self._sock, protocol.encode(MsgType.METRICS))
        while self._state.metrics_text is None:
            self._pump()
        return self._state.metrics_text

    def close(self) -> "dict[str, Any] | None":
        """BYE handshake: drain the session and return the SUMMARY payload."""
        if self._closed:
            return self._state.summary
        self._closed = True
        try:
            protocol.send_frame(self._sock, protocol.encode(MsgType.BYE))
            while self._state.summary is None:
                frame = protocol.recv_frame(self._sock)
                if frame is None:
                    break
                self._state.dispatch(frame)
        except (ConnectionError, ServeError):
            pass
        finally:
            self._sock.close()
        return self._state.summary

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio client — the same protocol logic on streams.

    Create with :meth:`connect`; the coroutine API mirrors
    :class:`ServeClient` (``send_events`` / ``flush`` / ``metrics`` /
    ``close``).
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._state = _ClientState()
        self._closed = False
        self.welcome: "dict[str, Any]" = {}

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str,
        n_threads: int,
        config: "dict[str, Any] | None" = None,
    ) -> "AsyncServeClient":
        """Open a session; raises :class:`~repro.errors.AdmissionError` on
        refusal."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        try:
            await protocol.write_frame(
                writer,
                protocol.encode(
                    MsgType.HELLO, _hello_payload(tenant, n_threads, config)
                ),
            )
            client.welcome = _check_welcome(await protocol.read_frame(reader))
        except BaseException:
            writer.close()
            raise
        client._state.session_id = int(client.welcome["session_id"])
        client._state.credits = int(client.welcome["credits"])
        return client

    @property
    def session_id(self) -> int:
        """Server-assigned session id."""
        return self._state.session_id

    @property
    def credits(self) -> int:
        """Events the client may still send before awaiting CREDIT."""
        return self._state.credits

    @property
    def mappings(self) -> "list[dict[str, Any]]":
        """MAPPING payloads received so far (oldest first)."""
        return self._state.mappings

    @property
    def draining(self) -> bool:
        """True once the server announced shutdown — stop streaming."""
        return self._state.draining

    @property
    def summary(self) -> "dict[str, Any] | None":
        """The final SUMMARY payload (populated by :meth:`close`)."""
        return self._state.summary

    async def _pump(self) -> None:
        frame = await protocol.read_frame(self._reader)
        if frame is None:
            raise ServeError("server closed the connection")
        self._state.dispatch(frame)

    async def send_events(self, tid: int, now_ns: int, vaddrs: np.ndarray) -> None:
        """Stream one event batch, honouring the credit window."""
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        n = int(vaddrs.size)
        while self._state.credits < n and not self._state.draining:
            await self._pump()
        if self._state.draining:
            return
        await protocol.write_frame(
            self._writer, protocol.encode_events(tid, now_ns, vaddrs)
        )
        self._state.credits -= n

    async def flush(self) -> "dict[str, Any] | None":
        """Force an evaluation now; returns a new mapping if one was pushed."""
        before = len(self._state.mappings)
        acks = self._state._flush_acks
        await protocol.write_frame(self._writer, protocol.encode(MsgType.FLUSH))
        while self._state._flush_acks == acks:
            await self._pump()
        return self._state.mappings[-1] if len(self._state.mappings) > before else None

    async def metrics(self) -> str:
        """Fetch the server's plaintext metrics exposition in-protocol."""
        self._state.metrics_text = None
        await protocol.write_frame(self._writer, protocol.encode(MsgType.METRICS))
        while self._state.metrics_text is None:
            await self._pump()
        return self._state.metrics_text or ""

    async def close(self) -> "dict[str, Any] | None":
        """BYE handshake: drain the session and return the SUMMARY payload."""
        if self._closed:
            return self._state.summary
        self._closed = True
        try:
            await protocol.write_frame(self._writer, protocol.encode(MsgType.BYE))
            while self._state.summary is None:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    break
                self._state.dispatch(frame)
        except (ConnectionError, ServeError):
            pass
        finally:
            self._writer.close()
        return self._state.summary
