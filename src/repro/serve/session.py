"""Per-tenant detection state: sharded sharing table + shard matrices.

Each session owns the full SPCD pipeline for one tenant, with the sharing
table split across shards so large tables stay cache-friendly and shard
work can be parallelised later without changing results.  The sharding is a
**slot-space partition**, not an independent per-shard hash: a region's
logical slot is computed exactly as the unsharded table computes it
(``hash_64(region) % logical_size``), then routed to shard
``slot % n_shards`` at local slot ``slot // n_shards``.  Because each
logical slot lives in exactly one shard and keeps its overwrite-on-
collision semantics, the set of (region, sharer, timestamp) states — and
therefore every emitted communication event — is identical to a single
:class:`~repro.core.hashtable.ArrayShareTable` of the same logical size.

Per-shard :class:`~repro.core.commmatrix.CommunicationMatrix` accumulators
take the detected events; the evaluation path reduces them with
:meth:`~repro.core.commmatrix.CommunicationMatrix.merge`.  Event counts are
added as exact float64 integers (< 2^53), so the merged matrix is
**bit-identical** to the unsharded matrix regardless of shard count or
merge order — the property the acceptance test pins against
:func:`repro.serve.evaluator.offline_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.hashtable import DEFAULT_TABLE_SIZE, ArrayShareTable, hash_64_batch
from repro.core.manager import matrix_digest
from repro.errors import ConfigurationError, ProtocolError
from repro.machine.topology import Machine
from repro.serve.evaluator import EvalCadence, MappingEvaluator, MappingUpdate
from repro.serve.protocol import EventBatch
from repro.units import MSEC, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.recorder import JsonlRecorder

__all__ = [
    "SESSION_OVERRIDE_KEYS",
    "SessionConfig",
    "ShardedShareTable",
    "TenantSession",
    "validate_tid",
]


def validate_tid(tid: int, n_threads: int) -> None:
    """Reject a batch whose thread id falls outside the session's threads.

    Shared by :meth:`TenantSession.ingest` and the router's forwarding
    path, so a bad tid produces the identical protocol error whether the
    session runs inline or on a worker — the router rejects it *before*
    the batch enters a ring, keeping worker-side state clean.
    """
    if not 0 <= tid < n_threads:
        raise ProtocolError(
            f"thread id {tid} outside the session's {n_threads} threads"
        )

#: HELLO payload keys a client may override (everything else is server policy)
SESSION_OVERRIDE_KEYS = frozenset(
    {
        "n_threads",
        "granularity",
        "window_ns",
        "table_size",
        "eval_every_events",
        "filter_threshold",
        "filter_enabled",
        "filter_hysteresis",
        "filter_margin",
        "filter_min_events",
        "min_improvement",
        "remap_cooldown_ns",
        "mapper_stickiness",
        "use_greedy_matching",
        "matrix_decay",
    }
)


@dataclass(frozen=True)
class SessionConfig:
    """Detection/evaluation tunables of one tenant session.

    Defaults mirror :class:`repro.core.manager.SpcdConfig` except
    ``matrix_decay`` (1.0 here: exact integer matrices keep the sharded
    pipeline bit-identical to the offline reference; decay is opt-in) and
    the trigger, which is event-count based (``eval_every_events``) instead
    of timer based.
    """

    n_threads: int
    granularity: int = PAGE_SIZE
    window_ns: int = 250 * MSEC
    table_size: int = DEFAULT_TABLE_SIZE
    shards: int = 4
    eval_every_events: int = 8192
    filter_threshold: int = 2
    filter_enabled: bool = True
    filter_hysteresis: float = 1.25
    filter_margin: float = 0.5
    filter_min_events: float = 128.0
    min_improvement: float = 0.85
    remap_cooldown_ns: int = 250 * MSEC
    mapper_stickiness: float = 0.75
    use_greedy_matching: bool = False
    matrix_decay: float = 1.0

    def __post_init__(self) -> None:
        if self.n_threads < 2:
            raise ConfigurationError("a session needs at least 2 threads")
        if self.granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.window_ns <= 0:
            raise ConfigurationError("window_ns must be positive")
        if self.table_size <= 0:
            raise ConfigurationError("table_size must be positive")
        if self.shards <= 0:
            raise ConfigurationError("shards must be positive")
        if self.eval_every_events <= 0:
            raise ConfigurationError("eval_every_events must be positive")
        if not 0.0 < self.matrix_decay <= 1.0:
            raise ConfigurationError("matrix_decay must be in (0, 1]")

    @property
    def effective_table_size(self) -> int:
        """``table_size`` rounded up to a multiple of ``shards``.

        The logical slot space must split evenly so the shard partition is
        exact; the offline reference uses this same size.
        """
        return -(-self.table_size // self.shards) * self.shards

    def memory_bytes(self) -> int:
        """Estimated resident bytes of this session's detection state.

        Slot arrays (region id + per-thread timestamps) plus the per-shard
        communication matrices — the figure admission control charges
        against the per-tenant memory cap.
        """
        table = self.effective_table_size * 8 * (1 + self.n_threads)
        matrices = self.shards * self.n_threads * self.n_threads * 8
        return table + matrices

    @classmethod
    def from_overrides(
        cls, defaults: "SessionConfig", overrides: "dict[str, object]"
    ) -> "SessionConfig":
        """Apply a HELLO config dict onto server defaults.

        Only :data:`SESSION_OVERRIDE_KEYS` are accepted; unknown keys raise
        :class:`~repro.errors.ProtocolError` so a typo in a client config
        fails loudly instead of being silently ignored.
        """
        unknown = set(overrides) - SESSION_OVERRIDE_KEYS
        if unknown:
            raise ProtocolError(f"unknown session config keys: {sorted(unknown)}")
        try:
            return replace(defaults, **overrides)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad session config: {exc}") from exc


class ShardedShareTable:
    """A slot-space-partitioned :class:`ArrayShareTable`.

    Exposes the same batch-touch contract as the unsharded table but routes
    every logical slot to ``shards[slot % n_shards]`` at local slot
    ``slot // n_shards``; see the module docstring for why this is an exact
    partition.  *size* must be a multiple of *n_shards* (use
    :attr:`SessionConfig.effective_table_size`).
    """

    def __init__(self, size: int, n_threads: int, n_shards: int = 4) -> None:
        if n_shards <= 0:
            raise ConfigurationError("n_shards must be positive")
        if size <= 0 or size % n_shards != 0:
            raise ConfigurationError("size must be a positive multiple of n_shards")
        self.size = size
        self.n_shards = n_shards
        self.shards = [ArrayShareTable(size // n_shards, n_threads) for _ in range(n_shards)]

    def touch_batch(
        self, regions: np.ndarray, tid: int, now_ns: int, window_ns: int
    ) -> "tuple[list[tuple[int, np.ndarray]], int]":
        """Touch a batch of regions; returns per-shard partner vectors.

        The result is ``([(shard_id, partners), ...], windowed_out)`` where
        each ``partners`` vector is what the shard's table emitted — the
        concatenation over shards is a permutation of what the unsharded
        table would emit for the same batch (partner multisets per event
        are identical; only inter-shard ordering differs, and matrix
        accumulation is order-insensitive).
        """
        regions = np.asarray(regions, dtype=np.int64)
        slots = (hash_64_batch(regions) % np.uint64(self.size)).astype(np.int64)
        shard_ids = slots % self.n_shards
        local_slots = slots // self.n_shards
        out: list[tuple[int, np.ndarray]] = []
        windowed_out = 0
        for shard_id in range(self.n_shards):
            mask = shard_ids == shard_id
            if not np.any(mask):
                continue
            partners, windowed = self.shards[shard_id].touch_batch_at(
                local_slots[mask], regions[mask], tid, now_ns, window_ns
            )
            windowed_out += windowed
            if partners.size:
                out.append((shard_id, partners))
        return out, windowed_out

    # -- aggregate counters -------------------------------------------------
    @property
    def collisions(self) -> int:
        """Overwrite events summed over shards."""
        return sum(s.collisions for s in self.shards)

    @property
    def inserts(self) -> int:
        """Fresh-slot inserts summed over shards."""
        return sum(s.inserts for s in self.shards)

    @property
    def lookups(self) -> int:
        """Touches summed over shards."""
        return sum(s.lookups for s in self.shards)

    def shared_region_count(self) -> int:
        """Live entries with >= 2 sharers, summed over shards."""
        return sum(s.shared_region_count() for s in self.shards)


class TenantSession:
    """One tenant's full pipeline: sharded table, shard matrices, evaluator.

    Synchronous and asyncio-agnostic — the server feeds it decoded
    :class:`~repro.serve.protocol.EventBatch` objects from the session's
    ingest queue; tests and the offline tooling can drive it directly.
    """

    def __init__(
        self,
        tenant: str,
        config: SessionConfig,
        machine: Machine,
        *,
        session_id: int = 0,
        recorder: "JsonlRecorder | None" = None,
    ) -> None:
        cfg = config
        self.tenant = tenant
        self.config = cfg
        self.session_id = session_id
        self.recorder = recorder
        self.table = ShardedShareTable(cfg.effective_table_size, cfg.n_threads, cfg.shards)
        self.shard_matrices = [CommunicationMatrix(cfg.n_threads) for _ in range(cfg.shards)]
        self.evaluator = MappingEvaluator(machine, cfg)
        self._cadence = EvalCadence(cfg.eval_every_events)
        self.events_seen = 0
        self.batches_seen = 0
        self.comm_events = 0
        self.windowed_out = 0
        self.last_now_ns = 0
        self.updates: list[MappingUpdate] = []

    def ingest(self, batch: EventBatch) -> "list[MappingUpdate]":
        """Feed one event batch; returns any mapping updates it triggered.

        Detection first (sharded touch + per-shard matrix scatter), then as
        many evaluation ticks as the event-count cadence owes — the same
        order :func:`~repro.serve.evaluator.offline_reference` replays.
        """
        cfg = self.config
        validate_tid(batch.tid, cfg.n_threads)
        n = batch.n_events
        if n:
            regions = batch.vaddrs // cfg.granularity
            per_shard, windowed = self.table.touch_batch(
                regions, batch.tid, batch.now_ns, cfg.window_ns
            )
            for shard_id, partners in per_shard:
                self.shard_matrices[shard_id].add_events(batch.tid, partners)
                self.comm_events += int(partners.size)
            self.windowed_out += windowed
            self.events_seen += n
            self.batches_seen += 1
            self.last_now_ns = max(self.last_now_ns, int(batch.now_ns))
        updates: list[MappingUpdate] = []
        for _ in range(self._cadence.due(self.events_seen)):
            update = self.evaluate()
            if update is not None:
                updates.append(update)
        return updates

    def merged_matrix(self) -> CommunicationMatrix:
        """Reduce the shard matrices into one (exact; order-insensitive)."""
        merged = CommunicationMatrix(self.config.n_threads)
        for shard_matrix in self.shard_matrices:
            merged.merge(shard_matrix)
        return merged

    def evaluate(self, force: bool = False) -> "MappingUpdate | None":
        """Run one evaluation over the merged matrix.

        Emits a :class:`~repro.obs.events.ServeEvaluation` trace event when
        a recorder is attached; applies ``matrix_decay`` afterwards (a
        no-op at the service default of 1.0).
        """
        cfg = self.config
        merged = self.merged_matrix()
        digest = matrix_digest(merged)
        verdict, update = self.evaluator.decide(
            merged,
            comm_events=self.comm_events,
            events_seen=self.events_seen,
            now_ns=self.last_now_ns,
            digest=digest,
            force=force,
        )
        if update is not None:
            self.updates.append(update)
        if self.recorder is not None:
            from repro.obs.events import ServeEvaluation

            self.recorder.emit(
                ServeEvaluation(
                    tenant=self.tenant,
                    session_id=self.session_id,
                    evaluation=self.evaluator.evaluations,
                    events_seen=self.events_seen,
                    comm_events=self.comm_events,
                    verdict=verdict,
                    matrix_digest=digest,
                    mapping=tuple(update.mapping) if update else None,
                )
            )
        if cfg.matrix_decay < 1.0:
            for shard_matrix in self.shard_matrices:
                shard_matrix.decay(cfg.matrix_decay)
        return update

    def final_digest(self) -> str:
        """Digest of the current merged matrix (the drain-flush digest)."""
        return matrix_digest(self.merged_matrix())

    def summary(self) -> "dict[str, object]":
        """Session summary — the SUMMARY frame payload and trace-event body."""
        return {
            "tenant": self.tenant,
            "session_id": self.session_id,
            "events": self.events_seen,
            "batches": self.batches_seen,
            "comm_events": self.comm_events,
            "windowed_out": self.windowed_out,
            "evaluations": self.evaluator.evaluations,
            "remaps": self.evaluator.remaps,
            "shared_regions": self.table.shared_region_count(),
            "collisions": self.table.collisions,
            "inserts": self.table.inserts,
            "matrix_digest": self.final_digest(),
            "mapping": [int(p) for p in self.evaluator.current],
        }
