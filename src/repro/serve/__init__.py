"""``repro.serve`` — SPCD mapping as a service.

An asyncio daemon that turns the offline SPCD pipeline into a
multi-tenant service: clients stream page-fault event batches over a
length-prefixed framed protocol, each session runs the sharded detection
pipeline (sharing table + communication matrix shards) and a periodic
filter + hierarchical-mapper evaluation, and accepted remaps are pushed
back as MAPPING frames.  The numeric path is engineered to stay
**bit-identical** to the offline engine — see
:func:`repro.serve.evaluator.offline_reference` for the replay that pins
it.

Layout:

* :mod:`~repro.serve.protocol` — wire framing and the credit flow-control
  vocabulary;
* :mod:`~repro.serve.session` — per-tenant sharded detection state;
* :mod:`~repro.serve.evaluator` — evaluation gates + the offline replay;
* :mod:`~repro.serve.server` — the daemon (admission, backpressure,
  drain);
* :mod:`~repro.serve.router` — the multi-process tier: consistent-hash
  tenant router, supervised detection workers, crash migration;
* :mod:`~repro.serve.shm` — the shared-memory event ring under the
  router's zero-copy hot path;
* :mod:`~repro.serve.client` — sync and async clients + the synthetic
  load generator;
* :mod:`~repro.serve.metrics` — the live metrics registry behind
  ``/metrics``;
* ``python -m repro.serve`` — the CLI entry point.
"""

from repro.serve.client import AsyncServeClient, ServeClient, synthetic_fault_stream
from repro.serve.evaluator import (
    EvalCadence,
    MappingEvaluator,
    MappingUpdate,
    ReplayResult,
    offline_reference,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import PROTOCOL_VERSION, EventBatch, Frame, MsgType
from repro.serve.router import HashRing, RoutedMappingServer
from repro.serve.server import MappingServer, ServeConfig
from repro.serve.session import SessionConfig, ShardedShareTable, TenantSession
from repro.serve.shm import EventRing

__all__ = [
    "AsyncServeClient",
    "EvalCadence",
    "EventBatch",
    "EventRing",
    "Frame",
    "HashRing",
    "MappingEvaluator",
    "MappingServer",
    "MappingUpdate",
    "MetricsRegistry",
    "MsgType",
    "PROTOCOL_VERSION",
    "ReplayResult",
    "RoutedMappingServer",
    "ServeClient",
    "ServeConfig",
    "SessionConfig",
    "ShardedShareTable",
    "TenantSession",
    "offline_reference",
    "synthetic_fault_stream",
]
