"""Shared-memory ring buffer: the router → worker zero-copy event path.

One :class:`EventRing` connects the router process to one detection
worker.  The router appends variable-length records (a session id plus
the verbatim EVENTS wire body); the worker maps the same segment and
decodes each record **in place** — ``np.frombuffer`` over a memoryview of
the shared pages — so event payloads cross the process boundary without
being re-framed over a socket or pickled through a pipe.  The only copy
on the path is the single ``memcpy`` that publishes the record into the
ring (inherent to any ring) and the one ``astype`` that converts the
wire's big-endian addresses to native order (inherent to the wire
format; the single-process server pays the same one).

Concurrency model — strictly single-producer / single-consumer, in the
seqlock idiom:

* ``tail`` is written only by the producer, ``head`` only by the
  consumer; both are monotonically increasing absolute byte counters
  (position = counter % capacity), stored as 8-byte aligned words so the
  publishing store is a single machine write on every platform CPython
  runs on;
* the producer writes the record body *first* and publishes it by
  advancing ``tail`` afterwards; the consumer reads ``tail`` first and
  only then the bytes below it — a record is therefore never observed
  half-written;
* records are always **contiguous**: when a record would straddle the
  wrap point the producer emits a 4-byte wrap marker (or, with fewer
  than 4 bytes of tail room, relies on the implicit skip) and restarts
  at offset 0.  The consumer applies the identical skip rule, so a
  reader can never tear a frame at the wrap — pinned by the wrap tests
  in ``tests/test_serve_router.py``.

A record larger than :meth:`EventRing.max_record_bytes` (oversize
frame) is rejected with :class:`~repro.errors.ProtocolError` — the
router turns that into an ERROR frame for the offending client instead
of deadlocking on space that will never appear.  The cap is
**position-independent** (``capacity // 2 - 8``): any record under it
fits at every tail offset, including the worst case where a wrap marker
burns the whole tail room, so a full ring always drains and ``try_push``
can never return ``False`` forever.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any

from repro.errors import ConfigurationError, ProtocolError

__all__ = ["EventRing", "RECORD_OVERHEAD"]

#: ring header: tail (producer counter), head (consumer counter), capacity
_CTRL = struct.Struct("<QQQ")
#: control area is padded to cache-line granularity
_HEADER_BYTES = 64
#: per-record length prefix
_LEN = struct.Struct("<I")
#: a length value that can never be a real record: the wrap marker
_WRAP_MARK = 0xFFFFFFFF
#: bytes of ring space one record costs beyond its payload
RECORD_OVERHEAD = _LEN.size

_TAIL_OFF = 0
_HEAD_OFF = 8
_CAP_OFF = 16


@contextmanager
def _attacher_untracked():
    """Suppress resource-tracker registration while *attaching* a segment.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even when it did not create it (python/cpython#82300), which
    would unlink the segment out from under the creator — and with forked
    workers the tracker process is *shared*, so even an unregister-after
    workaround races the creator's own registration.  Only the creator
    may own cleanup, so attachers simply never register.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - always present on CPython
        yield
        return
    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - nothing else here
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


class EventRing:
    """A single-producer single-consumer ring over ``SharedMemory``.

    Create with :meth:`create` in the router, open with :meth:`attach`
    (by name) in the worker.  The producer calls :meth:`try_push`; the
    consumer alternates :meth:`pop` (a zero-copy view of the next record)
    and :meth:`advance` (release it).  ``occupancy`` is readable from
    either side — the router samples it into the per-worker ring gauge.
    """

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._buf = shm.buf
        (tail, head, capacity) = _CTRL.unpack_from(self._buf, 0)
        if capacity == 0 or _HEADER_BYTES + capacity > shm.size:
            raise ConfigurationError(f"segment {shm.name} is not an EventRing")
        self.capacity = int(capacity)
        self._pending: "int | None" = None  # advance target of the popped record

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "EventRing":
        """Allocate a fresh ring of *capacity* data bytes (router side)."""
        if cls.record_cap(capacity) < 1:
            raise ConfigurationError("ring capacity is too small to hold any record")
        shm = shared_memory.SharedMemory(create=True, size=_HEADER_BYTES + capacity)
        _CTRL.pack_into(shm.buf, 0, 0, 0, capacity)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "EventRing":
        """Map an existing ring by segment name (worker side)."""
        with _attacher_untracked():
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        """The shared-memory segment name (pass to :meth:`attach`)."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._buf = None  # release exported memoryviews before shm.close()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a pop() view is still live
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after both sides close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- counters -----------------------------------------------------------
    def _load(self, offset: int) -> int:
        return int.from_bytes(self._buf[offset : offset + 8], "little")

    def _store(self, offset: int, value: int) -> None:
        self._buf[offset : offset + 8] = value.to_bytes(8, "little")

    @property
    def occupancy(self) -> int:
        """Bytes currently enqueued (published but not yet consumed)."""
        return self._load(_TAIL_OFF) - self._load(_HEAD_OFF)

    @staticmethod
    def record_cap(capacity: int) -> int:
        """Largest payload guaranteed to fit a *capacity*-byte ring at
        **any** tail position.

        Worst case the record needs a wrap marker plus the full tail
        room it skips: advance = room + len_prefix + L with
        room < len_prefix + L, so the advance stays within an
        otherwise-empty ring iff 2 * (len_prefix + L) <= capacity.  A
        position-dependent cap would livelock: a larger record could
        pass the check yet never fit once the tail drifted near the
        wrap point, and try_push would return False forever.
        """
        return capacity // 2 - 2 * _LEN.size

    def max_record_bytes(self) -> int:
        """Largest record payload this ring can carry at any offset."""
        return self.record_cap(self.capacity)

    # -- producer -----------------------------------------------------------
    def _advance_of(self, counter: int, length: int) -> int:
        """Total counter advance to place a *length*-byte record at *counter*."""
        pos = counter % self.capacity
        room = self.capacity - pos
        if room < _LEN.size:
            return room + _LEN.size + length  # implicit skip, record at 0
        if room < _LEN.size + length:
            return room + _LEN.size + length  # wrap marker, record at 0
        return _LEN.size + length

    def try_push(self, payload: "bytes | memoryview", *extra: "bytes | memoryview") -> bool:
        """Publish one record of *payload* (+ *extra* parts); False when full.

        Raises :class:`~repro.errors.ProtocolError` for a record that can
        never fit, so callers distinguish "wait for the consumer" from
        "reject the frame".
        """
        length = len(payload) + sum(len(e) for e in extra)
        if length > self.max_record_bytes():
            raise ProtocolError(
                f"record of {length} bytes exceeds the ring's "
                f"{self.max_record_bytes()}-byte record cap"
            )
        tail = self._load(_TAIL_OFF)
        head = self._load(_HEAD_OFF)
        advance = self._advance_of(tail, length)
        if advance > self.capacity - (tail - head):
            return False
        pos = tail % self.capacity
        room = self.capacity - pos
        if room < _LEN.size:
            pos = 0  # implicit skip: consumer applies the same rule
        elif room < _LEN.size + length:
            _LEN.pack_into(self._buf, _HEADER_BYTES + pos, _WRAP_MARK)
            pos = 0
        _LEN.pack_into(self._buf, _HEADER_BYTES + pos, length)
        offset = _HEADER_BYTES + pos + _LEN.size
        self._buf[offset : offset + len(payload)] = payload
        offset += len(payload)
        for part in extra:
            self._buf[offset : offset + len(part)] = part
            offset += len(part)
        self._store(_TAIL_OFF, tail + advance)  # publish (single 8-byte store)
        return True

    # -- consumer -----------------------------------------------------------
    def pop(self) -> "memoryview | None":
        """A zero-copy view of the next record, or ``None`` when empty.

        The view stays valid until :meth:`advance`; decode out of it
        directly (``np.frombuffer`` accepts it) and advance only after
        the record has been fully consumed.
        """
        if self._pending is not None:
            raise ConfigurationError("pop() called before advance()")
        head = self._load(_HEAD_OFF)
        tail = self._load(_TAIL_OFF)
        if head == tail:
            return None
        pos = head % self.capacity
        room = self.capacity - pos
        skipped = 0
        if room < _LEN.size:
            skipped, pos = room, 0
        else:
            (length,) = _LEN.unpack_from(self._buf, _HEADER_BYTES + pos)
            if length == _WRAP_MARK:
                skipped, pos = room, 0
        (length,) = _LEN.unpack_from(self._buf, _HEADER_BYTES + pos)
        start = _HEADER_BYTES + pos + _LEN.size
        self._pending = head + skipped + _LEN.size + length
        return self._buf[start : start + length]

    def advance(self) -> None:
        """Release the record returned by the last :meth:`pop`."""
        if self._pending is None:
            raise ConfigurationError("advance() without a pending pop()")
        self._store(_HEAD_OFF, self._pending)
        self._pending = None

    # -- diagnostics --------------------------------------------------------
    def stats(self) -> "dict[str, Any]":
        """Occupancy snapshot (router-side metrics sampling)."""
        tail = self._load(_TAIL_OFF)
        head = self._load(_HEAD_OFF)
        return {
            "capacity": self.capacity,
            "occupancy": tail - head,
            "fill": (tail - head) / self.capacity,
            "pushed_bytes": tail,
        }
