"""Wire protocol of the mapping service: length-prefixed framed messages.

Every frame is ``!IB`` — a 4-byte big-endian body length and a 1-byte
message type — followed by the body.  Control messages carry a JSON object;
the hot-path :data:`MsgType.EVENTS` frame carries a struct-packed fault
event batch (``!qqI`` header: thread id, virtual timestamp, event count,
then ``count`` big-endian int64 virtual addresses), so a tenant streaming
hundreds of thousands of events never pays JSON encoding on the data path.
A JSON spelling of the same batch (:data:`MsgType.EVENTS_JSON`) exists for
hand-rolled clients.

Flow control is credit-based: :data:`MsgType.WELCOME` grants the client an
initial window of *events* it may have in flight; every processed batch is
acknowledged with a :data:`MsgType.CREDIT` frame returning its event count
to the window.  A client that exhausts its credits must stop sending and
read frames until credits arrive — the server therefore never buffers more
than one window per tenant, and a slow tenant is throttled (its sender
blocks) rather than having events dropped silently.

Both a blocking-socket and an asyncio spelling of the frame I/O live here
so the sync client, the async client and the server share one codec.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "EventBatch",
    "Frame",
    "MAX_FRAME_BYTES",
    "MsgType",
    "PROTOCOL_VERSION",
    "decode_events",
    "decode_events_scalar",
    "encode",
    "encode_events",
    "events_body",
    "parse_body",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

#: bump on incompatible framing/semantics changes; HELLO carries it
PROTOCOL_VERSION = 1

#: hard cap on one frame's body — a malformed length prefix must not make
#: the receiver allocate unbounded memory
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!IB")
_EVENTS_HEADER = struct.Struct("!qqI")


class MsgType(IntEnum):
    """Frame type byte."""

    HELLO = 1  # client -> server: open a session (JSON)
    WELCOME = 2  # server -> client: session accepted, initial credits (JSON)
    EVENTS = 3  # client -> server: struct-packed fault event batch
    EVENTS_JSON = 4  # client -> server: JSON fault event batch
    CREDIT = 5  # server -> client: events returned to the send window (JSON)
    MAPPING = 6  # server -> client: new thread->PU mapping decision (JSON)
    FLUSH = 7  # client -> server: force an evaluation now (JSON)
    BYE = 8  # client -> server: done streaming, drain me (JSON)
    SUMMARY = 9  # server -> client: final session summary (JSON)
    ERROR = 10  # server -> client: refusal / protocol violation (JSON)
    DRAINING = 11  # server -> client: server is shutting down (JSON)
    METRICS = 12  # client -> server: request a metrics snapshot (JSON)
    METRICS_TEXT = 13  # server -> client: plaintext metrics exposition (JSON)


@dataclass(frozen=True)
class EventBatch:
    """One tenant thread's fault events at one point in virtual time.

    Mirrors the shape of :class:`repro.mem.fault.FaultBatch` — one thread,
    one timestamp, a vector of faulting virtual addresses — so a batch can
    be replayed through the offline detection engine unchanged.

    ``raw`` is the wire body the batch was decoded from, when one exists:
    the router forwards those bytes into a worker's shared-memory ring
    verbatim, so the hot path never re-frames the payload.
    """

    tid: int
    now_ns: int
    vaddrs: np.ndarray
    raw: "bytes | None" = field(default=None, compare=False, repr=False)

    @property
    def n_events(self) -> int:
        """Number of fault events in the batch."""
        return int(self.vaddrs.size)

    def body(self) -> bytes:
        """The struct-packed EVENTS body (``raw`` when present, else packed)."""
        if self.raw is not None:
            return self.raw
        return events_body(self.tid, self.now_ns, self.vaddrs)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type and its parsed payload."""

    type: MsgType
    payload: Any  # dict for JSON bodies, EventBatch for EVENTS


# -- encoding ---------------------------------------------------------------
def encode(msg_type: MsgType, payload: "dict[str, Any] | None" = None) -> bytes:
    """Encode a JSON-bodied frame."""
    body = json.dumps(payload or {}, separators=(",", ":")).encode("utf-8")
    return _frame(msg_type, body)


def events_body(tid: int, now_ns: int, vaddrs: np.ndarray) -> bytes:
    """The struct-packed body of an EVENTS frame (header + big-endian i64s)."""
    vaddrs = np.ascontiguousarray(np.asarray(vaddrs, dtype=np.int64))
    body = _EVENTS_HEADER.pack(int(tid), int(now_ns), int(vaddrs.size))
    return body + vaddrs.astype(">i8", copy=False).tobytes()


def encode_events(tid: int, now_ns: int, vaddrs: np.ndarray) -> bytes:
    """Encode a fault event batch as a struct-packed EVENTS frame."""
    return _frame(MsgType.EVENTS, events_body(tid, now_ns, vaddrs))


def _frame(msg_type: MsgType, body: bytes) -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds the cap")
    return _HEADER.pack(len(body), int(msg_type)) + body


# -- decoding ---------------------------------------------------------------
def decode_events(body: "bytes | memoryview") -> EventBatch:
    """Decode the body of a struct-packed EVENTS frame (vectorised).

    The address vector is read in one ``np.frombuffer`` over the body —
    a zero-copy view when *body* is a shared-memory ring record — with a
    single ``astype`` to native byte order.  Accepts any buffer, so a
    worker can decode directly out of the ring without materialising the
    record first.
    """
    if len(body) < _EVENTS_HEADER.size:
        raise ProtocolError("truncated EVENTS frame")
    tid, now_ns, n = _EVENTS_HEADER.unpack_from(body)
    payload = body[_EVENTS_HEADER.size :]
    if len(payload) != 8 * n:
        raise ProtocolError(f"EVENTS frame declares {n} events, carries {len(payload)} bytes")
    vaddrs = np.frombuffer(payload, dtype=">i8").astype(np.int64)
    raw = body if isinstance(body, bytes) else None
    return EventBatch(tid=tid, now_ns=now_ns, vaddrs=vaddrs, raw=raw)


def decode_events_scalar(body: "bytes | memoryview") -> EventBatch:
    """Reference decoder: one ``struct`` unpack per event.

    Kept only as the differential-testing twin of :func:`decode_events` —
    the parity test asserts both produce bit-identical batches for any
    body.  Never on the hot path.
    """
    if len(body) < _EVENTS_HEADER.size:
        raise ProtocolError("truncated EVENTS frame")
    tid, now_ns, n = _EVENTS_HEADER.unpack_from(body)
    payload = body[_EVENTS_HEADER.size :]
    if len(payload) != 8 * n:
        raise ProtocolError(f"EVENTS frame declares {n} events, carries {len(payload)} bytes")
    one = struct.Struct("!q")
    vaddrs = np.empty(n, dtype=np.int64)
    for i in range(n):
        vaddrs[i] = one.unpack_from(payload, 8 * i)[0]
    raw = body if isinstance(body, bytes) else None
    return EventBatch(tid=tid, now_ns=now_ns, vaddrs=vaddrs, raw=raw)


def parse_body(type_byte: int, body: bytes) -> Frame:
    """Parse a raw ``(type, body)`` pair into a typed :class:`Frame`."""
    try:
        msg_type = MsgType(type_byte)
    except ValueError as exc:
        raise ProtocolError(f"unknown frame type {type_byte}") from exc
    if msg_type is MsgType.EVENTS:
        return Frame(msg_type, decode_events(body))
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON body in {msg_type.name} frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"{msg_type.name} body must be a JSON object")
    if msg_type is MsgType.EVENTS_JSON:
        try:
            batch = EventBatch(
                tid=int(payload["tid"]),
                now_ns=int(payload["now_ns"]),
                vaddrs=np.asarray(payload["vaddrs"], dtype=np.int64),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad EVENTS_JSON payload: {exc}") from exc
        return Frame(MsgType.EVENTS, batch)
    return Frame(msg_type, payload)


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")


# -- blocking-socket I/O ----------------------------------------------------
def send_frame(sock: socket.socket, data: bytes) -> None:
    """Send one already-encoded frame over a blocking socket."""
    sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> "bytes | None":
    """Read exactly *n* bytes; ``None`` on a clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> "Frame | None":
    """Read and parse one frame; ``None`` on a clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, type_byte = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length) if length else b""
    if length and body is None:
        raise ProtocolError("connection closed before frame body")
    return parse_body(type_byte, body or b"")


# -- asyncio I/O ------------------------------------------------------------
async def write_frame(writer: asyncio.StreamWriter, data: bytes) -> None:
    """Write one already-encoded frame and drain the transport."""
    writer.write(data)
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> "Frame | None":
    """Read and parse one frame; ``None`` on a clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    length, type_byte = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed before frame body") from exc
    return parse_body(type_byte, body)
