"""Multi-process serving tier: consistent-hash router + detection workers.

The single asyncio process tops out around ~275k events/s (see
``benchmarks/results/BENCH_serve.json``) because protocol I/O and SPCD
detection compete for one interpreter.  This module splits them: the
**router** process keeps every client socket — admission, credit
enforcement, frame decode, drain — while N supervised **worker**
processes own the per-tenant :class:`~repro.serve.session.TenantSession`
pipelines.  Tenants are assigned to workers by consistent hashing
(:class:`HashRing`), so detection state never has to be shared or folded
across workers: every tenant's whole pipeline lives on exactly one
worker, and the routed service is **bit-identical** to the
single-process server — same matrix digests, same mapping decisions,
same trace events — for any worker count.

Hot path: the router forwards each binary EVENTS body *verbatim* into
the worker's shared-memory ring (:class:`~repro.serve.shm.EventRing`) —
no re-framing, no pickling; the worker decodes with ``np.frombuffer``
directly over the shared pages.  Control traffic (session open, flush,
end, stop) travels over a pipe, and worker responses (per-batch acks
with mapping updates, trace events, flush/end results) over another;
pipe commands are only issued for a session once its ring batches are
fully acknowledged, which restores the single-process server's total
per-session order.

Fault tolerance reuses :class:`~repro.engine.pool.SupervisedProcess`:
the router journals every forwarded batch and flush per session, so
when a worker dies (pipe EOF, the :func:`~repro.engine.pool.run_tasks`
crash idiom) it is respawned with a fresh ring after exponential
backoff and every affected tenant's journal is **replayed** —
regenerating the worker-side detection state deterministically, digests
unchanged.  Acks/credits/trace events regenerated for work already
delivered before the crash are suppressed by count, so clients see
every credit exactly once.  A worker that exhausts its respawn budget
is retired from the hash ring and its tenants replay into the next
worker along the ring.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
import time
from bisect import bisect_right
from typing import Any

from repro.engine.pool import SupervisedProcess, _pick_context
from repro.errors import AdmissionError, ConfigurationError, ProtocolError
from repro.obs.events import (
    ServeSessionEnd,
    ServeTenantMigrated,
    ServeWorkerCrash,
    ServeWorkerStart,
)
from repro.serve import protocol
from repro.serve.protocol import EventBatch, MsgType
from repro.serve.server import MappingServer, _Connection
from repro.serve.session import SessionConfig, TenantSession, validate_tid
from repro.serve.shm import EventRing

__all__ = ["HashRing", "RoutedMappingServer"]

#: ring-record prefix: the session id the EVENTS body belongs to
_SID = struct.Struct("<I")
#: virtual points per worker on the hash ring
_REPLICAS = 64
#: journal entry marking a forced evaluation between two batches
_FLUSH = ("flush",)


class _WorkerGone(Exception):
    """Internal: the target worker crashed mid-operation; replay recovers."""


class HashRing:
    """Consistent-hash assignment of tenant names to worker ids.

    Each worker owns ``replicas`` virtual points (``blake2b("{id}#{r}")``);
    a tenant maps to the owner of the first point clockwise of its own
    hash.  Assignment is therefore stable across worker *respawns* (the
    ring never changes) and minimally disruptive across worker
    *retirement* (only the retired worker's arcs move).
    """

    def __init__(self, replicas: int = _REPLICAS) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: "list[tuple[int, int]]" = []  # sorted (point, worker_id)
        self._keys: "list[int]" = []

    @staticmethod
    def _point(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _rebuild(self, pairs: "list[tuple[int, int]]") -> None:
        self._ring = sorted(pairs)
        self._keys = [p for p, _ in self._ring]

    def add(self, worker_id: int) -> None:
        """Place *worker_id*'s virtual points on the ring."""
        fresh = [
            (self._point(f"{worker_id}#{replica}"), worker_id)
            for replica in range(self.replicas)
        ]
        self._rebuild(self._ring + fresh)

    def remove(self, worker_id: int) -> None:
        """Retire *worker_id*: only its arcs are redistributed."""
        self._rebuild([pair for pair in self._ring if pair[1] != worker_id])

    @property
    def workers(self) -> "list[int]":
        """Worker ids currently on the ring, sorted."""
        return sorted({wid for _, wid in self._ring})

    def assign(self, tenant: str) -> int:
        """The worker owning *tenant* (deterministic for a fixed ring)."""
        if not self._ring:
            raise ConfigurationError("hash ring is empty")
        index = bisect_right(self._keys, self._point(tenant)) % len(self._ring)
        return self._ring[index][1]


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
class _PipeRecorder:
    """Worker-side recorder shim: trace events travel home over the pipe.

    The router re-emits them into its own recorder, preserving the
    single-process server's event stream shape (and letting replay
    suppression drop regenerated duplicates).
    """

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def emit(self, event: Any) -> None:
        self._conn.send(("trace", int(getattr(event, "session_id", 0)), event))

    def close(self) -> None:  # pragma: no cover - interface parity
        pass


def _session_end_info(session: TenantSession) -> "dict[str, Any]":
    """The ServeSessionEnd fields only the worker can compute."""
    return {
        "events": session.events_seen,
        "batches": session.batches_seen,
        "comm_events": session.comm_events,
        "windowed_out": session.windowed_out,
        "evaluations": session.evaluator.evaluations,
        "remaps": session.evaluator.remaps,
        "matrix_digest": session.final_digest(),
        "mapping": [int(p) for p in session.evaluator.current],
    }


def _worker_main(worker_id, ring_name, cmd_conn, resp_conn, machine):  # pragma: no cover - subprocess
    """Detection worker: drain the ring, answer commands, ack every batch.

    Single-threaded and synchronous — all asyncio stays in the router.
    The router always writes a session's ``open`` command before pushing
    its first ring record (program order on one thread), so a record with
    an unknown session id means the open is already sitting in the command
    pipe — drain it and retry before concluding the session is gone.  A
    record whose session is *still* unknown after that belongs to a failed
    or ended session; it is acknowledged anyway so the router's unacked
    accounting (which gates flush and end commands) always drains.
    """
    ring = EventRing.attach(ring_name)
    recorder = _PipeRecorder(resp_conn)
    sessions: "dict[int, TenantSession]" = {}
    running = True

    def drain_cmds() -> bool:
        """Apply every queued control command; True when any was seen."""
        nonlocal running
        progressed = False
        while running and cmd_conn.poll(0):
            message = cmd_conn.recv()
            progressed = True
            op = message[0]
            if op == "open":
                _, sid, tenant, session_cfg = message
                sessions[sid] = TenantSession(
                    tenant,
                    session_cfg,
                    machine,
                    session_id=sid,
                    recorder=recorder,
                )
            elif op == "flush":
                sid = message[1]
                session = sessions.get(sid)
                if session is None:
                    resp_conn.send(("fail", sid, "flush for unknown session"))
                    continue
                update = session.evaluate(force=True)
                resp_conn.send(
                    ("flushed", sid, update.to_payload() if update else None)
                )
            elif op == "end":
                _, sid, reason = message
                session = sessions.pop(sid, None)
                if session is None:
                    resp_conn.send(("fail", sid, "end for unknown session"))
                    continue
                update = (
                    session.evaluate(force=True)
                    if reason in ("bye", "drain")
                    else None
                )
                resp_conn.send(
                    (
                        "ended",
                        sid,
                        update.to_payload() if update else None,
                        session.summary(),
                        _session_end_info(session),
                    )
                )
            elif op == "stop":
                running = False
        return progressed

    try:
        while running:
            progressed = False
            while running:
                record = ring.pop()
                if record is None:
                    break
                sid = _SID.unpack_from(record)[0]
                # decode in place over the shared pages; the astype inside
                # decode_events copies the addresses out, so the slot can
                # be released before ingest
                batch = protocol.decode_events(record[4:])
                del record
                ring.advance()
                progressed = True
                session = sessions.get(sid)
                if session is None:
                    # a record can land in the ring before this process
                    # first polls the pipe (fresh spawn draining a replay);
                    # its open command is guaranteed to be readable by now
                    drain_cmds()
                    session = sessions.get(sid)
                if session is None:
                    # failed/ended session: ack with no updates so the
                    # router's credit and idle tracking still drain
                    resp_conn.send(("ack", sid, batch.n_events, [], 0.0))
                    continue
                try:
                    started = time.perf_counter()
                    updates = session.ingest(batch)
                    elapsed = time.perf_counter() - started
                except Exception as exc:  # noqa: BLE001 - forwarded upstream
                    resp_conn.send(("fail", sid, f"{type(exc).__name__}: {exc}"))
                    sessions.pop(sid, None)
                    continue
                resp_conn.send(
                    (
                        "ack",
                        sid,
                        batch.n_events,
                        [u.to_payload() for u in updates],
                        elapsed,
                    )
                )
            progressed = drain_cmds() or progressed
            if not progressed and running:
                # nothing to do: block briefly on the command pipe (ring
                # pushes have no wakeup; 0.5 ms bounds the added latency)
                cmd_conn.poll(0.0005)
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # router went away; nothing to clean up but the mapping
    finally:
        ring.close()


# ---------------------------------------------------------------------------
# router-side state
# ---------------------------------------------------------------------------
class _RemoteSession:
    """Router-side handle of a tenant session living on a worker.

    Duck-types the :class:`TenantSession` attributes the shared server
    code reads (``tenant`` / ``config`` / ``session_id``); everything
    else is forwarding state: the journal (replay source of truth), the
    delivered-work counters that drive replay suppression, and the
    futures control operations wait on.
    """

    def __init__(
        self, tenant: str, config: SessionConfig, session_id: int, worker_id: int
    ) -> None:
        self.tenant = tenant
        self.config = config
        self.session_id = session_id
        self.worker_id = worker_id
        #: bytes entries are ring records; _FLUSH entries are flush marks
        self.journal: "list[Any]" = []
        #: journal entries already forwarded to the current worker spawn
        self.forwarded = 0
        #: serialises forwarding against crash replay
        self.lock = asyncio.Lock()
        #: ring batches sent to the worker but not yet acknowledged
        self.unacked = 0
        self.idle = asyncio.Event()
        self.idle.set()
        # delivered-to-client counters (exclude suppressed replays)
        self.acked_batches = 0
        self.acked_flushes = 0
        self.traces_emitted = 0
        self.events_delivered = 0
        # replay suppression: responses regenerated for already-delivered
        # work are swallowed so clients are credited exactly once
        self.suppress_acks = 0
        self.suppress_flushes = 0
        self.suppress_traces = 0
        #: pending control futures, keyed "flush" / "end"
        self.pending: "dict[str, asyncio.Future]" = {}
        self.ending_reason: "str | None" = None

    @property
    def replayed_batches(self) -> int:
        return sum(1 for entry in self.journal if entry is not _FLUSH)

    @property
    def replayed_flushes(self) -> int:
        return sum(1 for entry in self.journal if entry is _FLUSH)


class _WorkerHandle:
    """One supervised worker: its ring, pipes, consumer task and metrics."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.ring: "EventRing | None" = None
        self.cmd: Any = None
        self.resp: Any = None
        self.sup: "SupervisedProcess | None" = None
        self.sessions: "set[int]" = set()
        self.resp_queue: "asyncio.Queue | None" = None
        self.consumer: "asyncio.Task | None" = None
        self.reader_fd: "int | None" = None
        self.crashed = False
        # per-worker instruments (satellite: the exposition reflects the
        # sharded topology)
        self.m_events: Any = None
        self.m_batches: Any = None
        self.m_ring: Any = None
        self.m_fold: Any = None
        self.m_sessions: Any = None
        self.m_respawns: Any = None


class RoutedMappingServer(MappingServer):
    """The sharded serving tier: identical protocol, N detection workers.

    A drop-in replacement for :class:`MappingServer` — same wire
    protocol, same trace events, same admission and drain semantics —
    that scales detection across ``config.workers`` supervised worker
    processes.  Per-tenant results are bit-identical to the
    single-process server for any worker count (pinned by
    ``tests/test_serve_router.py`` and ``benchmarks/serve_loadbench.py``).
    """

    def __init__(self, config=None, *, machine=None, recorder=None, metrics=None):
        super().__init__(config, machine=machine, recorder=recorder, metrics=metrics)
        if self.config.workers < 1:
            raise ConfigurationError("a routed server needs >= 1 worker")
        if self.config.ring_bytes < 4096:
            raise ConfigurationError("ring_bytes must be >= 4096")
        self._ctx = _pick_context(None)
        self._hash_ring = HashRing()
        self._workers: "dict[int, _WorkerHandle]" = {}
        self._remote_sessions: "dict[int, _RemoteSession]" = {}
        self.workers_crashed = 0
        self.tenants_migrated = 0
        self._m_migrated = self.metrics.counter(
            "serve_tenants_migrated_total", "tenant journals replayed into a worker"
        )

    @property
    def n_workers(self) -> int:
        return self.config.workers

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tier, then open the listening sockets.

        Workers come up before the first client can connect, but their
        ServeWorkerStart events are emitted *after* ServeStart so the
        trace keeps the single-process stream's book-end shape.
        """
        deferred: "list[Any]" = []
        for worker_id in range(self.config.workers):
            self._spawn_worker(worker_id, deferred_events=deferred)
        await super().start()
        for event in deferred:
            self.recorder.emit(event)

    async def _shutdown_backend(self, reason: str) -> None:
        for handle in self._workers.values():
            self._detach_reader(handle)
            self._send_cmd(handle, ("stop",))
        for handle in self._workers.values():
            if handle.consumer is not None:
                handle.consumer.cancel()
        # terminate() joins with a 5 s timeout (twice, after SIGKILL); run
        # it off-loop so a worker stuck in uninterruptible sleep cannot
        # stall every client connection
        await asyncio.gather(
            *(
                asyncio.to_thread(handle.sup.terminate)
                for handle in self._workers.values()
                if handle.sup is not None
            )
        )
        for handle in self._workers.values():
            self._close_plumbing(handle)
            if handle.m_sessions is not None:
                handle.m_sessions.set(0)
        self._workers.clear()
        self._remote_sessions.clear()

    # -- worker plumbing ----------------------------------------------------
    def _spawn_worker(
        self, worker_id: int, deferred_events: "list[Any] | None" = None
    ) -> None:
        handle = _WorkerHandle(worker_id)
        cfg = self.config

        def _start():
            ring = EventRing.create(cfg.ring_bytes)
            cmd_recv, cmd_send = self._ctx.Pipe(duplex=False)
            resp_recv, resp_send = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, ring.name, cmd_recv, resp_send, self.machine),
                daemon=True,
            )
            proc.start()
            # close the child's ends in the router so a dead worker shows
            # up as EOF on resp (the pool.py crash-detection idiom)
            cmd_recv.close()
            resp_send.close()
            handle.ring = ring
            handle.cmd = cmd_send
            handle.resp = resp_recv
            return proc

        handle.sup = SupervisedProcess(
            f"serve-worker-{worker_id}",
            _start,
            max_respawns=cfg.worker_respawns,
            backoff_s=cfg.respawn_backoff_s,
        )
        label = str(worker_id)
        m = self.metrics
        handle.m_events = m.counter(
            "serve_worker_events_total", "events routed to the worker", worker=label
        )
        handle.m_batches = m.counter(
            "serve_worker_batches_total", "batches routed to the worker", worker=label
        )
        handle.m_ring = m.gauge(
            "serve_worker_ring_occupancy_bytes",
            "bytes enqueued in the worker's event ring",
            worker=label,
        )
        handle.m_fold = m.histogram(
            "serve_worker_fold_seconds",
            "worker-side detection+evaluation latency per batch",
            worker=label,
        )
        handle.m_sessions = m.gauge(
            "serve_worker_sessions", "sessions assigned to the worker", worker=label
        )
        handle.m_respawns = m.counter(
            "serve_worker_respawns_total", "crash respawns of the worker", worker=label
        )
        handle.sup.start()
        self._attach_worker(handle)
        self._workers[worker_id] = handle
        self._hash_ring.add(worker_id)
        event = ServeWorkerStart(
            worker_id=worker_id,
            pid=handle.sup.proc.pid,
            spawn=handle.sup.spawns,
            ring_bytes=cfg.ring_bytes,
        )
        if deferred_events is None:
            self.recorder.emit(event)
        else:
            deferred_events.append(event)

    def _attach_worker(self, handle: _WorkerHandle) -> None:
        """Hook the worker's response pipe into the event loop."""
        handle.crashed = False
        handle.resp_queue = asyncio.Queue()
        handle.consumer = asyncio.ensure_future(self._consume_responses(handle))
        handle.reader_fd = handle.resp.fileno()
        asyncio.get_running_loop().add_reader(
            handle.reader_fd, self._drain_responses, handle
        )

    def _detach_reader(self, handle: _WorkerHandle) -> None:
        if handle.reader_fd is not None:
            try:
                asyncio.get_running_loop().remove_reader(handle.reader_fd)
            except (ValueError, OSError):  # pragma: no cover - loop closing
                pass
            handle.reader_fd = None

    def _close_plumbing(self, handle: _WorkerHandle) -> None:
        for conn in (handle.cmd, handle.resp):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        if handle.ring is not None:
            handle.ring.close()
            handle.ring.unlink()
            handle.ring = None

    def _send_cmd(self, handle: _WorkerHandle, message: tuple) -> bool:
        """Send a control command; False when the worker is already gone."""
        try:
            handle.cmd.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _drain_responses(self, handle: _WorkerHandle) -> None:
        """add_reader callback: move pipe messages onto the asyncio queue."""
        try:
            while handle.resp.poll(0):
                handle.resp_queue.put_nowait(handle.resp.recv())
        except (EOFError, OSError):
            self._detach_reader(handle)
            handle.resp_queue.put_nowait(("__eof__",))

    def _live_worker(self, sess: _RemoteSession) -> _WorkerHandle:
        handle = self._workers.get(sess.worker_id)
        if handle is None or handle.crashed or handle.sup is None:
            raise _WorkerGone()
        return handle

    # -- response handling --------------------------------------------------
    async def _consume_responses(self, handle: _WorkerHandle) -> None:
        """Serial consumer of one worker's responses (order-preserving)."""
        while True:
            message = await handle.resp_queue.get()
            kind = message[0]
            if kind == "__eof__":
                asyncio.ensure_future(self._handle_worker_crash(handle))
                return
            if kind == "ack":
                await self._on_ack(handle, *message[1:])
            elif kind == "trace":
                self._on_trace(message[1], message[2])
            elif kind == "flushed":
                self._resolve(message[1], "flush", message[2], suppressable=True)
            elif kind == "ended":
                self._resolve(message[1], "end", tuple(message[2:]))
            elif kind == "fail":
                self._on_fail(message[1], message[2])

    async def _on_ack(
        self,
        handle: _WorkerHandle,
        sid: int,
        n_events: int,
        update_payloads: "list[dict]",
        elapsed: float,
    ) -> None:
        sess = self._remote_sessions.get(sid)
        if handle.ring is not None:
            handle.m_ring.set(handle.ring.occupancy)
        if sess is None:
            return
        sess.unacked -= 1
        if sess.unacked <= 0:
            sess.idle.set()
        if sess.suppress_acks > 0:
            sess.suppress_acks -= 1
            return  # replayed work the client was already credited for
        sess.acked_batches += 1
        sess.events_delivered += n_events
        handle.m_fold.observe(elapsed)
        self._m_ingest.observe(elapsed)
        conn = self._connections.get(sid)
        self.events_total += n_events
        self.batches_total += 1
        self._m_events.inc(n_events)
        self._m_batches.inc()
        if conn is None:
            return
        conn.outstanding -= n_events
        try:
            for payload in update_payloads:
                self.remaps_total += 1
                self._m_remaps.inc()
                await conn.send(protocol.encode(MsgType.MAPPING, payload))
            await conn.send(protocol.encode(MsgType.CREDIT, {"events": n_events}))
        except (ConnectionError, RuntimeError):
            pass  # the read loop will surface the disconnect

    def _on_trace(self, sid: int, event: Any) -> None:
        sess = self._remote_sessions.get(sid)
        if sess is not None:
            if sess.suppress_traces > 0:
                sess.suppress_traces -= 1
                return
            sess.traces_emitted += 1
        self.recorder.emit(event)

    def _resolve(
        self, sid: int, key: str, value: Any, suppressable: bool = False
    ) -> None:
        sess = self._remote_sessions.get(sid)
        if sess is None:
            return
        if suppressable and sess.suppress_flushes > 0:
            sess.suppress_flushes -= 1
            return
        future = sess.pending.pop(key, None)
        if future is not None and not future.done():
            if suppressable:
                # counted at resolve time, not after the await, so a crash
                # landing in between still suppresses the right number of
                # replay-regenerated flush responses
                sess.acked_flushes += 1
            future.set_result(value)

    def _on_fail(self, sid: int, message: str) -> None:
        sess = self._remote_sessions.get(sid)
        if sess is None:
            return
        for future in sess.pending.values():
            if not future.done():
                future.set_exception(ProtocolError(message))
        sess.pending.clear()
        conn = self._connections.get(sid)
        if conn is not None and not conn.ended:
            conn.queue.put_nowait(("error", message))

    # -- session placement and forwarding -----------------------------------
    def _make_session(self, tenant: str, session_cfg: SessionConfig) -> _RemoteSession:
        if not self._hash_ring.workers:
            raise AdmissionError("no detection workers available", code="at-capacity")
        worker_id = self._hash_ring.assign(tenant)
        handle = self._workers[worker_id]
        sid = next(self._session_ids)
        sess = _RemoteSession(tenant, session_cfg, sid, worker_id)
        self._remote_sessions[sid] = sess
        handle.sessions.add(sid)
        handle.m_sessions.set(len(handle.sessions))
        self._send_cmd(handle, ("open", sid, tenant, session_cfg))
        return sess

    async def _push_record(self, sess: _RemoteSession, record: bytes) -> None:
        """Publish one ring record, waiting out a full ring."""
        delay = 0.0002
        while True:
            handle = self._live_worker(sess)
            if handle.ring.try_push(record):
                handle.m_events.inc((len(record) - _SID.size - 20) // 8)
                handle.m_batches.inc()
                handle.m_ring.set(handle.ring.occupancy)
                return
            # ring full: the worker is draining it.  Exponential backoff
            # keeps a slow or stalled worker from turning the event loop
            # into a hot spin; a crash wakes the pump via _WorkerGone.
            await asyncio.sleep(delay)
            delay = min(delay * 2, 0.004)

    async def _pump(self, sess: _RemoteSession) -> None:
        """Forward every not-yet-forwarded journal entry, in order.

        The per-session lock makes this the *only* forwarding path — live
        ingest and crash replay both come through here, so a replay reset
        (``forwarded = 0``) can never interleave with live pushes.  Flush
        markers wait for all prior batches to be acknowledged before the
        pipe command goes out, which keeps pipe-vs-ring ordering exact.
        """
        async with sess.lock:
            while sess.forwarded < len(sess.journal):
                entry = sess.journal[sess.forwarded]
                if entry is _FLUSH:
                    while sess.unacked > 0:
                        await sess.idle.wait()
                    handle = self._live_worker(sess)
                    self._send_cmd(handle, ("flush", sess.session_id))
                else:
                    await self._push_record(sess, entry)
                    sess.unacked += 1
                    sess.idle.clear()
                sess.forwarded += 1

    async def _ingest_batch(self, conn: _Connection, batch: EventBatch) -> None:
        sess: _RemoteSession = conn.session
        validate_tid(batch.tid, sess.config.n_threads)
        record = _SID.pack(sess.session_id) + batch.body()
        cap = EventRing.record_cap(self.config.ring_bytes)
        if len(record) > cap:
            raise ProtocolError(
                f"EVENTS frame of {len(record)} bytes exceeds the worker ring's "
                f"{cap}-byte record cap"
            )
        sess.journal.append(record)
        try:
            await self._pump(sess)
        except _WorkerGone:
            pass  # journaled; crash recovery finishes the forwarding

    async def _flush_session(self, conn: _Connection) -> None:
        sess: _RemoteSession = conn.session
        future = asyncio.get_running_loop().create_future()
        sess.pending["flush"] = future
        sess.journal.append(_FLUSH)
        try:
            await self._pump(sess)
        except _WorkerGone:
            pass
        update_payload = await future
        if update_payload is not None:
            self.remaps_total += 1
            self._m_remaps.inc()
            await conn.send(protocol.encode(MsgType.MAPPING, update_payload))
        await conn.send(
            protocol.encode(MsgType.CREDIT, {"events": 0, "ack": "flush"})
        )

    async def _send_end_when_idle(self, sess: _RemoteSession) -> None:
        """Issue the end command once the worker has acked everything."""
        try:
            while sess.unacked > 0:
                await sess.idle.wait()
            handle = self._live_worker(sess)
            self._send_cmd(handle, ("end", sess.session_id, sess.ending_reason))
        except _WorkerGone:
            pass  # recovery replays the journal and re-issues the end

    async def _finalize_session(
        self, conn: _Connection, reason: str, notify: bool
    ) -> None:
        sess: _RemoteSession = conn.session
        sid = sess.session_id
        if sess.worker_id not in self._workers and not self._hash_ring.workers:
            # every worker exhausted its budget: emit what the router knows
            self._emit_degraded_end(sess, reason)
            self._drop_session(sess)
            return
        sess.ending_reason = reason
        future = asyncio.get_running_loop().create_future()
        sess.pending["end"] = future
        try:
            await self._pump(sess)
        except _WorkerGone:
            pass
        await self._send_end_when_idle(sess)
        try:
            update_payload, summary, end_info = await future
        except ProtocolError:
            self._emit_degraded_end(sess, "error")
            self._drop_session(sess)
            return
        if reason in ("bye", "drain") and update_payload is not None and notify:
            self.remaps_total += 1
            self._m_remaps.inc()
            try:
                await conn.send(protocol.encode(MsgType.MAPPING, update_payload))
            except (ConnectionError, RuntimeError):
                notify = False
        summary["reason"] = reason
        if notify:
            try:
                await conn.send(protocol.encode(MsgType.SUMMARY, summary))
            except (ConnectionError, RuntimeError):
                pass
        self.recorder.emit(
            ServeSessionEnd(
                tenant=sess.tenant, session_id=sid, reason=reason, **end_info
            )
        )
        self._drop_session(sess)

    def _emit_degraded_end(self, sess: _RemoteSession, reason: str) -> None:
        """Best-effort ServeSessionEnd when no worker can compute the real one."""
        self.recorder.emit(
            ServeSessionEnd(
                tenant=sess.tenant,
                session_id=sess.session_id,
                reason=reason,
                events=sess.events_delivered,
                batches=sess.acked_batches,
                comm_events=0,
                windowed_out=0,
                evaluations=0,
                remaps=0,
                matrix_digest="",
                mapping=[],
            )
        )

    def _drop_session(self, sess: _RemoteSession) -> None:
        self._remote_sessions.pop(sess.session_id, None)
        handle = self._workers.get(sess.worker_id)
        if handle is not None:
            handle.sessions.discard(sess.session_id)
            handle.m_sessions.set(len(handle.sessions))

    # -- crash recovery -----------------------------------------------------
    async def _handle_worker_crash(self, handle: _WorkerHandle) -> None:
        """Respawn-and-replay, or retire-and-migrate when the budget is spent."""
        if handle.crashed or self._draining:
            return  # drain tears workers down itself; EOFs there are expected
        handle.crashed = True
        self.workers_crashed += 1
        # reap the zombie off-loop: terminate() blocks in proc.join()
        await asyncio.to_thread(handle.sup.terminate)
        exitcode = handle.sup.proc.exitcode if handle.sup.proc is not None else None
        self._close_plumbing(handle)
        affected = [
            self._remote_sessions[sid]
            for sid in sorted(handle.sessions)
            if sid in self._remote_sessions
        ]
        # wake any pump blocked on acks from the dead worker; it will fault
        # on _live_worker and release the session lock for the replay
        for sess in affected:
            sess.unacked = 0
            sess.idle.set()
        backoff = handle.sup.next_backoff_s()
        self.recorder.emit(
            ServeWorkerCrash(
                worker_id=handle.worker_id,
                spawn=handle.sup.spawns,
                exitcode=exitcode,
                sessions=len(affected),
                respawns_left=handle.sup.respawns_left,
            )
        )
        if backoff is None:
            # budget exhausted: retire the worker, migrate its tenants
            self._hash_ring.remove(handle.worker_id)
            self._workers.pop(handle.worker_id, None)
            handle.m_sessions.set(0)
            for sess in affected:
                if not self._hash_ring.workers:
                    self._fail_session(sess, "no detection workers available")
                    continue
                await self._replay_session(
                    sess, self._hash_ring.assign(sess.tenant), reason="retired"
                )
        else:
            await asyncio.sleep(backoff)
            handle.m_respawns.inc()
            handle.sup.start()  # fresh ring + pipes via the factory
            # re-snapshot: sessions admitted during the reap/backoff awaits
            # also live on this worker and lost their open command to the
            # dead pipe, so they need the same re-open + replay treatment
            affected = [
                self._remote_sessions[sid]
                for sid in sorted(handle.sessions)
                if sid in self._remote_sessions
            ]
            # install every session's replay state *before* the handle is
            # marked live again: until _attach_worker clears handle.crashed,
            # a concurrent live _pump faults on _live_worker instead of
            # forwarding stale journal entries (forwarded not yet reset, no
            # open sent) that the fresh worker would orphan-ack — which
            # would credit clients for unprocessed events and make the real
            # replay suppress genuine acks
            for sess in affected:
                await self._prepare_replay(sess, handle.worker_id)
            self._attach_worker(handle)
            self.recorder.emit(
                ServeWorkerStart(
                    worker_id=handle.worker_id,
                    pid=handle.sup.proc.pid,
                    spawn=handle.sup.spawns,
                    ring_bytes=self.config.ring_bytes,
                )
            )
            for sess in affected:
                await self._replay_session(
                    sess, handle.worker_id, reason="respawn", prepared=True
                )

    async def _prepare_replay(self, sess: _RemoteSession, worker_id: int) -> None:
        """Install *sess*'s replay state for its next home on *worker_id*.

        Runs while the session's previous worker is still marked crashed
        (or already retired) so no live pump can interleave: resets the
        forwarded/unacked counters, arms response suppression for work
        the client was already credited for, and re-opens the worker-side
        session.  Only after this may the target see the session's ring
        records — otherwise stale journal entries (forwarded not reset,
        no open sent) would be orphan-acked without being ingested.
        """
        target = self._workers[worker_id]
        async with sess.lock:  # wait out any in-flight pump
            if sess.worker_id != worker_id:
                self._drop_session(sess)  # leaves the retired handle's set
                sess.worker_id = worker_id
                self._remote_sessions[sess.session_id] = sess
                target.sessions.add(sess.session_id)
                target.m_sessions.set(len(target.sessions))
            sess.forwarded = 0
            sess.unacked = 0
            sess.idle.set()
            sess.suppress_acks = sess.acked_batches
            sess.suppress_flushes = sess.acked_flushes
            sess.suppress_traces = sess.traces_emitted
            self._send_cmd(target, ("open", sess.session_id, sess.tenant, sess.config))

    async def _replay_session(
        self, sess: _RemoteSession, worker_id: int, reason: str, *, prepared: bool = False
    ) -> None:
        """Re-open the session on *worker_id* and replay its whole journal.

        Responses regenerated for work delivered before the crash are
        suppressed by count — replay is deterministic and FIFO, so the
        first ``acked_batches`` acks (and ``acked_flushes`` flush results,
        and ``traces_emitted`` trace events) are exactly the duplicates.
        With ``prepared=True`` the replay state was already installed (the
        respawn path prepares every session before the worker goes live).
        """
        from_worker = sess.worker_id
        if not prepared:
            await self._prepare_replay(sess, worker_id)
        self.tenants_migrated += 1
        self._m_migrated.inc()
        self.recorder.emit(
            ServeTenantMigrated(
                tenant=sess.tenant,
                session_id=sess.session_id,
                from_worker=from_worker,
                to_worker=worker_id,
                reason=reason,
                replayed_batches=sess.replayed_batches,
                replayed_flushes=sess.replayed_flushes,
            )
        )
        try:
            await self._pump(sess)
        except _WorkerGone:
            return  # crashed again mid-replay; the next recovery retries
        if sess.ending_reason is not None and "end" in sess.pending:
            await self._send_end_when_idle(sess)

    def _fail_session(self, sess: _RemoteSession, message: str) -> None:
        """Last resort: no worker can host the tenant any more."""
        conn = self._connections.get(sess.session_id)
        if conn is not None and not conn.ended:
            conn.queue.put_nowait(("error", message))
        for future in sess.pending.values():
            if not future.done():
                future.set_exception(ProtocolError(message))
        sess.pending.clear()
