"""The asyncio mapping daemon: multi-tenant SPCD detection as a service.

One event loop multiplexes every tenant connection.  Each accepted session
gets a dedicated :class:`~repro.serve.session.TenantSession` (sharded
table, shard matrices, evaluator) plus two tasks: a *reader* that only
decodes frames into the session's ingest queue, and a *processor* that
owns all detection work and all writes on that connection.  The split
keeps the wire protocol responsive while a large batch is being scattered,
and gives every frame a total order per session — which is what makes the
served decisions replayable offline.

Backpressure is layered: admission control refuses sessions past
``max_sessions`` or the per-tenant memory cap; the credit window bounds
how many events a client may have in flight (the server *enforces* it —
overrunning the window is a protocol error, so the ingest queue's memory
is bounded even against a misbehaving client); and the queue itself is
drained strictly FIFO, so accepted events are never dropped — a slow
session throttles its own client and nobody else.

Shutdown (SIGTERM/SIGINT → :meth:`MappingServer.drain`) notifies every
client with a DRAINING frame, waits up to ``drain_grace_s`` for them to
finish, then force-drains the stragglers: queued batches are processed,
a final forced evaluation runs, the session summary (with the final matrix
digest) is flushed to the obs trace, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any

from repro.engine.settings import RunSettings
from repro.errors import AdmissionError, ProtocolError
from repro.machine.topology import Machine, dual_xeon_e5_2650
from repro.obs.events import ServeEnd, ServeSessionEnd, ServeSessionStart, ServeStart
from repro.obs.recorder import NullRecorder, TraceRecorder
from repro.serve import protocol
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import EventBatch, MsgType
from repro.serve.session import SessionConfig, TenantSession

__all__ = ["MappingServer", "ServeConfig"]

#: slack multiplier on the enforced credit window — absorbs the race where
#: a client sends a batch an instant before our CREDIT frame reaches it
_WINDOW_SLACK = 2


@dataclass(frozen=True)
class ServeConfig:
    """Server policy knobs, distilled from :class:`RunSettings`."""

    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: "int | None" = None
    max_sessions: int = 64
    max_table_mb: float = 64.0
    shards: int = 4
    eval_every_events: int = 8192
    credit_window: int = 65536
    #: seconds a drain waits for clients to finish before force-draining
    drain_grace_s: float = 5.0
    #: detection worker processes behind the router (the routed server
    #: only; :class:`MappingServer` itself ignores these four fields)
    workers: int = 1
    #: per-worker shared-memory event ring, in bytes
    ring_bytes: int = 4 * 1024 * 1024
    #: respawns a crashed worker gets before its tenants migrate away
    worker_respawns: int = 2
    #: base of the exponential respawn backoff (respawn *n* waits
    #: ``respawn_backoff_s * 2**(n-1)`` seconds)
    respawn_backoff_s: float = 0.25

    @classmethod
    def from_settings(cls, settings: RunSettings) -> "ServeConfig":
        """Build from the ``REPRO_SERVE_*`` fields of *settings*."""
        return cls(
            host=settings.serve_host,
            port=settings.serve_port,
            metrics_port=settings.serve_metrics_port,
            max_sessions=settings.serve_max_sessions,
            max_table_mb=settings.serve_max_table_mb,
            shards=settings.serve_shards,
            eval_every_events=settings.serve_eval_every,
            credit_window=settings.serve_credit_window,
            workers=settings.serve_workers,
        )


class _Connection:
    """Book-keeping of one client connection (reader + processor tasks)."""

    def __init__(
        self,
        session: TenantSession,
        writer: asyncio.StreamWriter,
        credit_window: int,
    ) -> None:
        self.session = session
        self.writer = writer
        self.credit_window = credit_window
        #: events enqueued but not yet credited back — the enforced window
        self.outstanding = 0
        #: FIFO of work items; unbounded, but its content is bounded by the
        #: enforced credit window (plus control sentinels)
        self.queue: "asyncio.Queue[tuple[str, Any]]" = asyncio.Queue()
        self.write_lock = asyncio.Lock()
        self.finished = asyncio.Event()
        self.ended = False
        self.reader_task: "asyncio.Task | None" = None
        self.processor_task: "asyncio.Task | None" = None

    async def send(self, data: bytes) -> None:
        """Write one frame, serialised against concurrent writers."""
        async with self.write_lock:
            await protocol.write_frame(self.writer, data)


class MappingServer:
    """The SPCD mapping-as-a-service daemon.

    Use as an async context manager or call :meth:`start` / :meth:`drain`
    directly; :meth:`serve_forever` blocks until a drain completes.  All
    policy comes from a :class:`ServeConfig` (typically
    ``ServeConfig.from_settings(RunSettings.from_env())`` — the server
    itself never reads the environment).
    """

    def __init__(
        self,
        config: "ServeConfig | None" = None,
        *,
        machine: "Machine | None" = None,
        recorder: "TraceRecorder | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.machine = machine or dual_xeon_e5_2650()
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.metrics = metrics or MetricsRegistry()
        self._connections: "dict[int, _Connection]" = {}
        self._session_ids = itertools.count(1)
        self._server: "asyncio.base_events.Server | None" = None
        self._metrics_server: "asyncio.base_events.Server | None" = None
        self._draining = False
        self._drained = asyncio.Event()
        self.sessions_served = 0
        self.sessions_refused = 0
        self.events_total = 0
        self.batches_total = 0
        self.remaps_total = 0
        # metric instruments (families created eagerly so /metrics is
        # populated before the first session arrives)
        m = self.metrics
        self._m_sessions = m.gauge("serve_sessions", "live tenant sessions")
        self._m_admitted = m.counter("serve_sessions_admitted_total", "sessions admitted")
        self._m_refused = m.counter("serve_sessions_refused_total", "sessions refused")
        self._m_events = m.counter("serve_events_total", "fault events ingested")
        self._m_batches = m.counter("serve_batches_total", "event batches ingested")
        self._m_remaps = m.counter("serve_remaps_total", "mapping updates pushed")
        self._m_ingest = m.histogram(
            "serve_ingest_seconds", "per-batch detection+evaluation latency"
        )

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket(s) and start accepting sessions."""
        cfg = self.config
        self._server = await asyncio.start_server(
            self._handle_client, host=cfg.host, port=cfg.port
        )
        if cfg.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, host=cfg.host, port=cfg.metrics_port
            )
        self.recorder.emit(
            ServeStart(
                host=cfg.host,
                port=self.port,
                machine=self.machine.name,
                max_sessions=cfg.max_sessions,
                max_table_mb=cfg.max_table_mb,
                shards=cfg.shards,
                workers=self.n_workers,
            )
        )

    @property
    def n_workers(self) -> int:
        """Detection worker processes; 0 for the single-process server."""
        return 0

    @property
    def port(self) -> int:
        """The bound data port (resolves an ephemeral ``port=0`` request)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> "int | None":
        """The bound ``/metrics`` port, or ``None`` when disabled."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            return self.config.metrics_port
        return self._metrics_server.sockets[0].getsockname()[1]

    async def __aenter__(self) -> "MappingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        if not self._drained.is_set():
            await self.drain()

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` completes (call it from a signal handler)."""
        if self._server is None:
            await self.start()
        await self._drained.wait()

    async def drain(self, reason: str = "drain") -> None:
        """Graceful shutdown: notify, wait, force-drain, flush, close."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        connections = list(self._connections.values())
        for conn in connections:
            try:
                await conn.send(protocol.encode(MsgType.DRAINING, {"reason": reason}))
            except (ConnectionError, RuntimeError):
                pass
        if connections:
            waits = [
                asyncio.ensure_future(conn.finished.wait()) for conn in connections
            ]
            _, pending = await asyncio.wait(waits, timeout=self.config.drain_grace_s)
            for task in pending:
                task.cancel()
            for conn in connections:
                if not conn.finished.is_set():
                    conn.queue.put_nowait(("drain", None))
            waits = [
                asyncio.ensure_future(conn.finished.wait()) for conn in connections
            ]
            _, pending = await asyncio.wait(waits, timeout=self.config.drain_grace_s)
            for task in pending:
                task.cancel()
        for conn in connections:
            for task in (conn.reader_task, conn.processor_task):
                if task is not None and not task.done():
                    task.cancel()
        if self._server is not None:
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        await self._shutdown_backend(reason)
        self.recorder.emit(
            ServeEnd(
                reason=reason,
                sessions_served=self.sessions_served,
                sessions_refused=self.sessions_refused,
                events_total=self.events_total,
                batches_total=self.batches_total,
                remaps_total=self.remaps_total,
                metrics=self.metrics.snapshot(),
            )
        )
        self.recorder.close()
        self._drained.set()

    async def _shutdown_backend(self, reason: str) -> None:
        """Tear down the serving backend, just before the ServeEnd event.

        The single-process server has no backend; the routed server
        overrides this to stop its workers and release their rings.
        """

    # -- admission ----------------------------------------------------------
    def _admit(self, payload: "dict[str, Any]") -> "tuple[str, SessionConfig]":
        cfg = self.config
        if self._draining:
            raise AdmissionError("server is draining", code="draining")
        if len(self._connections) >= cfg.max_sessions:
            raise AdmissionError(
                f"at capacity ({cfg.max_sessions} sessions)", code="at-capacity"
            )
        version = payload.get("version", protocol.PROTOCOL_VERSION)
        if version != protocol.PROTOCOL_VERSION:
            raise AdmissionError(
                f"protocol version {version} unsupported", code="bad-hello"
            )
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise AdmissionError("HELLO must carry a tenant name", code="bad-hello")
        try:
            n_threads = int(payload["n_threads"])
        except (KeyError, TypeError, ValueError):
            raise AdmissionError(
                "HELLO must carry an integer n_threads", code="bad-hello"
            ) from None
        if not 2 <= n_threads <= self.machine.n_pus:
            raise AdmissionError(
                f"n_threads must be in [2, {self.machine.n_pus}]", code="bad-hello"
            )
        overrides = payload.get("config", {})
        if not isinstance(overrides, dict):
            raise AdmissionError("HELLO config must be an object", code="bad-hello")
        defaults = SessionConfig(
            n_threads=n_threads,
            shards=cfg.shards,
            eval_every_events=cfg.eval_every_events,
        )
        try:
            session_cfg = SessionConfig.from_overrides(defaults, overrides)
        except Exception as exc:  # noqa: BLE001 - any bad config is a refusal
            raise AdmissionError(f"bad session config: {exc}", code="bad-hello") from exc
        memory_mb = session_cfg.memory_bytes() / (1024 * 1024)
        if memory_mb > cfg.max_table_mb:
            raise AdmissionError(
                f"session needs {memory_mb:.1f} MiB, cap is {cfg.max_table_mb} MiB",
                code="too-large",
            )
        return tenant, session_cfg

    def _make_session(self, tenant: str, session_cfg: SessionConfig) -> Any:
        """Build the object owning an admitted tenant's detection state.

        The single-process server runs the :class:`TenantSession` inline;
        the routed server overrides this to place the session on a worker
        and hand back a lightweight handle instead.
        """
        return TenantSession(
            tenant,
            session_cfg,
            self.machine,
            session_id=next(self._session_ids),
            recorder=self.recorder,
        )

    # -- connection handling ------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await protocol.read_frame(reader)
        except ProtocolError:
            writer.close()
            return
        if frame is None or frame.type is not MsgType.HELLO:
            writer.close()
            return
        try:
            tenant, session_cfg = self._admit(frame.payload)
            session = self._make_session(tenant, session_cfg)
        except AdmissionError as exc:
            self.sessions_refused += 1
            self._m_refused.inc()
            try:
                await protocol.write_frame(
                    writer,
                    protocol.encode(
                        MsgType.ERROR, {"code": exc.code, "message": str(exc)}
                    ),
                )
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
            return
        conn = _Connection(session, writer, self.config.credit_window)
        self._connections[session.session_id] = conn
        self.sessions_served += 1
        self._m_admitted.inc()
        self._m_sessions.inc()
        self.recorder.emit(
            ServeSessionStart(
                tenant=session.tenant,
                session_id=session.session_id,
                n_threads=session.config.n_threads,
                table_size=session.config.effective_table_size,
                shards=session.config.shards,
                eval_every_events=session.config.eval_every_events,
                memory_bytes=session.config.memory_bytes(),
            )
        )
        await conn.send(
            protocol.encode(
                MsgType.WELCOME,
                {
                    "session_id": session.session_id,
                    "tenant": session.tenant,
                    "version": protocol.PROTOCOL_VERSION,
                    "credits": self.config.credit_window,
                    "table_size": session.config.effective_table_size,
                    "shards": session.config.shards,
                    "eval_every_events": session.config.eval_every_events,
                },
            )
        )
        conn.processor_task = asyncio.current_task()
        conn.reader_task = asyncio.ensure_future(self._read_loop(reader, conn))
        try:
            await self._process_loop(conn)
        finally:
            if conn.reader_task is not None and not conn.reader_task.done():
                conn.reader_task.cancel()
            self._connections.pop(session.session_id, None)
            self._m_sessions.dec()
            conn.finished.set()
            writer.close()

    async def _read_loop(self, reader: asyncio.StreamReader, conn: _Connection) -> None:
        """Decode frames into the session's queue; never writes."""
        while not conn.ended:
            try:
                frame = await protocol.read_frame(reader)
            except ProtocolError as exc:
                conn.queue.put_nowait(("error", str(exc)))
                return
            except (ConnectionError, asyncio.CancelledError):
                conn.queue.put_nowait(("eof", None))
                return
            if frame is None:
                conn.queue.put_nowait(("eof", None))
                return
            if frame.type is MsgType.EVENTS:
                batch: EventBatch = frame.payload
                conn.outstanding += batch.n_events
                if conn.outstanding > _WINDOW_SLACK * conn.credit_window:
                    conn.queue.put_nowait(
                        ("error", "credit window exceeded — client must await CREDIT")
                    )
                    return
                conn.queue.put_nowait(("batch", batch))
            elif frame.type is MsgType.FLUSH:
                conn.queue.put_nowait(("flush", frame.payload))
            elif frame.type is MsgType.BYE:
                conn.queue.put_nowait(("bye", frame.payload))
                return
            elif frame.type is MsgType.METRICS:
                conn.queue.put_nowait(("metrics", frame.payload))
            else:
                conn.queue.put_nowait(
                    ("error", f"unexpected {frame.type.name} frame")
                )
                return

    async def _ingest_batch(self, conn: _Connection, batch: EventBatch) -> None:
        """Detect + evaluate one batch inline, then credit the client.

        The routed server overrides this to forward the batch into the
        assigned worker's ring instead (MAPPING/CREDIT then flow from the
        worker's acknowledgements).
        """
        loop = asyncio.get_event_loop()
        started = loop.time()
        updates = conn.session.ingest(batch)
        self._m_ingest.observe(loop.time() - started)
        n = batch.n_events
        conn.outstanding -= n
        self.events_total += n
        self.batches_total += 1
        self._m_events.inc(n)
        self._m_batches.inc()
        for update in updates:
            self.remaps_total += 1
            self._m_remaps.inc()
            await conn.send(protocol.encode(MsgType.MAPPING, update.to_payload()))
        await conn.send(protocol.encode(MsgType.CREDIT, {"events": n}))

    async def _flush_session(self, conn: _Connection) -> None:
        """Force one evaluation now and acknowledge the FLUSH."""
        update = conn.session.evaluate(force=True)
        if update is not None:
            self.remaps_total += 1
            self._m_remaps.inc()
            await conn.send(protocol.encode(MsgType.MAPPING, update.to_payload()))
        await conn.send(
            protocol.encode(MsgType.CREDIT, {"events": 0, "ack": "flush"})
        )

    async def _process_loop(self, conn: _Connection) -> None:
        """Own all detection work and all writes for one connection."""
        while True:
            kind, payload = await conn.queue.get()
            try:
                if kind == "batch":
                    await self._ingest_batch(conn, payload)
                elif kind == "flush":
                    await self._flush_session(conn)
                elif kind == "metrics":
                    await conn.send(
                        protocol.encode(
                            MsgType.METRICS_TEXT, {"text": self.metrics.render()}
                        )
                    )
                elif kind == "bye":
                    await self._end_session(conn, reason="bye", notify=True)
                    return
                elif kind == "drain":
                    await self._end_session(conn, reason="drain", notify=True)
                    return
                elif kind == "eof":
                    await self._end_session(conn, reason="disconnect", notify=False)
                    return
                elif kind == "error":
                    try:
                        await conn.send(
                            protocol.encode(
                                MsgType.ERROR,
                                {"code": "protocol", "message": str(payload)},
                            )
                        )
                    except (ConnectionError, RuntimeError):
                        pass
                    await self._end_session(conn, reason="error", notify=False)
                    return
            except ProtocolError as exc:
                try:
                    await conn.send(
                        protocol.encode(
                            MsgType.ERROR, {"code": "protocol", "message": str(exc)}
                        )
                    )
                except (ConnectionError, RuntimeError):
                    pass
                await self._end_session(conn, reason="error", notify=False)
                return
            except (ConnectionError, RuntimeError):
                await self._end_session(conn, reason="disconnect", notify=False)
                return

    async def _end_session(self, conn: _Connection, reason: str, notify: bool) -> None:
        """Terminal transition of one session (idempotent guard)."""
        if conn.ended:
            return
        conn.ended = True
        await self._finalize_session(conn, reason, notify)

    async def _finalize_session(
        self, conn: _Connection, reason: str, notify: bool
    ) -> None:
        """Final evaluation, summary flush, trace event — one per session."""
        session = conn.session
        if reason in ("bye", "drain"):
            update = session.evaluate(force=True)
            if update is not None and notify:
                self.remaps_total += 1
                self._m_remaps.inc()
                try:
                    await conn.send(
                        protocol.encode(MsgType.MAPPING, update.to_payload())
                    )
                except (ConnectionError, RuntimeError):
                    notify = False
        summary = session.summary()
        summary["reason"] = reason
        if notify:
            try:
                await conn.send(protocol.encode(MsgType.SUMMARY, summary))
            except (ConnectionError, RuntimeError):
                pass
        self.recorder.emit(
            ServeSessionEnd(
                tenant=session.tenant,
                session_id=session.session_id,
                reason=reason,
                events=session.events_seen,
                batches=session.batches_seen,
                comm_events=session.comm_events,
                windowed_out=session.windowed_out,
                evaluations=session.evaluator.evaluations,
                remaps=session.evaluator.remaps,
                matrix_digest=session.final_digest(),
                mapping=[int(p) for p in session.evaluator.current],
            )
        )

    # -- /metrics -----------------------------------------------------------
    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder: any GET gets the plaintext exposition."""
        try:
            await asyncio.wait_for(reader.readline(), timeout=5.0)
            body = self.metrics.render().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
