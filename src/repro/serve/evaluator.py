"""Periodic mapping evaluation for the serving layer.

:class:`MappingEvaluator` is the service-side mirror of
:meth:`repro.core.manager.SpcdManager.evaluate`: the same gate sequence
(fresh-evidence quota, remap cooldown, communication filter), the same
hierarchical Edmonds mapper and the same improvement veto, reusing
:mod:`repro.core.filter` / :mod:`repro.core.mapping` unchanged.  The one
structural difference is the trigger: the simulator evaluates on a virtual
10 ms kernel timer, while a session evaluates every
``eval_every_events`` *ingested events* (:class:`EvalCadence`) — a tenant's
stream carries its own virtual clock, so an event-count cadence makes every
decision a pure function of the stream and therefore replayable.

:func:`offline_reference` is that replay: it pushes the same event batches
through an **unsharded** :class:`~repro.core.spcd.SpcdDetector` — the exact
detection engine :class:`~repro.core.manager.SpcdManager` embeds — and a
fresh evaluator at the same cadence.  With the service's default
``matrix_decay = 1.0`` every matrix cell is an exact integer, so the
sharded online pipeline and this offline reference produce **bit-identical
matrix digests and identical mapping decisions** (pinned by
``tests/test_serve.py`` and asserted by the load benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.filter import CommunicationFilter
from repro.core.manager import matrix_digest
from repro.core.mapping import HierarchicalMapper, mapping_comm_cost
from repro.core.spcd import SpcdDetector
from repro.errors import ConfigurationError
from repro.machine.topology import Machine, dual_xeon_e5_2650
from repro.mem.fault import FaultBatch
from repro.units import PAGE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.serve.protocol import EventBatch
    from repro.serve.session import SessionConfig

__all__ = [
    "EvalCadence",
    "MappingEvaluator",
    "MappingUpdate",
    "ReplayEvaluation",
    "ReplayResult",
    "offline_reference",
]


@dataclass(frozen=True)
class MappingUpdate:
    """An accepted remap decision, as pushed to the tenant."""

    #: ordinal of the evaluation that produced this mapping (1-based)
    evaluation: int
    #: tenant events ingested when the decision was taken
    events_seen: int
    #: tenant virtual time of the newest ingested event
    now_ns: int
    #: thread -> PU assignment
    mapping: "list[int]"
    #: communication cost of the previous placement under the matrix
    cost_now: float
    #: communication cost of the new placement
    cost_new: float
    #: BLAKE2b digest of the matrix the decision was computed from
    matrix_digest: str

    def to_payload(self) -> "dict[str, object]":
        """JSON payload of the MAPPING push frame."""
        return {
            "evaluation": self.evaluation,
            "events_seen": self.events_seen,
            "now_ns": self.now_ns,
            "mapping": list(self.mapping),
            "cost_now": self.cost_now,
            "cost_new": self.cost_new,
            "matrix_digest": self.matrix_digest,
        }


class EvalCadence:
    """Event-count evaluation schedule: one tick per *every* ingested events.

    Both the live session and the offline replay advance an identical
    cadence, so evaluation points are a deterministic function of the
    batch stream alone.
    """

    def __init__(self, every: int) -> None:
        if every <= 0:
            raise ConfigurationError("eval_every_events must be positive")
        self.every = every
        self._next = every

    def due(self, events_seen: int) -> int:
        """Number of evaluation ticks due after reaching *events_seen*."""
        ticks = 0
        while events_seen >= self._next:
            self._next += self.every
            ticks += 1
        return ticks


class MappingEvaluator:
    """The filter + mapper + veto pipeline bound to one tenant.

    Holds the tenant's notion of "current placement" — initially the
    identity mapping (thread *t* on PU *t*), updated on every accepted
    remap — which plays the role the pinned scheduler's placement plays in
    the simulator.
    """

    def __init__(self, machine: Machine, config: "SessionConfig") -> None:
        cfg = config
        self.machine = machine
        self.config = cfg
        if cfg.n_threads > machine.n_pus:
            raise ConfigurationError(
                f"{cfg.n_threads} threads exceed the machine's {machine.n_pus} PUs"
            )
        self.filter = CommunicationFilter(
            cfg.n_threads,
            cfg.filter_threshold,
            hysteresis=cfg.filter_hysteresis,
            margin=cfg.filter_margin,
        )
        self.mapper = HierarchicalMapper(
            machine,
            use_greedy_matching=cfg.use_greedy_matching,
            stickiness=cfg.mapper_stickiness,
        )
        self.current = np.arange(cfg.n_threads, dtype=np.int64)
        self.evaluations = 0
        self.remaps = 0
        self._events_at_last_trigger = 0.0
        self._last_remap_ns = -(1 << 62)

    def decide(
        self,
        matrix,
        *,
        comm_events: float,
        events_seen: int,
        now_ns: int,
        digest: "str | None" = None,
        force: bool = False,
    ) -> "tuple[str, MappingUpdate | None]":
        """One evaluation; returns ``(verdict, update)``.

        The verdict vocabulary matches
        :class:`~repro.obs.events.SpcdEvaluation` (``insufficient-evidence``,
        ``cooldown``, ``pattern-unchanged``, ``no-communication``,
        ``vetoed``, ``no-move``, ``migrated``); *update* is non-``None``
        only for ``migrated``.  ``force=True`` (a FLUSH frame, or the final
        drain evaluation) bypasses the evidence quota and the cooldown but
        still runs the filter and the improvement veto.
        """
        cfg = self.config
        self.evaluations += 1
        fresh = comm_events - self._events_at_last_trigger
        if not force:
            if fresh < cfg.filter_min_events:
                return "insufficient-evidence", None
            if now_ns - self._last_remap_ns < cfg.remap_cooldown_ns:
                return "cooldown", None
        if cfg.filter_enabled and not self.filter.should_remap(matrix):
            return "pattern-unchanged", None
        if not cfg.filter_enabled and matrix.total() == 0:
            return "no-communication", None
        self._events_at_last_trigger = comm_events
        mapping = self.mapper.map(matrix, current=self.current)
        cost_now = mapping_comm_cost(matrix.matrix, self.current, self.machine)
        cost_new = mapping_comm_cost(matrix.matrix, mapping, self.machine)
        if cost_now > 0 and cost_new > cfg.min_improvement * cost_now:
            return "vetoed", None
        if np.array_equal(mapping, self.current):
            return "no-move", None
        self.current = mapping
        self.remaps += 1
        self._last_remap_ns = now_ns
        return "migrated", MappingUpdate(
            evaluation=self.evaluations,
            events_seen=int(events_seen),
            now_ns=int(now_ns),
            mapping=[int(p) for p in mapping],
            cost_now=float(cost_now),
            cost_new=float(cost_new),
            matrix_digest=digest if digest is not None else matrix_digest(matrix),
        )


# ---------------------------------------------------------------------------
# offline replay reference
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayEvaluation:
    """One evaluation of the offline replay (audit row)."""

    events_seen: int
    verdict: str
    matrix_digest: str
    mapping: "list[int] | None"


@dataclass(frozen=True)
class ReplayResult:
    """What the offline reference pipeline produced for an event stream."""

    evaluations: "list[ReplayEvaluation]"
    final_digest: str
    final_mapping: "list[int]"
    events: int
    comm_events: int
    remaps: int


def _as_batch_tuple(batch) -> "tuple[int, int, np.ndarray]":
    if hasattr(batch, "vaddrs"):
        return int(batch.tid), int(batch.now_ns), np.asarray(batch.vaddrs, dtype=np.int64)
    tid, now_ns, vaddrs = batch
    return int(tid), int(now_ns), np.asarray(vaddrs, dtype=np.int64)


def offline_reference(
    batches: "Iterable[EventBatch | tuple[int, int, np.ndarray]]",
    config: "SessionConfig",
    machine: "Machine | None" = None,
    *,
    flush_after: "Sequence[int]" = (),
) -> ReplayResult:
    """Replay an event stream through the unsharded offline pipeline.

    Feeds every batch to a single :class:`~repro.core.spcd.SpcdDetector`
    (the engine :class:`~repro.core.manager.SpcdManager` hooks into the
    fault pipeline) sized to the session's *effective* (shard-rounded)
    table, and evaluates with a fresh :class:`MappingEvaluator` at the same
    event-count cadence the live session uses.  ``flush_after`` lists batch
    indices after which the live side issued a FLUSH, so forced evaluations
    replay at the same points.

    This is the acceptance reference: for any stream the service ingests,
    the digests and mappings here must equal the served ones bit for bit
    (``config.matrix_decay`` must be 1.0 for exactness; the service
    default).
    """
    machine = machine or dual_xeon_e5_2650()
    cfg = config
    detector = SpcdDetector(
        cfg.n_threads,
        granularity=cfg.granularity,
        window_ns=cfg.window_ns,
        table_size=cfg.effective_table_size,
        engine="array",
    )
    evaluator = MappingEvaluator(machine, cfg)
    cadence = EvalCadence(cfg.eval_every_events)
    flush_points = set(int(i) for i in flush_after)
    events_seen = 0
    last_now_ns = 0
    evaluations: list[ReplayEvaluation] = []

    def evaluate(force: bool) -> None:
        digest = matrix_digest(detector.matrix)
        verdict, update = evaluator.decide(
            detector.matrix,
            comm_events=detector.stats.comm_events,
            events_seen=events_seen,
            now_ns=last_now_ns,
            digest=digest,
            force=force,
        )
        evaluations.append(
            ReplayEvaluation(
                events_seen=events_seen,
                verdict=verdict,
                matrix_digest=digest,
                mapping=update.mapping if update else None,
            )
        )
        if cfg.matrix_decay < 1.0:
            detector.matrix.decay(cfg.matrix_decay)

    for index, raw in enumerate(batches):
        tid, now_ns, vaddrs = _as_batch_tuple(raw)
        n = int(vaddrs.size)
        if n:
            detector.on_fault_batch(
                FaultBatch(
                    thread_id=tid,
                    pu_id=0,
                    now_ns=now_ns,
                    vaddrs=vaddrs,
                    vpns=vaddrs >> PAGE_SHIFT,
                    is_write=np.zeros(n, dtype=bool),
                    injected=np.ones(n, dtype=bool),
                    home_nodes=np.zeros(n, dtype=np.int64),
                )
            )
            events_seen += n
            last_now_ns = max(last_now_ns, now_ns)
        for _ in range(cadence.due(events_seen)):
            evaluate(force=False)
        if index in flush_points:
            evaluate(force=True)

    return ReplayResult(
        evaluations=evaluations,
        final_digest=matrix_digest(detector.matrix),
        final_mapping=[int(p) for p in evaluator.current],
        events=events_seen,
        comm_events=int(detector.stats.comm_events),
        remaps=evaluator.remaps,
    )
