"""Live metrics of the mapping service: counters, gauges, histograms.

A tiny dependency-free registry in the Prometheus exposition idiom: metric
*families* (name + help + kind) own one instrument per label set, and
:meth:`MetricsRegistry.render` emits the standard plaintext format
(``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples) that
the server's ``/metrics`` listener serves verbatim.  :meth:`snapshot`
returns the same data as a JSON-friendly dict — the shape the
:class:`~repro.obs.events.ServeEnd` trace event carries, which is how the
service's final metrics fold into ``python -m repro.obs.report``.

Rendering is deterministic: families sort by name, children by label
values, so two registries holding the same values render byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: default latency buckets (seconds) — sub-millisecond ingest up to multi-
#: second evaluation stalls
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down (queue depth, live sessions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount*."""
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``observe`` is O(buckets) — fine for the per-batch call rate.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile from the cumulative buckets (upper bound).

        Returns the smallest bucket bound covering fraction *q* of the
        observations, or the largest bound if *q* falls in the +Inf bucket
        — good enough for a load benchmark's p99 latency gate.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cumulative in zip(self.buckets, self.counts):
            if cumulative >= target:
                return bound
        return self.buckets[-1]


@dataclass
class _Family:
    """One metric family: help text, kind, and per-label-set children."""

    name: str
    help: str
    kind: str  # "counter" | "gauge" | "histogram"
    buckets: "tuple[float, ...] | None" = None
    children: "dict[tuple[tuple[str, str], ...], Any]" = field(default_factory=dict)


def _label_key(labels: "dict[str, str]") -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: "tuple[tuple[str, str], ...]") -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class MetricsRegistry:
    """Registry of metric families, rendered in Prometheus text format."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- instrument access -----------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter child of family *name* for *labels* (created lazily)."""
        return self._child(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge child of family *name* for *labels* (created lazily)."""
        return self._child(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram child of family *name* for *labels* (created lazily)."""
        return self._child(name, help, "histogram", labels, buckets=tuple(buckets))

    def _child(
        self,
        name: str,
        help: str,
        kind: str,
        labels: "dict[str, str]",
        buckets: "tuple[float, ...] | None" = None,
    ) -> Any:
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, help=help, kind=kind, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name} is a {family.kind}, not a {kind}"
            )
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == "counter":
                child = Counter()
            elif kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(family.buckets or DEFAULT_BUCKETS)
            family.children[key] = child
        return child

    # -- exposition ---------------------------------------------------------
    def render(self) -> str:
        """Prometheus-style plaintext exposition of every family."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    cumulative_labels = dict(key)
                    for bound, cum in zip(child.buckets, child.counts):
                        le = _label_text(_label_key({**cumulative_labels, "le": repr(bound)}))
                        lines.append(f"{name}_bucket{le} {cum}")
                    inf = _label_text(_label_key({**cumulative_labels, "le": "+Inf"}))
                    lines.append(f"{name}_bucket{inf} {child.count}")
                    lines.append(f"{name}_sum{_label_text(key)} {_num(child.sum)}")
                    lines.append(f"{name}_count{_label_text(key)} {child.count}")
                else:
                    lines.append(f"{name}{_label_text(key)} {_num(child.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> "dict[str, Any]":
        """JSON-friendly dump: family -> list of {labels, value|histogram}.

        Histogram entries carry their cumulative per-bucket counts (bound
        -> count, ``+Inf`` last) alongside sum/count, so the exposition
        and the snapshot describe the same distribution — a snapshot
        folded into a trace loses no latency information.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            entries = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                    buckets = {
                        repr(bound): cum
                        for bound, cum in zip(child.buckets, child.counts)
                    }
                    buckets["+Inf"] = child.count
                    entry["buckets"] = buckets
                else:
                    entry["value"] = child.value
                entries.append(entry)
            out[name] = {"kind": family.kind, "values": entries}
        return out


def _num(value: float) -> str:
    """Render integers without a trailing .0 (stable, diff-friendly output)."""
    return str(int(value)) if float(value).is_integer() else repr(value)
