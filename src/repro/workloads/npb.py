"""Synthetic NAS Parallel Benchmark workloads.

One generator class, ten parameterisations.  The parameters encode what the
paper reports about each benchmark (Sec. V-C, Fig. 7, Table II):

* **pattern** — BT, LU, SP, UA and MG are domain-decomposition codes whose
  communication is a neighbour chain (heterogeneous); CG and DC are chains
  over an all-to-all background (slightly heterogeneous); FT and IS are
  homogeneous all-to-all; EP barely communicates.
* **intensity** (``shared_fraction``) — how much of the access stream hits
  shared data; SP communicates the most (largest gains in the paper), MG has
  a visible pattern but little shared traffic relative to its memory-bound
  private streams (and indeed gains nothing in the paper).
* **footprint** — private pages per thread; larger values make a benchmark
  DRAM-bound (MG, DC).
* **instructions per access** — compute-bound codes like EP have high
  values, so their time barely depends on the memory system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import WorkloadError
from repro.mem.addresspace import AddressSpace, Region
from repro.units import CACHE_LINE_SIZE, PAGE_SIZE
from repro.workloads.base import AccessBatch, SharedPairSpec, Workload
from repro.workloads.patterns import (
    chain_pattern,
    mixed_pattern,
    none_pattern,
    uniform_pattern,
)


@dataclass(frozen=True)
class NpbSpec:
    """Parameters of one synthetic NPB benchmark."""

    name: str
    pattern: str  # "chain" | "mixed" | "uniform" | "none"
    classification: str  # "heterogeneous" | "homogeneous"
    shared_fraction: float = 0.2
    pair_pages: int = 8
    global_pages: int = 128
    private_pages: int = 160
    write_fraction: float = 0.3
    instructions_per_access: float = 3.0
    locality: float = 2.0
    chain_weight: float = 1.0
    background_weight: float = 0.12
    #: fraction of the cold stream that scans sequentially through a large
    #: per-thread buffer.  Streaming traffic is compulsory-miss DRAM load
    #: that no placement can avoid — it models the memory-bound character
    #: of DC/MG (high MPKI, no mapping gains) without creating a giant
    #: resident working set that would have to be refetched after every
    #: thread migration.
    stream_fraction: float = 0.15
    #: size of the per-thread streaming buffer in pages
    stream_pages: int = 192


#: The ten NPB-OMP benchmarks of the paper's evaluation, in its order.
NPB_SPECS: dict[str, NpbSpec] = {
    "BT": NpbSpec("BT", "chain", "heterogeneous", shared_fraction=0.30,
                  private_pages=64, instructions_per_access=3.0,
                  stream_fraction=0.05, stream_pages=192),
    "CG": NpbSpec("CG", "mixed", "heterogeneous", shared_fraction=0.26,
                  private_pages=48, instructions_per_access=2.5,
                  background_weight=0.05, stream_fraction=0.06, stream_pages=128),
    "DC": NpbSpec("DC", "mixed", "heterogeneous", shared_fraction=0.20,
                  private_pages=64, instructions_per_access=4.0,
                  background_weight=0.05, stream_fraction=0.40, stream_pages=512),
    "EP": NpbSpec("EP", "none", "homogeneous", shared_fraction=0.015,
                  private_pages=24, instructions_per_access=16.0,
                  global_pages=32, stream_fraction=0.0),
    "FT": NpbSpec("FT", "uniform", "homogeneous", shared_fraction=0.24,
                  private_pages=64, instructions_per_access=3.5,
                  global_pages=192, stream_fraction=0.35, stream_pages=256),
    "IS": NpbSpec("IS", "uniform", "homogeneous", shared_fraction=0.22,
                  private_pages=48, instructions_per_access=2.0,
                  global_pages=160, stream_fraction=0.30, stream_pages=192),
    "LU": NpbSpec("LU", "chain", "heterogeneous", shared_fraction=0.30,
                  private_pages=56, instructions_per_access=2.8,
                  stream_fraction=0.05, stream_pages=192),
    "MG": NpbSpec("MG", "chain", "heterogeneous", shared_fraction=0.07,
                  private_pages=64, instructions_per_access=2.2,
                  stream_fraction=0.55, stream_pages=512),
    "SP": NpbSpec("SP", "chain", "heterogeneous", shared_fraction=0.48,
                  private_pages=56, instructions_per_access=2.6,
                  stream_fraction=0.04, stream_pages=160),
    "UA": NpbSpec("UA", "chain", "heterogeneous", shared_fraction=0.33,
                  private_pages=56, instructions_per_access=3.0,
                  stream_fraction=0.06, stream_pages=176),
}


class SyntheticNpbWorkload(Workload):
    """Access-stream generator for one :class:`NpbSpec`."""

    def __init__(self, spec: NpbSpec, n_threads: int = 32) -> None:
        super().__init__(spec.name, n_threads)
        self.spec = spec
        self.instructions_per_access = spec.instructions_per_access
        self.write_fraction = spec.write_fraction
        self._ground = self._build_pattern()
        self._private: list[Region] = []
        self._global: Region | None = None
        self._pair_specs: list[SharedPairSpec] = []
        #: per-thread channel tables, built at setup
        self._channels: list[tuple[list[Region], np.ndarray]] = []

    def _build_pattern(self) -> np.ndarray:
        n = self.n_threads
        spec = self.spec
        if spec.pattern == "chain":
            return chain_pattern(n, spec.chain_weight)
        if spec.pattern == "mixed":
            return mixed_pattern(n, spec.chain_weight, spec.background_weight)
        if spec.pattern == "uniform":
            return uniform_pattern(n, 1.0)
        if spec.pattern == "none":
            return none_pattern(n)
        raise WorkloadError(f"unknown pattern kind {spec.pattern!r}")

    # -- lifecycle -----------------------------------------------------------
    def setup(self, address_space: AddressSpace) -> None:
        spec = self.spec
        n = self.n_threads
        self._setup_hot(address_space)
        self._private = [
            address_space.mmap(f"{spec.name}.priv{t}", spec.private_pages * PAGE_SIZE)
            for t in range(n)
        ]
        self._streams = []
        self._stream_pos = [0] * n
        if spec.stream_fraction > 0:
            self._streams = [
                address_space.mmap(f"{spec.name}.stream{t}", spec.stream_pages * PAGE_SIZE)
                for t in range(n)
            ]
        # All-to-all communication flows through one global shared region.
        uses_global = spec.pattern in ("uniform", "mixed", "none")
        if uses_global:
            self._global = address_space.mmap(
                f"{spec.name}.global", spec.global_pages * PAGE_SIZE
            )
        # Pairwise chain links get dedicated small shared regions.
        if spec.pattern in ("chain", "mixed"):
            base = chain_pattern(n, spec.chain_weight)
            for i in range(n):
                for j in range(i + 1, n):
                    if base[i, j] > 0:
                        # The shared halo between two sub-domains grows with
                        # the amount of communication, so SPCD's page-level
                        # sampling sees amplitudes, not just adjacency.
                        pages = max(1, round(spec.pair_pages * base[i, j]))
                        region = address_space.mmap(
                            f"{spec.name}.pair{i}_{j}", pages * PAGE_SIZE
                        )
                        self._pair_specs.append(
                            SharedPairSpec(threads=(i, j), region=region, weight=base[i, j])
                        )
        self._build_channels()
        self._mark_setup()

    def _build_channels(self) -> None:
        """Per-thread list of shared regions with selection probabilities."""
        spec = self.spec
        self._channels = []
        for t in range(self.n_threads):
            regions: list[Region] = []
            weights: list[float] = []
            for ps in self._pair_specs:
                if t in ps.threads:
                    regions.append(ps.region)
                    weights.append(ps.weight)
            if self._global is not None:
                # Background weight: this thread's total all-to-all traffic.
                bg = {
                    "uniform": float(self.n_threads - 1),
                    "mixed": spec.background_weight * (self.n_threads - 1),
                    "none": 1.0,
                }.get(spec.pattern, 0.0)
                regions.append(self._global)
                weights.append(bg)
            w = np.asarray(weights, dtype=float)
            if w.sum() <= 0:
                w = np.ones_like(w) if len(w) else np.array([1.0])
                if not regions:
                    regions = [self._private[t]]
            self._channels.append((regions, w / w.sum()))

    # -- generation ------------------------------------------------------------
    def _stream_addresses(self, tid: int, n: int) -> np.ndarray:
        """Sequential line-granular scan through the thread's stream buffer."""
        region = self._streams[tid]
        total_lines = region.size // CACHE_LINE_SIZE
        pos = self._stream_pos[tid]
        idx = (pos + np.arange(n, dtype=np.int64)) % total_lines
        self._stream_pos[tid] = int((pos + n) % total_lines)
        return region.base + idx * CACHE_LINE_SIZE

    def _cold_addresses(self, tid: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Cold-stream addresses: shared channels + scan + private set."""
        spec = self.spec
        if spec.stream_fraction > 0 and n:
            stream_mask = rng.random(n) < spec.stream_fraction
            n_stream = int(stream_mask.sum())
            if n_stream:
                out = np.empty(n, dtype=np.int64)
                out[stream_mask] = self._stream_addresses(tid, n_stream)
                out[~stream_mask] = self._mixed_cold(tid, n - n_stream, rng)
                return out
        return self._mixed_cold(tid, n, rng)

    def _mixed_cold(self, tid: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Shared-channel + private-working-set addresses."""
        spec = self.spec
        shared_mask = rng.random(n) < spec.shared_fraction
        n_shared = int(shared_mask.sum())
        vaddrs = np.empty(n, dtype=np.int64)
        vaddrs[~shared_mask] = self._addresses_in_region(
            self._private[tid], n - n_shared, rng, locality=spec.locality
        )
        if n_shared:
            regions, probs = self._channels[tid]
            choice = rng.choice(len(regions), size=n_shared, p=probs)
            shared_addrs = np.empty(n_shared, dtype=np.int64)
            for r_idx in np.unique(choice):
                sel = choice == r_idx
                shared_addrs[sel] = self._addresses_in_region(
                    regions[r_idx], int(sel.sum()), rng, locality=spec.locality
                )
            vaddrs[shared_mask] = shared_addrs
        return vaddrs

    def generate(
        self, tid: int, n: int, now_ns: int, rng: np.random.Generator
    ) -> AccessBatch:
        self._require_setup()
        vaddrs = self._mix_hot(
            tid, n, rng, lambda m: self._cold_addresses(tid, m, rng)
        )
        return AccessBatch(tid=tid, vaddrs=vaddrs, is_write=self._write_flags(n, rng))

    # -- ground truth -------------------------------------------------------------
    def ground_truth(self, now_ns: int | None = None) -> CommunicationMatrix:
        return CommunicationMatrix(self.n_threads, self._ground)

    @property
    def classification(self) -> str:
        """Paper's pattern class: heterogeneous or homogeneous."""
        return self.spec.classification


def make_npb(name: str, n_threads: int = 32) -> SyntheticNpbWorkload:
    """Instantiate one of the ten NPB benchmarks by name (case-insensitive)."""
    key = name.upper()
    if key not in NPB_SPECS:
        raise WorkloadError(f"unknown NPB benchmark {name!r}; have {sorted(NPB_SPECS)}")
    return SyntheticNpbWorkload(NPB_SPECS[key], n_threads)
