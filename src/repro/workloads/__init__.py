"""Synthetic parallel workloads.

The paper evaluates with the OpenMP NAS Parallel Benchmarks and a two-phase
producer/consumer micro-benchmark.  Since SPCD observes only *which thread
touches which page when*, these generators reproduce each benchmark's
published sharing structure (communication pattern, intensity, footprint,
read/write mix) as per-thread memory-access streams; the arithmetic itself
is irrelevant to the mechanism and is represented by the instructions-per-
access factor of the time model.
"""

from repro.workloads.base import AccessBatch, SharedPairSpec, Workload
from repro.workloads.npb import NPB_SPECS, NpbSpec, SyntheticNpbWorkload, make_npb
from repro.workloads.patterns import (
    chain_pattern,
    distant_pairs_pattern,
    neighbor_pairs_pattern,
    uniform_pattern,
)
from repro.workloads.producer_consumer import ProducerConsumerWorkload
from repro.workloads.trace import TraceCollector, TraceRecord

__all__ = [
    "AccessBatch",
    "NPB_SPECS",
    "NpbSpec",
    "ProducerConsumerWorkload",
    "SharedPairSpec",
    "SyntheticNpbWorkload",
    "TraceCollector",
    "TraceRecord",
    "Workload",
    "chain_pattern",
    "distant_pairs_pattern",
    "make_npb",
    "neighbor_pairs_pattern",
    "uniform_pattern",
]
