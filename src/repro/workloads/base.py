"""Workload interface: per-thread memory-access stream generators.

A workload owns regions in the application's address space and produces, for
any thread and point in virtual time, a batch of virtual addresses plus
read/write flags.  Communication is *implicit*, exactly as in shared-memory
programs: it exists only as overlapping page accesses between threads, which
is all SPCD ever observes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import WorkloadError
from repro.mem.addresspace import AddressSpace, Region
from repro.units import CACHE_LINE_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class AccessBatch:
    """A batch of memory accesses by one thread."""

    tid: int
    vaddrs: np.ndarray
    is_write: np.ndarray

    def __post_init__(self) -> None:
        if self.vaddrs.shape != self.is_write.shape:
            raise WorkloadError("vaddrs and is_write must have equal shape")

    def __len__(self) -> int:
        return int(self.vaddrs.size)


@dataclass(frozen=True)
class SharedPairSpec:
    """One shared region between a pair (or clique) of threads."""

    threads: tuple[int, ...]
    region: Region
    weight: float


class Workload(abc.ABC):
    """Base class for all synthetic workloads."""

    def __init__(self, name: str, n_threads: int) -> None:
        if n_threads < 2:
            raise WorkloadError("workloads need at least two threads")
        self.name = name
        self.n_threads = n_threads
        self._setup_done = False

    # -- lifecycle ---------------------------------------------------------
    @abc.abstractmethod
    def setup(self, address_space: AddressSpace) -> None:
        """Allocate this workload's regions in *address_space*."""

    def _mark_setup(self) -> None:
        self._setup_done = True

    def _require_setup(self) -> None:
        if not self._setup_done:
            raise WorkloadError(f"{self.name}: setup() must run before generate()")

    # -- stream generation -----------------------------------------------------
    @abc.abstractmethod
    def generate(
        self, tid: int, n: int, now_ns: int, rng: np.random.Generator
    ) -> AccessBatch:
        """*n* accesses by thread *tid* at virtual time *now_ns*."""

    # -- ground truth ------------------------------------------------------------
    @abc.abstractmethod
    def ground_truth(self, now_ns: int | None = None) -> CommunicationMatrix:
        """The true communication pattern (overall, or at a given time)."""

    #: non-memory instructions executed per memory access (time model input)
    instructions_per_access: float = 3.0
    #: fraction of accesses that are writes
    write_fraction: float = 0.3
    #: fraction of accesses hitting the thread's hot set (stack, loop
    #: variables, registers spilled to L1-resident lines) — gives realistic
    #: L1 hit rates; the remaining *cold* accesses carry the sharing pattern
    hot_fraction: float = 0.78
    #: size of the per-thread hot set in pages (fits comfortably in L1)
    hot_pages: int = 2

    # -- shared helpers -----------------------------------------------------------
    @staticmethod
    def _addresses_in_region(
        region: Region,
        n: int,
        rng: np.random.Generator,
        *,
        locality: float = 2.0,
        line_span: int = 8,
    ) -> np.ndarray:
        """Random line-aligned addresses in *region* with temporal locality.

        Page choice follows ``floor(pages * u**locality)`` — a power-law
        favouring low page indices, so each thread has a hot subset and
        caches behave realistically.  ``locality=1`` is uniform.

        Only the first *line_span* lines of each page are used: the paper's
        codes stride through arrays with strong spatial reuse, so the number
        of distinct lines per resident page is far below 64; sampling all 64
        would turn the access stream into a compulsory-miss generator and
        drown every placement effect in DRAM traffic.
        """
        pages = max(1, region.size // PAGE_SIZE)
        page_idx = np.floor(pages * rng.random(n) ** locality).astype(np.int64)
        span = min(line_span, PAGE_SIZE // CACHE_LINE_SIZE)
        line_idx = rng.integers(0, span, size=n)
        return region.base + page_idx * PAGE_SIZE + line_idx * CACHE_LINE_SIZE

    def _write_flags(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Bernoulli write flags at the workload's write fraction."""
        return rng.random(n) < self.write_fraction

    # -- hot-set mixture -----------------------------------------------------------
    def _setup_hot(self, address_space: AddressSpace) -> None:
        """Allocate each thread's private hot region (call from setup())."""
        self._hot_regions = [
            address_space.mmap(f"{self.name}.hot{t}", self.hot_pages * PAGE_SIZE)
            for t in range(self.n_threads)
        ]

    def _mix_hot(
        self,
        tid: int,
        n: int,
        rng: np.random.Generator,
        cold_fn,
    ) -> np.ndarray:
        """Addresses: hot-set hits mixed with *cold_fn(n_cold)* addresses.

        ``cold_fn`` receives the number of cold accesses and returns their
        addresses; the sharing pattern lives entirely in the cold stream.
        """
        if not hasattr(self, "_hot_regions"):
            raise WorkloadError(f"{self.name}: _setup_hot() was not called")
        hot_mask = rng.random(n) < self.hot_fraction
        n_hot = int(hot_mask.sum())
        vaddrs = np.empty(n, dtype=np.int64)
        vaddrs[hot_mask] = self._addresses_in_region(
            self._hot_regions[tid], n_hot, rng, locality=1.0, line_span=64
        )
        vaddrs[~hot_mask] = cold_fn(n - n_hot)
        return vaddrs
