"""The two-phase producer/consumer benchmark (paper Sec. V-B, Fig. 5).

Pairs of threads communicate through a shared vector; the pairing switches
periodically between two phases:

* **phase 1** — neighbouring threads pair up: (0,1), (2,3), ...
* **phase 2** — distant threads pair up: (i, i + n/2).

The producer of a pair (its lower-id thread) mostly writes the shared
vector, the consumer mostly reads it, and both also touch a small private
region.  The best mapping changes with the phase, which is exactly what the
paper uses to demonstrate SPCD's *dynamic* detection (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import WorkloadError
from repro.mem.addresspace import AddressSpace, Region
from repro.units import MSEC, PAGE_SIZE
from repro.workloads.base import AccessBatch, Workload
from repro.workloads.patterns import distant_pairs_pattern, neighbor_pairs_pattern


class ProducerConsumerWorkload(Workload):
    """16 producer/consumer pairs (32 threads) with periodic phase changes."""

    def __init__(
        self,
        n_threads: int = 32,
        *,
        phase_period_ns: int = 150 * MSEC,
        shared_fraction: float = 0.5,
        vector_pages: int = 8,
        private_pages: int = 32,
        start_phase: int = 0,
    ) -> None:
        if n_threads % 2:
            raise WorkloadError("producer/consumer needs an even thread count")
        super().__init__("producer_consumer", n_threads)
        self.phase_period_ns = phase_period_ns
        self.shared_fraction = shared_fraction
        self.vector_pages = vector_pages
        self.private_pages = private_pages
        self.start_phase = start_phase
        self.instructions_per_access = 2.0
        self.write_fraction = 0.5
        self._private: list[Region] = []
        self._vectors: dict[tuple[int, int], Region] = {}

    # -- pairings ---------------------------------------------------------
    def partner_of(self, tid: int, phase: int) -> int:
        """The thread *tid* communicates with during *phase* (0 or 1)."""
        n = self.n_threads
        if phase % 2 == 0:
            return tid + 1 if tid % 2 == 0 else tid - 1
        half = n // 2
        return tid + half if tid < half else tid - half

    def phase_at(self, now_ns: int) -> int:
        """Which phase is active at time *now_ns* (0 or 1)."""
        return (now_ns // self.phase_period_ns + self.start_phase) % 2

    def is_producer(self, tid: int, phase: int) -> bool:
        """The lower-id member of each pair produces (mostly writes)."""
        return tid < self.partner_of(tid, phase)

    # -- lifecycle -----------------------------------------------------------
    def setup(self, address_space: AddressSpace) -> None:
        n = self.n_threads
        self._setup_hot(address_space)
        self._private = [
            address_space.mmap(f"pc.priv{t}", self.private_pages * PAGE_SIZE)
            for t in range(n)
        ]
        for phase in (0, 1):
            for tid in range(n):
                partner = self.partner_of(tid, phase)
                key = (min(tid, partner), max(tid, partner))
                if key not in self._vectors:
                    self._vectors[key] = address_space.mmap(
                        f"pc.vec{key[0]}_{key[1]}", self.vector_pages * PAGE_SIZE
                    )
        self._mark_setup()

    # -- generation -------------------------------------------------------------
    def generate(
        self, tid: int, n: int, now_ns: int, rng: np.random.Generator
    ) -> AccessBatch:
        self._require_setup()
        phase = self.phase_at(now_ns)
        partner = self.partner_of(tid, phase)
        key = (min(tid, partner), max(tid, partner))
        vector = self._vectors[key]

        def cold(m: int) -> np.ndarray:
            shared_mask = rng.random(m) < self.shared_fraction
            n_shared = int(shared_mask.sum())
            out = np.empty(m, dtype=np.int64)
            out[shared_mask] = self._addresses_in_region(vector, n_shared, rng, locality=1.2)
            out[~shared_mask] = self._addresses_in_region(
                self._private[tid], m - n_shared, rng, locality=2.0
            )
            return out

        vaddrs = self._mix_hot(tid, n, rng, cold)
        # Producers write the shared vector, consumers read it; everything
        # else keeps the workload-level write fraction.
        writes = self._write_flags(n, rng)
        in_vector = (vaddrs >= vector.base) & (vaddrs < vector.end)
        n_vec = int(in_vector.sum())
        write_prob = 0.8 if self.is_producer(tid, phase) else 0.1
        writes[in_vector] = rng.random(n_vec) < write_prob
        return AccessBatch(tid=tid, vaddrs=vaddrs, is_write=writes)

    # -- ground truth ---------------------------------------------------------------
    def ground_truth(self, now_ns: int | None = None) -> CommunicationMatrix:
        """True pattern: phase-specific if *now_ns* given, else the blend."""
        n = self.n_threads
        if now_ns is not None:
            phase = self.phase_at(now_ns)
            pattern = (
                neighbor_pairs_pattern(n) if phase == 0 else distant_pairs_pattern(n)
            )
            return CommunicationMatrix(n, pattern)
        blend = 0.5 * neighbor_pairs_pattern(n) + 0.5 * distant_pairs_pattern(n)
        return CommunicationMatrix(n, blend)
