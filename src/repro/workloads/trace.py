"""Memory-trace capture and replay.

The paper's *oracle* mapping is built from full memory traces analysed
offline (their Sec. V-D, following [6]).  :class:`TraceCollector` records
(time, thread, page, write) tuples during a run; the oracle analyser in
:mod:`repro.oracle` turns such traces into a communication matrix with full
knowledge of every access — the upper bound SPCD is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.units import PAGE_SHIFT


@dataclass(frozen=True)
class TraceRecord:
    """One contiguous chunk of a thread's access stream."""

    tid: int
    now_ns: int
    vaddrs: np.ndarray
    is_write: np.ndarray


class TraceCollector:
    """Accumulates access batches into an in-memory trace."""

    def __init__(self, max_records: int | None = None) -> None:
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        self.total_accesses = 0

    def record(self, tid: int, now_ns: int, vaddrs: np.ndarray, is_write: np.ndarray) -> None:
        """Append one batch (drops silently once *max_records* is reached)."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(
            TraceRecord(tid=tid, now_ns=now_ns, vaddrs=vaddrs.copy(), is_write=is_write.copy())
        )
        self.total_accesses += int(vaddrs.size)

    def page_access_counts(self, n_threads: int) -> dict[int, np.ndarray]:
        """Per-page access counts by thread: page -> length-n vector."""
        counts: dict[int, np.ndarray] = {}
        for rec in self.records:
            if rec.tid >= n_threads:
                raise WorkloadError(f"trace contains tid {rec.tid} >= {n_threads}")
            pages, page_counts = np.unique(rec.vaddrs >> PAGE_SHIFT, return_counts=True)
            for page, c in zip(pages, page_counts):
                vec = counts.get(int(page))
                if vec is None:
                    vec = np.zeros(n_threads, dtype=np.int64)
                    counts[int(page)] = vec
                vec[rec.tid] += int(c)
        return counts

    def replay(self):
        """Iterate records in capture order."""
        return iter(self.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
        self.total_accesses = 0
