"""Ground-truth communication-pattern constructors.

Each returns a symmetric ``(n, n)`` matrix of *relative* communication
amounts between thread pairs.  They encode the pattern classes the paper
observes in Fig. 7: neighbour/domain-decomposition chains (BT, LU, SP, UA,
MG), weakly heterogeneous variants (CG, DC), homogeneous all-to-all (FT,
IS) and near-zero (EP), plus the two producer/consumer phases of Fig. 5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def _empty(n: int) -> np.ndarray:
    if n < 2:
        raise WorkloadError("patterns need at least two threads")
    return np.zeros((n, n))


def neighbor_pairs_pattern(n: int, weight: float = 1.0) -> np.ndarray:
    """Disjoint neighbouring pairs: (0,1), (2,3), ... (prod/cons phase 1)."""
    m = _empty(n)
    for k in range(n // 2):
        m[2 * k, 2 * k + 1] = m[2 * k + 1, 2 * k] = weight
    return m


def distant_pairs_pattern(n: int, weight: float = 1.0) -> np.ndarray:
    """Disjoint distant pairs: (i, i + n/2) (prod/cons phase 2)."""
    if n % 2:
        raise WorkloadError("distant pairs need an even thread count")
    m = _empty(n)
    half = n // 2
    for i in range(half):
        m[i, i + half] = m[i + half, i] = weight
    return m


def chain_pattern(n: int, weight: float = 1.0, falloff: float = 0.25) -> np.ndarray:
    """Domain-decomposition chain: heavy (i, i+1) links, lighter (i, i+2).

    This is the heterogeneous neighbour pattern of BT/LU/SP/UA/MG in Fig. 7:
    1-D domain decomposition shares sub-domain borders between successive
    threads, with weaker second-neighbour coupling.
    """
    m = _empty(n)
    for i in range(n - 1):
        m[i, i + 1] = m[i + 1, i] = weight
    for i in range(n - 2):
        m[i, i + 2] = m[i + 2, i] = weight * falloff
    return m


def uniform_pattern(n: int, weight: float = 1.0) -> np.ndarray:
    """Homogeneous all-to-all communication (FT, IS in Fig. 7)."""
    _empty(n)  # validates the thread count
    m = np.full((n, n), weight, dtype=float)
    np.fill_diagonal(m, 0.0)
    return m


def mixed_pattern(n: int, hetero_weight: float, uniform_weight: float) -> np.ndarray:
    """A chain over a uniform background (the CG/DC 'slightly heterogeneous'
    class of Fig. 7)."""
    return chain_pattern(n, hetero_weight) + uniform_pattern(n, uniform_weight)


def none_pattern(n: int) -> np.ndarray:
    """No communication at all (the EP limit)."""
    return _empty(n)
