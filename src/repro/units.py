"""Size and time units used throughout the simulator.

All simulated time is kept in **nanoseconds** as integers (virtual time), and
all sizes in **bytes** as integers.  These helpers exist so that magic numbers
like ``4096`` or ``10_000_000`` never appear bare at call sites.
"""

from __future__ import annotations

# --- sizes ------------------------------------------------------------------
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Default (x86-64 small) page size used by the paper's evaluation (Table I).
PAGE_SIZE: int = 4 * KIB
PAGE_SHIFT: int = 12

#: Cache line size of the modelled SandyBridge machine.
CACHE_LINE_SIZE: int = 64
CACHE_LINE_SHIFT: int = 6

# --- time -------------------------------------------------------------------
NSEC: int = 1
USEC: int = 1_000
MSEC: int = 1_000_000
SEC: int = 1_000_000_000


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_power_of_two(value: int) -> bool:
    """True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises ``ValueError`` for non-powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def format_size(nbytes: int) -> str:
    """Human-readable size (e.g. ``'20.0 MiB'``) for reports."""
    for unit, name in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if nbytes >= unit:
            return f"{nbytes / unit:.1f} {name}"
    return f"{nbytes} B"


def format_time_ns(ns: int) -> str:
    """Human-readable duration for reports (``'12.3 ms'`` style)."""
    if ns >= SEC:
        return f"{ns / SEC:.3f} s"
    if ns >= MSEC:
        return f"{ns / MSEC:.3f} ms"
    if ns >= USEC:
        return f"{ns / USEC:.3f} us"
    return f"{ns} ns"
