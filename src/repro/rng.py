"""Deterministic random-number management.

Every stochastic component takes a :class:`numpy.random.Generator`.  To keep
whole experiments reproducible while letting repetitions differ, seeds are
*derived*: a root seed plus a stream of labels yields independent child
generators (via ``numpy``'s ``SeedSequence.spawn`` mechanism, keyed by a stable
hash of the labels so the derivation does not depend on call order).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "make_rng", "RngFactory"]


def derive_seed(root: int, *labels: object) -> int:
    """Derive a 63-bit child seed from *root* and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    BLAKE2b over the repr of the labels, not :func:`hash`).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def make_rng(root: int, *labels: object) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` seeded from *root* + labels."""
    return np.random.default_rng(derive_seed(root, *labels))


class RngFactory:
    """Factory bound to a root seed; hands out labelled child generators.

    Components receive the factory and pull named streams, so adding a new
    consumer never perturbs existing streams:

    >>> f = RngFactory(42)
    >>> a = f.rng("workload", 0)
    >>> b = f.rng("injector")
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def rng(self, *labels: object) -> np.random.Generator:
        """Child generator for the given label path."""
        return make_rng(self.root_seed, *labels)

    def seed(self, *labels: object) -> int:
        """Child integer seed for the given label path."""
        return derive_seed(self.root_seed, *labels)

    def spawn(self, *labels: object) -> "RngFactory":
        """A sub-factory rooted at the derived seed (for nested components)."""
        return RngFactory(self.seed(*labels))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(root_seed={self.root_seed})"


def interleave_choice(rng: np.random.Generator, weights: Iterable[float]) -> int:
    """Pick an index proportionally to *weights* (non-negative, not all zero)."""
    w = np.asarray(list(weights), dtype=float)
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    return int(rng.choice(len(w), p=w / total))
