"""Exception hierarchy for the SPCD reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""


class TopologyError(ConfigurationError):
    """A machine topology is malformed (e.g. non-uniform children)."""


class AddressError(ReproError):
    """A virtual or physical address is out of range or misaligned."""


class PageFaultError(ReproError):
    """The fault pipeline was driven in an inconsistent way."""


class SchedulerError(ReproError):
    """Scheduler state was violated (e.g. migrating an unknown task)."""


class MappingError(ReproError):
    """The mapping algorithm received an unsolvable instance."""


class MatchingError(MappingError):
    """A perfect matching does not exist or the matcher failed."""


class WorkloadError(ReproError):
    """A workload generator was misconfigured."""


class SimulationError(ReproError):
    """The execution engine reached an inconsistent state."""


class ServeError(ReproError):
    """The mapping service or its client reached an inconsistent state."""


class ProtocolError(ServeError):
    """A malformed or out-of-sequence frame arrived on a serve connection."""


class AdmissionError(ServeError):
    """The server refused a session (capacity or per-tenant memory caps).

    Carries the machine-readable refusal ``code`` the server sent
    (``draining``, ``at-capacity``, ``too-large``, ``bad-hello``).
    """

    def __init__(self, message: str, code: str = "refused") -> None:
        super().__init__(message)
        self.code = code


class CellExecutionError(SimulationError):
    """One grid cell could not produce a result after all retry attempts."""


class GridExecutionError(SimulationError):
    """A strict-mode grid sweep had cells that exhausted their retries.

    Carries the typed failure records so callers can inspect exactly which
    cells failed and why.
    """

    def __init__(self, message: str, failures: "list | None" = None) -> None:
        super().__init__(message)
        #: the sweep's :class:`~repro.engine.gridrunner.CellFailure` records
        self.failures = list(failures or [])
