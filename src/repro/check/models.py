"""Trivially-correct reference models for the model-checked subsystems.

A model here must be *obviously* right — simple enough that its own
correctness argument fits in its docstring — because the stateful drivers
in ``tests/model/`` compare the real implementation against it on every
operation.  Keep models dumb: deques, dicts and literal transition tables,
never a second copy of the production algorithm.
"""

from __future__ import annotations

from collections import deque

__all__ = ["RingModel", "ServeModel"]

#: the ring's per-record length prefix, from the wire contract
_LEN_SIZE = 4


class RingModel:
    """Deque model of the :class:`~repro.serve.shm.EventRing` contract.

    State is a FIFO of ``(payload, advance)`` pairs plus the two absolute
    byte counters of the SPSC contract.  The placement rule is restated
    from the documented wire layout (records are contiguous; one that
    would straddle the wrap point skips the tail room and restarts at
    offset 0), so the model predicts *exactly* which pushes succeed, what
    every pop returns, and the occupancy after each step — with no byte
    buffer, no packing and no shared memory to get wrong.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._fifo: "deque[tuple[bytes, int]]" = deque()
        self.head = 0
        self.tail = 0

    @property
    def record_cap(self) -> int:
        """Largest payload that fits at any offset: ``2*(4+L) <= capacity``."""
        return self.capacity // 2 - 2 * _LEN_SIZE

    def _advance(self, counter: int, length: int) -> int:
        """Counter advance placing a *length*-byte record at *counter*.

        The record needs ``4 + length`` contiguous bytes; if the tail room
        (bytes to the wrap point) cannot hold them, the whole room is
        skipped and the record lives at offset 0.
        """
        room = self.capacity - counter % self.capacity
        if room < _LEN_SIZE + length:
            return room + _LEN_SIZE + length
        return _LEN_SIZE + length

    def try_push(self, payload: bytes) -> bool:
        """Model push: False when the free space cannot take the record."""
        if len(payload) > self.record_cap:
            raise ValueError("oversize record")
        advance = self._advance(self.tail, len(payload))
        if advance > self.capacity - (self.tail - self.head):
            return False
        self._fifo.append((bytes(payload), advance))
        self.tail += advance
        return True

    def pop(self) -> "bytes | None":
        """Model pop: the oldest unconsumed payload, None when empty."""
        return self._fifo[0][0] if self._fifo else None

    def advance(self) -> None:
        """Model advance: release the oldest record."""
        _, adv = self._fifo.popleft()
        self.head += adv

    @property
    def occupancy(self) -> int:
        return self.tail - self.head


# ---------------------------------------------------------------------------
# serve admission / credit-window / drain
# ---------------------------------------------------------------------------
#: connection states
NEW = "new"  # socket open, HELLO not yet accepted
OPEN = "open"  # admitted, session live
CLOSED = "closed"  # terminal

#: the admission decision table: (server draining?, at capacity?, hello kind)
#: -> refusal code, or None for WELCOME.  Order mirrors MappingServer._admit:
#: draining wins over capacity wins over payload validation.
ADMISSION = {
    (True, False): lambda kind: "draining",
    (True, True): lambda kind: "draining",
    (False, True): lambda kind: "at-capacity",
    (False, False): lambda kind: {
        "ok": None,
        "bad-version": "bad-hello",
        "no-tenant": "bad-hello",
        "bad-threads": "bad-hello",
        "unknown-key": "bad-hello",
        "too-large": "too-large",
    }[kind],
}


class ServeModel:
    """Explicit transition table for the serve daemon's control plane.

    Models exactly what the admission/credit/drain docstrings promise:

    * admission refuses with the codes of :data:`ADMISSION` (draining
      beats at-capacity beats payload validation);
    * an admitted session is granted ``credit_window`` credits and the
      server enforces ``2 * credit_window`` in-flight events — one more
      event is a protocol error;
    * every accepted batch of *n* events is eventually credited back with
      exactly *n* (flushes credit 0), FIFO per session, none lost;
    * BYE and drain end a session with a SUMMARY whose event count equals
      everything accepted; after drain starts, no session is admitted.

    Detection content (MAPPING payloads) is out of scope — the digest
    parity suites in ``tests/test_serve*.py`` pin that; this model pins
    the protocol state machine around it.
    """

    WINDOW_SLACK = 2

    def __init__(self, max_sessions: int, credit_window: int) -> None:
        self.max_sessions = max_sessions
        self.credit_window = credit_window
        self.draining = False
        #: client id -> state
        self.conns: "dict[int, str]" = {}
        #: client id -> events accepted but not yet credited
        self.outstanding: "dict[int, int]" = {}
        #: client id -> total events accepted over the session's life
        self.total_events: "dict[int, int]" = {}

    @property
    def live(self) -> int:
        return sum(1 for s in self.conns.values() if s == OPEN)

    def admit(self, cid: int, kind: str = "ok") -> "str | None":
        """HELLO transition: returns the refusal code, None for WELCOME."""
        at_capacity = self.live >= self.max_sessions
        code = ADMISSION[(self.draining, at_capacity)](kind)
        if code is None:
            self.conns[cid] = OPEN
            self.outstanding[cid] = 0
            self.total_events[cid] = 0
        else:
            self.conns[cid] = CLOSED
        return code

    def events(self, cid: int, n: int) -> "str | None":
        """EVENTS transition: 'overrun' past the enforced window, else ok."""
        assert self.conns[cid] == OPEN
        self.outstanding[cid] += n
        if self.outstanding[cid] > self.WINDOW_SLACK * self.credit_window:
            # the reader stops at the overrun; queued batches still drain
            self.conns[cid] = CLOSED
            return "overrun"
        self.total_events[cid] += n
        return None

    def credited(self, cid: int, n: int) -> None:
        """CREDIT observed: the server returned *n* events of window."""
        self.outstanding[cid] -= n

    def bye(self, cid: int) -> int:
        """BYE transition: returns the expected SUMMARY event count."""
        assert self.conns[cid] == OPEN
        self.conns[cid] = CLOSED
        return self.total_events[cid]

    def drain(self) -> "dict[int, int]":
        """Drain transition: expected SUMMARY counts of every open session."""
        self.draining = True
        ended = {
            cid: self.total_events[cid]
            for cid, state in self.conns.items()
            if state == OPEN
        }
        for cid in ended:
            self.conns[cid] = CLOSED
        return ended
