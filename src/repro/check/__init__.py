"""Exhaustive small-model checking of the concurrency-critical subsystems.

Commuter-style correctness harness (``/root/related``'s commuter model-checks
a POSIX fs the same way): every concurrency-critical state machine in the
repo is paired with a **trivially-correct Python model** and driven through
either hypothesis stateful exploration or brute-force enumeration of the
interleavings hypothesis cannot shrink well.  The four subsystems under
check, and their models:

* :class:`~repro.serve.shm.EventRing` (router → worker SPSC ring) vs
  :class:`RingModel` — a deque of payloads plus two absolute byte counters;
* serve admission / credit-window / drain
  (:class:`~repro.serve.server.MappingServer`) vs :class:`ServeModel` — an
  explicit transition table;
* :class:`~repro.engine.checkpoint.GridManifest` crash-resume vs
  :func:`manifest_prefix_model` — the documented durability contract
  evaluated over every byte-truncation of the file;
* shard-count invariance (:class:`~repro.serve.session.ShardedShareTable`,
  ``REPRO_SIM_SHARDS``) via :func:`session_shard_trace` /
  :func:`parsim_result_digest` digest sweeps, and TLB-shootdown ×
  fault-injection interleavings via :func:`check_tlb_fault_interleavings`;
* page-table replica coherence
  (:class:`~repro.mem.ptreplica.ReplicatedPageTable`) under interleaved
  fault / migration / injection streams via
  :func:`check_replica_interleavings` — same enumerate-the-real-stack
  pattern, with ``broadcast_present=False`` and ``migrate_noshoot`` as
  the seeded-bug negative controls.

The drivers live in ``tests/model/``; this package holds only the models
and enumerators so regression tests (and future subsystems) can import
them.  The pattern for adding a model is documented in DESIGN.md §13.
"""

from repro.check.interleave import (
    Counterexample,
    check_tlb_fault_interleavings,
    interleavings,
    op_sequences,
)
from repro.check.models import RingModel, ServeModel
from repro.check.replica import (
    ReplicaModel,
    check_replica_interleavings,
    replica_alphabet,
)
from repro.check.sweeps import parsim_result_digest, session_shard_trace
from repro.check.truncate import (
    manifest_prefix_model,
    truncation_sweep,
    with_duplicate_header,
    with_midfile_header,
)

__all__ = [
    "Counterexample",
    "ReplicaModel",
    "RingModel",
    "ServeModel",
    "check_replica_interleavings",
    "check_tlb_fault_interleavings",
    "interleavings",
    "manifest_prefix_model",
    "op_sequences",
    "replica_alphabet",
    "parsim_result_digest",
    "session_shard_trace",
    "truncation_sweep",
    "with_duplicate_header",
    "with_midfile_header",
]
