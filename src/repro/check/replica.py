"""Replica-coherence enumeration for the Mitosis-style page table.

The placement engine's replication directive
(:class:`~repro.mem.ptreplica.ReplicatedPageTable`) must keep every
node's replica element-wise identical to the primary across *any*
interleaving of the three mutator streams that run concurrently in a
real run: the fault path (``map_page`` / ``restore_present``), the data
mapper's page migrations (``unmap_page`` + ``map_page`` + TLB
shootdown), and SPCD's fault injection (``clear_present`` + shootdown).
Hypothesis shrinks poorly over such schedules, so — exactly like
:mod:`repro.check.interleave` — this module brute-forces them: every op
sequence over a tiny model (2 nodes × 4 pages by default) is executed
against the **real** ``mem/`` stack, and after every single op two
invariants are checked:

* **replica coherence**: :meth:`ReplicatedPageTable.replica_divergence`
  must be ``None`` — no replica may disagree with the primary on
  present / populated / frame / home-node state;
* **TLB coherence** (carried over from the interleave check): every
  cached translation must match a page the primary currently marks
  present, with the same frame.

Two negative controls prove the checker has teeth before we trust its
silence:

* ``broadcast_present=False`` drops the present-bit half of every
  coherence broadcast — the enumerator must find the divergence;
* ``migrate_noshoot`` migrates a page *without* the TLB shootdown —
  the exact data-mapper bug the shootdown in
  :meth:`~repro.core.datamap.DataMapper.apply_moves` exists to prevent.
"""

from __future__ import annotations

import numpy as np

from repro.check.interleave import Counterexample, _minimise, op_sequences
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.ptreplica import ReplicatedPageTable
from repro.mem.tlb import TlbArray

__all__ = ["ReplicaModel", "check_replica_interleavings", "replica_alphabet"]

#: one op: ("fault", node, page) | ("migrate", page, node)
#:       | ("migrate_noshoot", page, node) | ("clear", page)
Op = tuple


def replica_alphabet(
    n_nodes: int = 2, n_pages: int = 4, *, with_noshoot: bool = False
) -> "list[Op]":
    """The op alphabet of the small model (optionally with the bug op)."""
    ops: "list[Op]" = [
        ("fault", node, page) for node in range(n_nodes) for page in range(n_pages)
    ]
    ops += [
        ("migrate", page, node) for page in range(n_pages) for node in range(n_nodes)
    ]
    if with_noshoot:
        ops += [
            ("migrate_noshoot", page, node)
            for page in range(n_pages)
            for node in range(n_nodes)
        ]
    ops += [("clear", page) for page in range(n_pages)]
    return ops


class ReplicaModel:
    """One fresh n-node × n-page instance of the real mem/ stack, replicated.

    One PU per node (``node_of_pu`` is the identity), so a ``fault`` op
    names both the faulting PU and the node its frame lands on.  The
    replicas are activated mid-setup — after the region exists, before
    any page is touched — matching the placement engine's mid-run
    activation path.
    """

    def __init__(
        self,
        n_nodes: int,
        n_pages: int,
        tlb_capacity: int,
        *,
        broadcast_present: bool = True,
    ) -> None:
        table = ReplicatedPageTable(
            n_pages + 8, n_nodes, broadcast_present=broadcast_present
        )
        self.space = AddressSpace(capacity_pages=n_pages + 8, page_table=table)
        self.region = self.space.mmap("model", n_pages * 4096)
        self.vpns = [int(v) for v in self.region.vpns()]
        self.frames = FrameAllocator(n_nodes=n_nodes, frames_per_node=n_pages + 8)
        self.tlbs = TlbArray(n_pus=n_nodes, capacity=tlb_capacity)
        self.pipeline = FaultPipeline(
            self.space, self.frames, self.tlbs, node_of_pu=lambda pu: pu
        )
        table.activate()
        self.clock = 0

    def apply(self, op: Op) -> None:
        table = self.space.page_table
        self.clock += 1
        if op[0] == "fault":
            _, node, page = op
            vpn = self.vpns[page]
            if self.tlbs[node].lookup(vpn) is not None:
                # TLB hit: hardware translates without consulting the table.
                # The invariant check below catches a stale hit; nothing to do.
                return
            if table.is_present(vpn):
                # soft miss: refill from the page table, no fault
                self.tlbs[node].insert(vpn, table.frame_of(vpn))
                return
            self.pipeline.handle_fault(
                node, node, vpn * 4096, is_write=False, now_ns=self.clock
            )
        elif op[0] in ("migrate", "migrate_noshoot"):
            # the exact DataMapper.apply_moves sequence for one page
            _, page, node = op
            vpn = self.vpns[page]
            if not table.is_populated(vpn):
                return  # the real mapper only moves populated pages
            old_frame = table.frame_of(vpn)
            new_frame = self.frames.allocate(node)
            if self.frames.node_of_frame(new_frame) != node:
                self.frames.free(new_frame)
                return
            was_present = table.is_present(vpn)
            table.unmap_page(vpn)
            table.map_page(vpn, new_frame, node)
            if not was_present:
                table.clear_present(vpn)
            self.frames.free(old_frame)
            if op[0] == "migrate":
                self.tlbs.shootdown(np.array([vpn], dtype=np.int64))
        elif op[0] == "clear":
            # the injector's wake: clear the present bit, shoot the TLBs
            vpn = self.vpns[op[1]]
            if not (table.is_populated(vpn) and table.is_present(vpn)):
                return
            cleared = np.array([vpn], dtype=np.int64)
            table.clear_present(cleared)
            self.tlbs.shootdown(cleared)
        else:  # pragma: no cover - enumerator misuse
            raise ValueError(f"unknown op {op!r}")

    def violation(self) -> "str | None":
        """First violated invariant (replica coherence, then TLB), or None."""
        table = self.space.page_table
        divergence = table.replica_divergence()
        if divergence is not None:
            return divergence
        for pu, tlb in enumerate(self.tlbs.tlbs):
            for vpn, frame in tlb._entries.items():
                if not table.is_present(vpn):
                    return (
                        f"stale translation: PU {pu} TLB caches vpn {vpn} "
                        "after its present bit was cleared (missed shootdown)"
                    )
                if table.frame_of(vpn) != frame:
                    return (
                        f"wrong translation: PU {pu} TLB maps vpn {vpn} to "
                        f"frame {frame}, page table says {table.frame_of(vpn)}"
                    )
        return None


def check_replica_interleavings(
    *,
    n_nodes: int = 2,
    n_pages: int = 4,
    max_len: int = 4,
    tlb_capacity: int = 2,
    broadcast_present: bool = True,
    with_noshoot: bool = False,
    max_counterexamples: int = 1,
) -> "list[Counterexample]":
    """Exhaustively run every op sequence up to *max_len*; return violations.

    A fresh real ``mem/`` stack (with active replicas) is built per
    sequence and both invariants are asserted after every op.  An empty
    list is the pass verdict; counterexamples are greedily minimised.
    """
    alphabet = replica_alphabet(n_nodes, n_pages, with_noshoot=with_noshoot)

    def run(ops: "tuple[Op, ...]") -> "tuple[int, str] | None":
        model = ReplicaModel(
            n_nodes, n_pages, tlb_capacity, broadcast_present=broadcast_present
        )
        for i, op in enumerate(ops):
            model.apply(op)
            reason = model.violation()
            if reason is not None:
                return i, reason
        return None

    found: "list[Counterexample]" = []
    for length in range(1, max_len + 1):
        for ops in op_sequences(alphabet, length):
            outcome = run(ops)
            if outcome is None:
                continue
            minimal, failed_at, reason = _minimise(ops, run)
            cx = Counterexample(ops=minimal, failed_at=failed_at, reason=reason)
            if cx not in found:
                found.append(cx)
            if len(found) >= max_counterexamples:
                return found
    return found
