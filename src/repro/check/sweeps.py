"""Shard-count invariance sweeps: digests must not depend on parallelism.

Two subsystems promise that their shard count is a pure performance knob:

* :class:`~repro.serve.session.ShardedShareTable` partitions the sharing
  table's *slot space*, so a :class:`~repro.serve.session.TenantSession`
  must emit identical matrices, digests and mapping updates for every
  legal shard count (the module docstring's bit-identity argument);
* the core-sharded simulator (``REPRO_SIM_SHARDS``) stripes cache lines
  across worker processes and merges counters exactly.

:func:`session_shard_trace` and :func:`parsim_result_digest` reduce one
run of each to a canonical digest so the sweep tests can assert plain
string equality across every shard count — when the digests diverge, the
differing count *is* the counterexample.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

from repro.serve.client import synthetic_fault_stream
from repro.serve.protocol import EventBatch
from repro.serve.session import SessionConfig, TenantSession

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.machine.topology import Machine

__all__ = ["parsim_result_digest", "session_shard_trace"]


def session_shard_trace(
    machine: "Machine",
    *,
    shards: int,
    table_size: int,
    n_threads: int = 4,
    events_per_thread: int = 2048,
    eval_every_events: int = 2048,
    seed: int = 0,
) -> "dict[str, object]":
    """Run one :class:`TenantSession` over a fixed stream; canonical trace.

    *table_size* should be divisible by every shard count under sweep
    (e.g. ``840 = lcm(1..8)``) so ``effective_table_size`` — and with it
    the slot space — is identical across counts and any digest difference
    is the partition's fault, not the rounding's.
    """
    config = SessionConfig(
        n_threads=n_threads,
        table_size=table_size,
        shards=shards,
        eval_every_events=eval_every_events,
    )
    session = TenantSession("sweep", config, machine)
    updates: "list[tuple[int, ...]]" = []
    for tid, now_ns, vaddrs in synthetic_fault_stream(
        n_threads, events_per_thread, seed=seed
    ):
        batch = EventBatch(tid=tid, now_ns=now_ns, vaddrs=vaddrs)
        for update in session.ingest(batch):
            updates.append(tuple(int(p) for p in update.mapping))
    return {
        "digest": session.final_digest(),
        "events": session.events_seen,
        "comm_events": session.comm_events,
        "windowed_out": session.windowed_out,
        "shared_regions": session.table.shared_region_count(),
        "updates": updates,
        "mapping": [int(p) for p in session.evaluator.current],
    }


#: every scalar a sharded simulator run must reproduce bit-for-bit
_RESULT_METRICS = (
    "exec_time_s",
    "l2_mpki",
    "l3_mpki",
    "c2c_transactions",
    "invalidations",
    "migrations",
    "first_touch_faults",
    "injected_faults",
)


def parsim_result_digest(result: "object") -> str:
    """Canonical digest of a :class:`SimulationResult` for parity sweeps.

    Covers every :class:`~repro.cachesim.stats.CacheStats` field plus the
    derived metrics ``tests/test_parsim.py`` pins — the full bit-identity
    surface, reduced to one comparable string.  Floats are digested via
    ``repr`` so any bit-level drift shows.
    """
    stats = {
        f.name: getattr(result.stats, f.name)
        for f in dataclasses.fields(type(result.stats))
    }
    metrics = {name: result.metric(name) for name in _RESULT_METRICS}
    payload = json.dumps(
        {**{k: repr(v) for k, v in stats.items()},
         **{k: repr(v) for k, v in metrics.items()}},
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
