"""TLB-shootdown × fault-injection interleaving enumeration.

SPCD's correctness hinges on one hardware-ish invariant (paper Sec.
III-A): when the injector clears a page's present bit, the shootdown must
remove every PU's cached translation *in the same step* — otherwise a PU
keeps translating through its TLB, no fault fires, and the detector goes
blind to that sharer.  Hypothesis shrinks poorly over thread schedules,
so this module brute-forces them: every op sequence over a tiny model
(2 threads × 4 pages by default) is executed against the **real**
``mem/`` stack — :class:`~repro.mem.tlb.TlbArray`,
:class:`~repro.mem.fault.FaultPipeline`, the real page table — and the
coherence invariant is checked after every single op:

    every TLB entry (vpn → frame) on every PU must match a page the
    page table currently marks present, with the same frame.

The op alphabet deliberately includes ``inject_noshoot`` — the injector
*without* its shootdown half — as a negative control: the enumerator must
find a counterexample for it (the tests assert it does), which proves the
invariant check has teeth before we trust its silence on the real
``clear_present + shootdown`` sequence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray

__all__ = [
    "Counterexample",
    "check_tlb_fault_interleavings",
    "interleavings",
    "op_sequences",
]

#: one op: ("access", thread, page) | ("inject", page) | ("inject_noshoot", page)
Op = tuple


@dataclass(frozen=True)
class Counterexample:
    """A minimised op sequence that violated the checked invariant."""

    ops: "tuple[Op, ...]"
    failed_at: int  # index of the op after which the invariant broke
    reason: str
    state: "dict[str, object]" = field(default_factory=dict, compare=False)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        trace = " ; ".join(":".join(str(p) for p in op) for op in self.ops)
        return f"[{trace}] step {self.failed_at}: {self.reason}"


def interleavings(*seqs: Sequence) -> "Iterator[tuple]":
    """All order-preserving merges of *seqs* (the thread-schedule space)."""
    seqs = tuple(tuple(s) for s in seqs if len(s))
    if not seqs:
        yield ()
        return
    for i, seq in enumerate(seqs):
        rest = seqs[:i] + ((seq[1:],) if len(seq) > 1 else ()) + seqs[i + 1 :]
        for tail in interleavings(*rest):
            yield (seq[0],) + tail


def op_sequences(alphabet: "Iterable[Op]", length: int) -> "Iterator[tuple[Op, ...]]":
    """Every op sequence of exactly *length* drawn from *alphabet*."""
    return itertools.product(tuple(alphabet), repeat=length)


def tlb_fault_alphabet(
    n_threads: int = 2, n_pages: int = 4, *, with_noshoot: bool = False
) -> "list[Op]":
    """The op alphabet of the small model (optionally with the bug op)."""
    ops: "list[Op]" = [
        ("access", tid, page) for tid in range(n_threads) for page in range(n_pages)
    ]
    ops += [("inject", page) for page in range(n_pages)]
    if with_noshoot:
        ops += [("inject_noshoot", page) for page in range(n_pages)]
    return ops


class _SmallModel:
    """One fresh 2-thread × n-page instance of the real mem/ stack."""

    def __init__(self, n_threads: int, n_pages: int, tlb_capacity: int) -> None:
        self.space = AddressSpace(capacity_pages=n_pages + 8)
        self.region = self.space.mmap("model", n_pages * 4096)
        self.vpns = [int(v) for v in self.region.vpns()]
        self.frames = FrameAllocator(n_nodes=1, frames_per_node=n_pages + 8)
        self.tlbs = TlbArray(n_pus=n_threads, capacity=tlb_capacity)
        self.pipeline = FaultPipeline(
            self.space, self.frames, self.tlbs, node_of_pu=lambda pu: 0
        )
        self.clock = 0

    def apply(self, op: Op) -> None:
        table = self.space.page_table
        self.clock += 1
        if op[0] == "access":
            _, tid, page = op
            vpn = self.vpns[page]
            frame = self.tlbs[tid].lookup(vpn)
            if frame is not None:
                # TLB hit: hardware translates without consulting the table.
                # The invariant check below catches a stale hit; nothing to do.
                return
            if table.is_present(vpn):
                # soft miss: refill from the page table, no fault
                self.tlbs[tid].insert(vpn, table.frame_of(vpn))
                return
            self.pipeline.handle_fault(
                tid, tid, vpn * 4096, is_write=False, now_ns=self.clock
            )
        elif op[0] in ("inject", "inject_noshoot"):
            vpn = self.vpns[op[1]]
            if not (table.is_populated(vpn) and table.is_present(vpn)):
                return  # the real injector only picks populated present pages
            cleared = np.array([vpn], dtype=np.int64)
            table.clear_present(cleared)
            if op[0] == "inject":
                self.tlbs.shootdown(cleared)
        else:  # pragma: no cover - enumerator misuse
            raise ValueError(f"unknown op {op!r}")

    def violation(self) -> "str | None":
        """The invariant: no TLB may cache a non-present or remapped page."""
        table = self.space.page_table
        for pu, tlb in enumerate(self.tlbs.tlbs):
            for vpn, frame in tlb._entries.items():
                if not table.is_present(vpn):
                    return (
                        f"stale translation: PU {pu} TLB caches vpn {vpn} "
                        "after its present bit was cleared (missed shootdown)"
                    )
                if table.frame_of(vpn) != frame:
                    return (
                        f"wrong translation: PU {pu} TLB maps vpn {vpn} to "
                        f"frame {frame}, page table says {table.frame_of(vpn)}"
                    )
        return None


def _minimise(
    ops: "tuple[Op, ...]", run: "callable"
) -> "tuple[tuple[Op, ...], int, str]":
    """Greedy delta-debugging: drop ops while the sequence still fails."""
    current = ops
    shrunk = True
    while shrunk:
        shrunk = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if candidate and run(candidate) is not None:
                current = candidate
                shrunk = True
                break
    failed_at, reason = run(current)
    return current, failed_at, reason


def check_tlb_fault_interleavings(
    *,
    n_threads: int = 2,
    n_pages: int = 4,
    max_len: int = 4,
    tlb_capacity: int = 2,
    with_noshoot: bool = False,
    max_counterexamples: int = 1,
) -> "list[Counterexample]":
    """Exhaustively run every op sequence up to *max_len*; return violations.

    A fresh real ``mem/`` stack is built per sequence and the TLB/page-table
    coherence invariant is asserted after every op.  An empty list is the
    pass verdict.  Counterexamples are greedily minimised before being
    returned; enumeration stops after *max_counterexamples* (the alphabet
    makes failures highly redundant — one witness per bug suffices).
    """
    alphabet = tlb_fault_alphabet(n_threads, n_pages, with_noshoot=with_noshoot)

    def run(ops: "tuple[Op, ...]") -> "tuple[int, str] | None":
        model = _SmallModel(n_threads, n_pages, tlb_capacity)
        for i, op in enumerate(ops):
            model.apply(op)
            reason = model.violation()
            if reason is not None:
                return i, reason
        return None

    found: "list[Counterexample]" = []
    for length in range(1, max_len + 1):
        for ops in op_sequences(alphabet, length):
            outcome = run(ops)
            if outcome is None:
                continue
            minimal, failed_at, reason = _minimise(ops, run)
            cx = Counterexample(ops=minimal, failed_at=failed_at, reason=reason)
            if cx not in found:
                found.append(cx)
            if len(found) >= max_counterexamples:
                return found
    return found
