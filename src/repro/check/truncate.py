"""Kill-at-every-byte truncation enumeration for checkpoint manifests.

The manifest durability contract (``engine/checkpoint.py`` docstring) is
stated per *write boundary*: a record is one ``write`` + ``fsync``, so a
kill at any instant leaves a byte-prefix of the file and loading that
prefix must recover every fully-written record and nothing else.  The
enumerator here checks the contract literally — it cuts the file at
**every** byte offset and compares :class:`~repro.engine.checkpoint.GridManifest`
against :func:`manifest_prefix_model`, a restatement of the documented
load rules simple enough to eyeball:

* only the file's first line may be a header; it must name this exact
  grid, else the whole file is stale and is reset;
* any later line that is not a well-formed record object — a torn tail,
  a duplicate header from two racing writers, garbage — is skipped;
* the newest record per cell key wins.

Corruption helpers (:func:`with_duplicate_header`,
:func:`with_midfile_header`) synthesize the racing-writer shapes the
sweep then truncates at every byte as well.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Iterator

from repro.engine.checkpoint import MANIFEST_VERSION, GridManifest

__all__ = [
    "manifest_prefix_model",
    "truncation_sweep",
    "with_duplicate_header",
    "with_midfile_header",
]


def manifest_prefix_model(
    data: bytes, grid_key: str
) -> "tuple[bool, dict[str, dict]]":
    """Expected ``(header_ok, records)`` after loading a file of *data*.

    ``header_ok`` False means the loader must treat the file as stale
    (reset it and report no records).  *data* is usually a byte-prefix of
    a real manifest; a cut can land anywhere, including inside a
    multi-byte UTF-8 sequence, so decoding is per the tolerant contract —
    a mangled line is a torn line, never a failed load.
    """
    text = data.decode("utf-8", errors="replace")
    header_ok = False
    records: "dict[str, dict]" = {}
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(obj, dict):
            continue
        if i == 0:
            header_ok = (
                obj.get("type") == "manifest"
                and obj.get("version") == MANIFEST_VERSION
                and obj.get("grid_key") == grid_key
            )
            continue
        if not header_ok:
            break
        try:
            records[str(obj["key"])] = {
                "key": str(obj["key"]),
                "workload": str(obj.get("workload", "?")),
                "policy": str(obj.get("policy", "?")),
                "rep": int(obj.get("rep", 0)),
                "status": str(obj.get("status", "")),
                "attempts": int(obj.get("attempts", 1)),
                "error": str(obj.get("error", "")),
            }
        except (KeyError, TypeError, ValueError):
            continue
    return header_ok, (records if header_ok else {})


def truncation_sweep(
    path: "str | os.PathLike", grid_key: str, byte_step: int = 1
) -> "Iterator[tuple[int, dict[str, dict], dict[str, dict]]]":
    """Load every *byte_step*-spaced byte-prefix of the manifest at *path*.

    Yields ``(cut, actual, expected)`` per prefix length ``cut`` — the
    records :class:`GridManifest` recovered from the truncated copy and
    the records :func:`manifest_prefix_model` says it must recover.  The
    sweep always includes the empty and full-length prefixes.  Cutting is
    done on a scratch copy; *path* itself is never modified.
    """
    data = Path(path).read_bytes()
    cuts = sorted(set(range(0, len(data) + 1, byte_step)) | {len(data)})
    fd, scratch = tempfile.mkstemp(
        prefix="truncsweep-", suffix=".jsonl", dir=Path(path).parent
    )
    os.close(fd)
    scratch_path = Path(scratch)
    try:
        for cut in cuts:
            scratch_path.write_bytes(data[:cut])
            manifest = GridManifest(scratch_path, grid_key)
            manifest.close()
            actual = {k: asdict(r) for k, r in manifest.records.items()}
            _, expected = manifest_prefix_model(data[:cut], grid_key)
            yield cut, actual, expected
    finally:
        scratch_path.unlink(missing_ok=True)


def _header_line(grid_key: str, version: int = MANIFEST_VERSION) -> bytes:
    header = {"type": "manifest", "version": version, "grid_key": grid_key}
    return json.dumps(header, separators=(",", ":")).encode() + b"\n"


def _insert_mid(data: bytes, line: bytes) -> bytes:
    """Insert *line* at *data*'s middle line boundary (not first, not last)."""
    lines = data.split(b"\n")
    at = max(1, len(lines) // 2)
    return b"\n".join(lines[:at]) + b"\n" + line + b"\n".join(lines[at:])


def with_duplicate_header(data: bytes, grid_key: str) -> bytes:
    """Manifest bytes with a second, *matching* header mid-file.

    The shape two writers racing on an empty file produce: both observe
    ``st_size == 0`` and both write the header.  Every record around the
    duplicate must still load.
    """
    return _insert_mid(data, _header_line(grid_key))


def with_midfile_header(data: bytes, grid_key: str) -> bytes:
    """Manifest bytes with a *mismatched* header line mid-file.

    A mid-file header naming another grid (or version) is garbage, not a
    re-binding: it must neither drop the records after it nor condemn the
    file to a reset.
    """
    return _insert_mid(data, _header_line(grid_key + "-stale", MANIFEST_VERSION + 1))
