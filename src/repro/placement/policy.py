"""Typed placement policies — the public successor of the ``Policy`` enum.

A :class:`PlacementPolicy` bundles everything one placement strategy
needs: how threads start (``make_scheduler``), whether the SPCD machinery
runs at all (``uses_spcd``), and how one periodic evaluation turns the
communication matrix + per-page node-fault counters into a single
:class:`~repro.placement.decision.PlacementDecision` (``evaluate``).

The canonical registry:

========================  ======== ======= ======== =============
name                      threads  data    replica  scheduler
========================  ======== ======= ======== =============
``os``                    —        —       —        CFS-like
``random``                —        —       —        random pin
``oracle``                —        —       —        ground truth
``spcd``                  ✓        —       —        random pin
``spcd-hier``             ✓        —       —        random pin
``spcd-data``             —        ✓       —        random pin
``spcd-combined``         ✓        ✓       —        random pin
``spcd-replicated``       ✓        ✓       ✓        random pin
========================  ======== ======= ======== =============

``spcd-hier`` is ``spcd`` with the scalable hierarchical mapper
(:mod:`repro.graphs.hiermap`) forced regardless of thread count; a
policy's ``mapper_algorithm`` attribute is how any policy selects a
registered mapping engine per
:func:`repro.core.mapping.make_mapper`.

``spcd`` reproduces the pre-placement engine bit for bit
(``tests/test_placement.py`` pins it); the new names compose the
mechanisms the paper's Sec. IV sketches and Phoenix/Mitosis motivate.

The legacy :class:`repro.engine.policies.Policy` *enum members* resolve
here with a :class:`DeprecationWarning`; plain strings are the stable
spelling and never warn.
"""

from __future__ import annotations

import enum
import warnings
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.mapping import HierarchicalMapper
from repro.errors import ConfigurationError
from repro.kernelsim.scheduler import CfsLikeScheduler, PinnedScheduler, Scheduler
from repro.oracle.analyzer import matrix_from_ground_truth
from repro.placement.decision import PlacementDecision, PlacementView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.topology import Machine
    from repro.workloads.base import Workload

__all__ = [
    "CombinedPlacementPolicy",
    "DataPlacementPolicy",
    "HierThreadPlacementPolicy",
    "OraclePolicy",
    "OsPolicy",
    "PlacementPolicy",
    "RandomPolicy",
    "ReplicatedPlacementPolicy",
    "ThreadPlacementPolicy",
    "canonical_policies",
    "resolve_policy",
]


@runtime_checkable
class PlacementPolicy(Protocol):
    """The typed policy surface the simulator consumes.

    Attributes:
        name: stable identifier (seed derivation, cache keys, results).
        uses_spcd: whether the SPCD detector/injector/evaluator run.
        maps_threads: whether evaluations may propose a thread remap.
        maps_data: whether evaluations may propose page migrations.
        replicate_pt: whether the first evaluation directs per-node
            page-table replication (Mitosis).
    """

    name: str
    uses_spcd: bool
    maps_threads: bool
    maps_data: bool
    replicate_pt: bool

    def make_scheduler(
        self, machine: "Machine", workload: "Workload", rng: np.random.Generator
    ) -> Scheduler:
        """Build and start the scheduler this policy begins with."""
        ...  # pragma: no cover - protocol

    def evaluate(self, view: PlacementView) -> PlacementDecision:
        """Turn one evaluation's evidence into one placement decision."""
        ...  # pragma: no cover - protocol


def _check_fits(machine: "Machine", workload: "Workload") -> int:
    n = workload.n_threads
    if n > machine.n_pus:
        raise ConfigurationError(
            f"{n} threads exceed the machine's {machine.n_pus} hardware contexts"
        )
    return n


def _random_pinned(
    machine: "Machine", workload: "Workload", rng: np.random.Generator
) -> PinnedScheduler:
    n = _check_fits(machine, workload)
    pus = rng.permutation(machine.n_pus)[:n]
    return PinnedScheduler(machine, n, [int(p) for p in pus])


class _StaticPolicy:
    """Base of the non-SPCD policies: placement fixed at start, no decisions."""

    name = "static"
    uses_spcd = False
    maps_threads = False
    maps_data = False
    replicate_pt = False

    def evaluate(self, view: PlacementView) -> PlacementDecision:
        """Static policies never re-place anything."""
        return PlacementDecision(verdict="static")

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"{type(self).__name__}({self.name!r})"


class OsPolicy(_StaticPolicy):
    """The Linux-baseline: a CFS-like scheduler, no explicit placement."""

    name = "os"

    def make_scheduler(
        self, machine: "Machine", workload: "Workload", rng: np.random.Generator
    ) -> Scheduler:
        """CFS-like scheduler over all PUs (the figures' baseline)."""
        n = _check_fits(machine, workload)
        scheduler: Scheduler = CfsLikeScheduler(machine, n, rng)
        scheduler.start()
        return scheduler


class RandomPolicy(_StaticPolicy):
    """A static random thread→PU pinning, fresh per repetition."""

    name = "random"

    def make_scheduler(
        self, machine: "Machine", workload: "Workload", rng: np.random.Generator
    ) -> Scheduler:
        """Random pinning drawn from *rng* (one mapping per execution)."""
        scheduler = _random_pinned(machine, workload, rng)
        scheduler.start()
        return scheduler


class OraclePolicy(_StaticPolicy):
    """A static pinning computed from full communication knowledge."""

    name = "oracle"

    def make_scheduler(
        self, machine: "Machine", workload: "Workload", rng: np.random.Generator
    ) -> Scheduler:
        """Pin threads by mapping the ground-truth communication matrix."""
        n = _check_fits(machine, workload)
        matrix = matrix_from_ground_truth(workload)
        mapping = HierarchicalMapper(machine).map(matrix)
        scheduler = PinnedScheduler(machine, n, [int(p) for p in mapping])
        scheduler.start()
        return scheduler


class ThreadPlacementPolicy:
    """SPCD thread mapping only — the paper's mechanism, bit for bit.

    Starts from an arbitrary (OS-like) placement and migrates threads when
    the communication filter reports a changed pattern.  This is the
    canonical ``"spcd"`` policy; the differential parity suite pins its
    digests against the pre-placement engine.
    """

    name = "spcd"
    uses_spcd = True
    maps_threads = True
    maps_data = False
    replicate_pt = False
    #: mapping engine this policy requests from the registry
    #: (:func:`repro.core.mapping.make_mapper`); ``None`` lets the manager
    #: resolve (explicit config, then the thread-count auto-switch)
    mapper_algorithm: "str | None" = None

    def make_scheduler(
        self, machine: "Machine", workload: "Workload", rng: np.random.Generator
    ) -> Scheduler:
        """Random pinned start; SPCD migrates from there."""
        scheduler = _random_pinned(machine, workload, rng)
        scheduler.start()
        return scheduler

    def evaluate(self, view: PlacementView) -> PlacementDecision:
        """Co-decide remap + migration + replication from one view."""
        migrations, deferred = (
            view.propose_page_migrations() if self.maps_data else ((), 0)
        )
        replicate = self.replicate_pt and not view.pt_replicated
        if self.maps_threads:
            mapping, verdict, cost_now, cost_new = view.propose_thread_mapping()
        else:
            mapping, verdict, cost_now, cost_new = None, "data-idle", 0.0, 0.0
        thread_mapping = (
            None if mapping is None else tuple(int(p) for p in mapping)
        )
        return PlacementDecision(
            verdict=verdict,
            thread_mapping=thread_mapping,
            page_migrations=tuple(migrations),
            replicate_pt=replicate,
            cost_now=cost_now,
            cost_new=cost_new,
            shared_deferred=deferred,
        )

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"{type(self).__name__}({self.name!r})"


class HierThreadPlacementPolicy(ThreadPlacementPolicy):
    """SPCD thread mapping decided by the scalable hierarchical mapper.

    Identical pipeline and gates to ``spcd``; only the mapping engine
    differs (:class:`~repro.graphs.hiermap.ScalableHierarchicalMapper`,
    recursive bisection + local search instead of Edmonds matching).  Use
    it to force the scalable engine below the
    ``REPRO_MAP_HIERARCHICAL_MIN_N`` auto-switch, e.g. for quality
    comparisons at paper scale.
    """

    name = "spcd-hier"
    mapper_algorithm = "hierarchical"


class DataPlacementPolicy(ThreadPlacementPolicy):
    """SPCD data mapping only: migrate pages, never remap threads.

    Pages whose recent fault mass is dominated by a remote node move
    there; pages shared between nodes are vetoed (there is no thread
    mapper to hand them to), reproducing the legacy timer-driven
    :class:`~repro.core.datamap.SpcdDataMapper` semantics on the
    evaluation cadence.
    """

    name = "spcd-data"
    maps_threads = False
    maps_data = True


class CombinedPlacementPolicy(ThreadPlacementPolicy):
    """Phoenix-style co-decision: thread remap + page migration together.

    One evaluation sees the communication matrix *and* the per-page
    node-fault counters: node-dominated pages migrate, while pages whose
    fault mass is split between nodes — true communication pages — are
    deferred to the thread mapper in the very same decision instead of
    being blindly vetoed.
    """

    name = "spcd-combined"
    maps_data = True


class ReplicatedPlacementPolicy(CombinedPlacementPolicy):
    """Combined placement plus Mitosis-style page-table replication.

    The first evaluation's decision additionally directs per-node
    page-table replicas; subsequent walks resolve locally (see
    :class:`~repro.mem.ptreplica.ReplicatedPageTable`) at the price of
    keeping the replicas coherent on every mutation.
    """

    name = "spcd-replicated"
    replicate_pt = True


def canonical_policies() -> "dict[str, PlacementPolicy]":
    """Fresh instances of every registered policy, by name."""
    return {
        p.name: p
        for p in (
            OsPolicy(),
            RandomPolicy(),
            OraclePolicy(),
            ThreadPlacementPolicy(),
            HierThreadPlacementPolicy(),
            DataPlacementPolicy(),
            CombinedPlacementPolicy(),
            ReplicatedPlacementPolicy(),
        )
    }


def resolve_policy(policy: "PlacementPolicy | str | enum.Enum") -> PlacementPolicy:
    """Resolve *policy* to a :class:`PlacementPolicy` instance.

    Accepts a policy object (returned as-is), a case-insensitive name
    string, or — deprecated — a :class:`repro.engine.policies.Policy`
    enum member, which warns and maps to its canonical instance.
    """
    # Enum check must come first: the legacy Policy is a str-enum, so its
    # members would otherwise silently take the plain-string path.
    if isinstance(policy, enum.Enum):
        warnings.warn(
            "passing a Policy enum member is deprecated; pass the policy "
            f"name {policy.value!r} or a PlacementPolicy instance",
            DeprecationWarning,
            stacklevel=2,
        )
        policy = str(policy.value)
    if isinstance(policy, str):
        registry = canonical_policies()
        name = policy.lower()
        if name not in registry:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected one of {sorted(registry)}"
            )
        return registry[name]
    if isinstance(policy, PlacementPolicy):
        return policy
    raise ConfigurationError(
        f"cannot resolve {policy!r} to a placement policy"
    )
