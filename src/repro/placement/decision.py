"""The typed placement decision — one evaluation, one atomic verdict.

Phoenix's core observation (PAPERS.md) is that thread placement and
page/page-table placement must be decided *together* on NUMA: a thread
remap changes which node every page should live on, and a page migration
changes which placement minimises remote traffic.  The repo historically
had three independent mechanisms (thread remap via
:class:`~repro.kernelsim.migration.MigrationEngine`, page migration via
:class:`~repro.core.datamap.SpcdDataMapper`, and — since this subsystem —
Mitosis-style page-table replication); :class:`PlacementDecision` is the
single value that carries all three directives out of one policy
evaluation, so the :class:`~repro.core.manager.SpcdManager` can consume
them atomically instead of letting the mechanisms fight on separate
timers.

Everything here is frozen: a decision is a statement of intent, not a
live handle.  Mutation happens only in
:meth:`~repro.core.manager.SpcdManager.apply_decision`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.commmatrix import CommunicationMatrix
    from repro.machine.topology import Machine
    from repro.mem.pagetable import PageTable

__all__ = ["PageMigration", "PlacementDecision", "PlacementView"]


@dataclass(frozen=True)
class PageMigration:
    """One data page to move: ``vpn`` should live on ``target_node``."""

    vpn: int
    target_node: int


@dataclass(frozen=True)
class PlacementDecision:
    """What one placement evaluation decided, in full.

    Attributes:
        verdict: why the evaluation produced (or withheld) each directive —
            the vocabulary of :class:`~repro.obs.events.SpcdEvaluation`.
        thread_mapping: proposed thread→PU pinning, or ``None`` when the
            evidence gates or the improvement veto withheld a remap.
        page_migrations: data pages to migrate, decided from the per-page
            node-fault counters *in the same evaluation* as the remap.
        replicate_pt: directive to activate per-node page-table replicas
            (Mitosis); idempotent — ``False`` means "leave as-is", never
            "tear down".
        cost_now / cost_new: communication cost of the current and the
            proposed thread mapping under the detected matrix (0.0 when no
            mapping was proposed).
        shared_deferred: pages whose fault mass was split between nodes
            and were therefore *handed to the thread mapper* instead of
            being migrated — the combined policy's answer to the blind
            shared-page veto of data-only mapping.
    """

    verdict: str
    thread_mapping: "tuple[int, ...] | None" = None
    page_migrations: "tuple[PageMigration, ...]" = ()
    replicate_pt: bool = False
    cost_now: float = 0.0
    cost_new: float = 0.0
    shared_deferred: int = 0

    @property
    def is_noop(self) -> bool:
        """True when the decision carries no directive at all."""
        return (
            self.thread_mapping is None
            and not self.page_migrations
            and not self.replicate_pt
        )


@dataclass
class PlacementView:
    """Everything one policy evaluation may observe — and its two helpers.

    The view is constructed by :class:`~repro.core.manager.SpcdManager`
    per evaluation; it exposes the communication matrix *and* the
    per-page node-fault counters side by side, which is exactly what the
    combined policy needs to co-decide.  The two ``propose_*`` helpers
    are manager-bound closures so the overhead accounting (mapper calls,
    virtual mapping cost, improvement veto, trace events) stays
    bit-identical to the pre-placement engine regardless of which policy
    invokes them.
    """

    now_ns: int
    machine: "Machine"
    matrix: "CommunicationMatrix"
    fresh_events: float
    table: "PageTable"
    #: the node-fault tracker (a :class:`~repro.core.datamap.SpcdDataMapper`)
    #: or ``None`` for policies that do not map data
    node_faults: "object | None"
    #: True once per-node page-table replicas are active
    pt_replicated: bool
    _thread_proposal: "Callable[[], tuple[np.ndarray | None, str, float, float]]"
    _page_proposal: "Callable[[], tuple[tuple[PageMigration, ...], int]]"
    current_placement: "tuple[int, ...]" = field(default_factory=tuple)

    def propose_thread_mapping(self) -> "tuple[np.ndarray | None, str, float, float]":
        """Run the evidence gates + mapper; ``(mapping|None, verdict, cost_now, cost_new)``.

        Side effects (filter snapshot update, fresh-evidence bookkeeping,
        overhead accounting, the :class:`~repro.obs.events.MappingDecision`
        trace event) are identical to the pre-placement SPCD evaluation.
        """
        return self._thread_proposal()

    def propose_page_migrations(self) -> "tuple[tuple[PageMigration, ...], int]":
        """Scan the node-fault counters; ``(migrations, shared_deferred)``.

        ``shared_deferred`` counts pages left to the thread mapper because
        no node dominated their fault mass (combined policies); data-only
        policies record those as vetoed instead, exactly like the legacy
        timer-driven scan.
        """
        return self._page_proposal()
