"""Unified NUMA placement: thread + data + page-table decisions, co-decided.

The paper maps threads only; Phoenix shows thread and page-table placement
must be orchestrated together on NUMA, and Mitosis shows per-node
page-table replication pays off once walks routinely cross sockets
(PAPERS.md).  This package is the orchestration layer: a
:class:`PlacementPolicy` sees the communication matrix and the per-page
node-fault counters in one ``evaluate()`` and emits a single frozen
:class:`PlacementDecision` — thread remap + data-page migrations +
replication directive — which :class:`~repro.core.manager.SpcdManager`
consumes atomically.

Policies are named; :func:`resolve_policy` is the front door::

    from repro import Simulator
    result = Simulator(make_npb("SP"), "spcd-combined", seed=1).run()

The mechanisms live elsewhere (thread remap in
:mod:`repro.kernelsim.migration`, page migration in
:mod:`repro.core.datamap`, replication in :mod:`repro.mem.ptreplica`);
this package only decides.  DESIGN.md §14 documents the architecture,
the decision flow and the replication coherence rules.
"""

from repro.placement.decision import PageMigration, PlacementDecision, PlacementView
from repro.placement.policy import (
    CombinedPlacementPolicy,
    DataPlacementPolicy,
    OraclePolicy,
    OsPolicy,
    PlacementPolicy,
    RandomPolicy,
    ReplicatedPlacementPolicy,
    ThreadPlacementPolicy,
    canonical_policies,
    resolve_policy,
)

__all__ = [
    "CombinedPlacementPolicy",
    "DataPlacementPolicy",
    "OraclePolicy",
    "OsPolicy",
    "PageMigration",
    "PlacementDecision",
    "PlacementPolicy",
    "PlacementView",
    "RandomPolicy",
    "ReplicatedPlacementPolicy",
    "ThreadPlacementPolicy",
    "canonical_policies",
    "resolve_policy",
]
