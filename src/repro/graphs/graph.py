"""Graph / sparse-matrix description layer.

A :class:`CsrGraph` is an undirected weighted graph in CSR form — the
shared-memory analogue of a sparse matrix's nonzero structure.  Two kinds of
sources feed it:

* **synthetic generators** — :func:`rmat_graph` (Graph500-style recursive
  quadrant sampling) and :func:`powerlaw_graph` (Chung-Lu expected-degree
  model), both of which produce the skewed, power-law degree distributions
  irregular scientific codes exhibit;
* **Matrix-Market ingestion** — :func:`load_matrix_market` reads the
  ``coordinate`` format every sparse-matrix collection distributes, so real
  matrices drive the SpMV/PageRank workloads without any extra dependency.

:func:`partition_rows` + :func:`partition_comm_matrix` turn a graph and a
thread count into the ground-truth thread-level communication matrix: rows
are block-partitioned over threads and every cross-partition nonzero is
halo-exchange communication between its two owners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, WorkloadError

__all__ = [
    "CsrGraph",
    "load_matrix_market",
    "partition_comm_matrix",
    "partition_rows",
    "powerlaw_graph",
    "rmat_graph",
    "save_matrix_market",
]


@dataclass(frozen=True, eq=False)
class CsrGraph:
    """An undirected weighted graph in compressed-sparse-row form.

    The adjacency is stored symmetrically (every edge appears in both
    endpoint rows), with no self-loops and no duplicate entries; column
    indices within each row are sorted ascending.  This mirrors the nonzero
    structure of a symmetric sparse matrix.
    """

    n: int
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("graphs need at least one vertex")
        if self.indptr.shape != (self.n + 1,):
            raise ConfigurationError("indptr must have n+1 entries")
        if self.indices.shape != self.weights.shape:
            raise ConfigurationError("indices and weights must have equal shape")

    # -- construction -------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "CsrGraph":
        """Build a symmetric CSR graph from an edge list.

        Self-loops are dropped, duplicate edges coalesce by summing their
        weights, and each undirected edge is stored in both rows.  *weights*
        defaults to 1.0 per listed edge, so duplicates become edge
        multiplicities — exactly how R-MAT's repeated samples turn into
        power-law edge weights.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if weights is None:
            weights = np.ones(rows.shape, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if rows.size and (rows.min() < 0 or cols.min() < 0
                          or rows.max() >= n or cols.max() >= n):
            raise ConfigurationError("edge endpoint out of range")
        keep = rows != cols
        rows, cols, weights = rows[keep], cols[keep], weights[keep]
        # Symmetrise: store each undirected edge in both directions, then
        # coalesce duplicates on the flattened (row, col) key.
        r = np.concatenate([rows, cols])
        c = np.concatenate([cols, rows])
        w = np.concatenate([weights, weights])
        key = r * np.int64(n) + c
        order = np.argsort(key, kind="stable")
        key, w = key[order], w[order]
        uniq, start = np.unique(key, return_index=True)
        sums = np.add.reduceat(w, start) if key.size else w
        out_rows = (uniq // n).astype(np.int64)
        out_cols = (uniq % n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, out_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n=n, indptr=indptr, indices=out_cols, weights=sums)

    # -- views --------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored entries (each undirected edge counts twice)."""
        return int(self.indices.size)

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return self.nnz // 2

    def row(self, i: int) -> "tuple[np.ndarray, np.ndarray]":
        """(neighbour ids, edge weights) of vertex *i*."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def degrees(self) -> np.ndarray:
        """Per-vertex neighbour count."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Dense symmetric adjacency matrix (small graphs / tests only)."""
        m = np.zeros((self.n, self.n))
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        m[rows, self.indices] = self.weights
        return m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrGraph(n={self.n}, edges={self.n_edges})"


# ---------------------------------------------------------------------------
# synthetic generators
# ---------------------------------------------------------------------------
def rmat_graph(
    n: int,
    avg_degree: float = 8.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CsrGraph:
    """A Graph500-style R-MAT graph with a power-law degree distribution.

    Each edge is drawn by recursively descending the adjacency matrix's
    quadrants with probabilities ``(a, b, c, d)``; the default parameters
    are the Graph500 reference values, which concentrate edges on a few hub
    vertices.  Duplicate draws coalesce into edge weights, so hub links are
    also the *heaviest* links — the skew both generators and real irregular
    matrices share.
    """
    if n < 2:
        raise ConfigurationError("rmat_graph needs at least two vertices")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ConfigurationError("R-MAT probabilities must be nonnegative")
    scale = max(1, int(np.ceil(np.log2(n))))
    m = max(1, int(round(n * avg_degree / 2.0)))
    rng = np.random.default_rng(seed)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        u = rng.random(m)
        right = (u >= a + c) | ((u >= a) & (u < a + b))  # quadrants b, d
        down = u >= a + b  # quadrants c, d
        rows = rows * 2 + down.astype(np.int64)
        cols = cols * 2 + right.astype(np.int64)
    keep = (rows < n) & (cols < n) & (rows != cols)
    return CsrGraph.from_edges(n, rows[keep], cols[keep])


def powerlaw_graph(
    n: int,
    avg_degree: float = 8.0,
    *,
    exponent: float = 2.1,
    seed: int = 0,
) -> CsrGraph:
    """A Chung-Lu graph whose expected degrees follow a power law.

    Vertex *i*'s expected degree is proportional to ``(i+1)**(-1/(exponent-1))``,
    normalised to *avg_degree*; both endpoints of every edge are drawn
    independently from that distribution.
    """
    if n < 2:
        raise ConfigurationError("powerlaw_graph needs at least two vertices")
    if exponent <= 1.0:
        raise ConfigurationError("power-law exponent must exceed 1")
    rng = np.random.default_rng(seed)
    w = (np.arange(1, n + 1, dtype=np.float64)) ** (-1.0 / (exponent - 1.0))
    p = w / w.sum()
    m = max(1, int(round(n * avg_degree / 2.0)))
    rows = rng.choice(n, size=m, p=p)
    cols = rng.choice(n, size=m, p=p)
    keep = rows != cols
    return CsrGraph.from_edges(n, rows[keep], cols[keep])


# ---------------------------------------------------------------------------
# Matrix-Market ingestion
# ---------------------------------------------------------------------------
def load_matrix_market(path: "str | Path") -> CsrGraph:
    """Read a square sparse matrix in Matrix-Market ``coordinate`` format.

    Supports ``real``/``integer``/``pattern`` fields and both ``general``
    and ``symmetric`` symmetry (the two layouts collections actually ship).
    Off-diagonal structure becomes the graph; values become edge weights
    (absolute value — communication volume has no sign), pattern entries
    weigh 1.0.
    """
    path = Path(path)
    with path.open() as f:
        header = f.readline().strip().lower().split()
        if len(header) < 4 or header[0] != "%%matrixmarket" or header[1] != "matrix":
            raise WorkloadError(f"{path}: not a Matrix-Market file")
        layout, fmt = header[2], header[3]
        symmetry = header[4] if len(header) > 4 else "general"
        if layout != "coordinate":
            raise WorkloadError(f"{path}: only 'coordinate' matrices are supported")
        if fmt not in ("real", "integer", "pattern"):
            raise WorkloadError(f"{path}: unsupported field type {fmt!r}")
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        parts = line.split()
        if len(parts) != 3:
            raise WorkloadError(f"{path}: malformed size line {line!r}")
        n_rows, n_cols, nnz = (int(p) for p in parts)
        if n_rows != n_cols:
            raise WorkloadError(f"{path}: matrix must be square, got {n_rows}x{n_cols}")
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        k = 0
        for line in f:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if k >= nnz:
                raise WorkloadError(f"{path}: more entries than the header's {nnz}")
            fields = line.split()
            rows[k] = int(fields[0]) - 1
            cols[k] = int(fields[1]) - 1
            if fmt != "pattern":
                vals[k] = abs(float(fields[2]))
            k += 1
        if k != nnz:
            raise WorkloadError(f"{path}: header promised {nnz} entries, found {k}")
    return CsrGraph.from_edges(n_rows, rows, cols, vals)


def save_matrix_market(graph: CsrGraph, path: "str | Path") -> None:
    """Write *graph* as a symmetric Matrix-Market ``coordinate real`` file.

    Only the lower triangle is written (the symmetric layout), so a
    :func:`load_matrix_market` round trip reproduces the graph exactly.
    """
    path = Path(path)
    rows = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr))
    lower = rows > graph.indices
    r, c, w = rows[lower], graph.indices[lower], graph.weights[lower]
    with path.open("w") as f:
        f.write("%%MatrixMarket matrix coordinate real symmetric\n")
        f.write(f"{graph.n} {graph.n} {r.size}\n")
        for i, j, v in zip(r.tolist(), c.tolist(), w.tolist()):
            f.write(f"{i + 1} {j + 1} {v:.17g}\n")


# ---------------------------------------------------------------------------
# row partitioning -> thread communication
# ---------------------------------------------------------------------------
def partition_rows(n_vertices: int, n_parts: int) -> np.ndarray:
    """Contiguous balanced block partition: vertex -> owning part id.

    Block sizes differ by at most one (the first ``n % parts`` blocks take
    the extra vertex), matching how SpMV row-partitions a matrix across
    threads.
    """
    if n_parts < 1 or n_parts > n_vertices:
        raise ConfigurationError("need 1 <= n_parts <= n_vertices")
    base, extra = divmod(n_vertices, n_parts)
    sizes = np.full(n_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(n_parts, dtype=np.int64), sizes)


def partition_comm_matrix(graph: CsrGraph, parts: np.ndarray, n_parts: int) -> np.ndarray:
    """Thread-level communication from a partitioned graph.

    Cell ``(p, q)`` accumulates the weight of every edge with one endpoint
    in part *p* and the other in part *q* — the halo-exchange volume between
    the two owners.  Symmetric with zero diagonal; with a power-law graph
    the result is exactly the skewed, asymmetric-across-pairs pattern the
    regular NPB generators cannot produce.
    """
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.n,):
        raise ConfigurationError("parts must assign every vertex")
    rows = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr))
    pr, pc = parts[rows], parts[graph.indices]
    cross = pr != pc
    out = np.zeros((n_parts, n_parts))
    np.add.at(out, (pr[cross], pc[cross]), graph.weights[cross])
    # CSR stores both directions, so (p, q) and (q, p) already accumulate
    # the same total; enforce exact symmetry against float summation order.
    out = (out + out.T) / 2.0
    np.fill_diagonal(out, 0.0)
    return out
