"""Sparse communication-matrix backend.

:class:`SparseCommMatrix` stores only the nonzero cells (a symmetric
dict-of-rows layout, the mutable precursor of CSR) behind the exact
:class:`~repro.core.commmatrix.CommunicationMatrix` interface.  Power-law
communication at 128-1024 threads fills well under 10% of the dense matrix,
so the detection hot path (``add_events``) and the scalable mapper touch
``O(nnz)`` cells instead of ``O(n^2)``.

**Bit-parity discipline** (the same contract the REPRO_SLOW_* engines
follow): every mutation applies the *same float operations in the same
order* as the dense backend — ``add``/``add_events`` accumulate cell by
cell exactly as ``np.add.at`` does, ``merge`` adds per cell, ``decay``
multiplies per cell — so fold/merge/digest/CSV results are bit-identical
to the dense backend at any density (pinned by ``tests/test_sparse_comm.py``
and the stateful model in ``tests/model/test_sparse_model.py``).
Read-side analytics (``partners``, ``correlation``, ``total`` ...) are
inherited: they run on the lazily materialised dense view, which holds
exactly the dense backend's payload.

``REPRO_SPARSE_COMM=1`` (or ``SpcdConfig.sparse_matrix``) selects this
backend for the SPCD detector; everything downstream —
``ShardedShareTable`` folding, ``repro.serve``, the oracle — keeps working
untouched because only the storage behind the interface changes.
"""

from __future__ import annotations

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import ConfigurationError

__all__ = ["SparseCommMatrix", "make_comm_matrix"]


class SparseCommMatrix(CommunicationMatrix):
    """Symmetric zero-diagonal communication counts, stored sparsely."""

    def __init__(self, n_threads: int, data: np.ndarray | None = None) -> None:
        if n_threads <= 0:
            raise ConfigurationError("need at least one thread")
        self.n = n_threads
        #: per-row ``{col: value}`` dicts; both directions of every cell are
        #: stored, mirroring the dense backend's full symmetric array
        self._rows: list[dict[int, float]] = [dict() for _ in range(n_threads)]
        self._dense: np.ndarray | None = None
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (n_threads, n_threads):
                raise ConfigurationError(f"matrix shape {data.shape} != ({n_threads},)*2")
            if not np.allclose(data, data.T):
                raise ConfigurationError("communication matrix must be symmetric")
            rows, cols = np.nonzero(data)
            vals = data[rows, cols]
            for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
                if i != j:
                    self._rows[i][j] = v

    # -- dense view ---------------------------------------------------------
    def _materialise(self) -> np.ndarray:
        if self._dense is None:
            m = np.zeros((self.n, self.n), dtype=np.float64)
            for i, row in enumerate(self._rows):
                if row:
                    idx = np.fromiter(row.keys(), dtype=np.int64, count=len(row))
                    vals = np.fromiter(row.values(), dtype=np.float64, count=len(row))
                    m[i, idx] = vals
            self._dense = m
        return self._dense

    @property
    def _m(self) -> np.ndarray:  # type: ignore[override]
        """Dense materialisation — feeds every inherited read-side method."""
        return self._materialise()

    # -- mutation -----------------------------------------------------------
    def add(self, i: int, j: int, amount: float = 1.0) -> None:
        """Record *amount* of communication between threads *i* and *j*."""
        if i == j:
            return
        i, j = int(i), int(j)
        rows = self._rows
        rows[i][j] = rows[i].get(j, 0.0) + amount
        rows[j][i] = rows[j].get(i, 0.0) + amount
        self._dense = None

    def add_events(self, i: int, partners: np.ndarray) -> None:
        """Record one unit event between *i* and every thread in *partners*.

        Replays exactly the dense backend's accumulation order: the small
        branch interleaves row/column additions per partner, the large
        branch applies all row-*i* additions first, then all column
        additions — matching its two ``np.add.at`` dispatches, so repeated
        partners round bit-identically even after :meth:`decay` left
        fractions.
        """
        i = int(i)
        rows = self._rows
        row_i = rows[i]
        if len(partners) <= 8:
            for j in partners.tolist() if hasattr(partners, "tolist") else partners:
                j = int(j)
                if j != i:
                    row_i[j] = row_i.get(j, 0.0) + 1.0
                    rj = rows[j]
                    rj[i] = rj.get(i, 0.0) + 1.0
            self._dense = None
            return
        partners = np.asarray(partners, dtype=np.int64)
        partners = partners[partners != i]
        if partners.size == 0:
            return
        plist = partners.tolist()
        for j in plist:
            row_i[j] = row_i.get(j, 0.0) + 1.0
        for j in plist:
            rj = rows[j]
            rj[i] = rj.get(i, 0.0) + 1.0
        self._dense = None

    def merge(self, other: CommunicationMatrix, scale: float = 1.0) -> "SparseCommMatrix":
        """Accumulate *other* into this matrix in place; returns ``self``.

        Cell-for-cell the dense backend's ``self += scale * other``; a dense
        *other* contributes its nonzero cells (adding an exact zero is the
        identity the dense path performs explicitly).
        """
        if other.n != self.n:
            raise ConfigurationError("matrices must have the same size")
        if isinstance(other, SparseCommMatrix):
            items = enumerate(other._rows)
            for i, row in items:
                mine = self._rows[i]
                for j, v in row.items():
                    mine[j] = mine.get(j, 0.0) + (v if scale == 1.0 else scale * v)
        else:
            om = other.matrix
            rows, cols = np.nonzero(om)
            vals = om[rows, cols]
            for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
                mine = self._rows[i]
                mine[j] = mine.get(j, 0.0) + (v if scale == 1.0 else scale * v)
        self._dense = None
        return self

    def decay(self, factor: float) -> None:
        """Multiply everything by *factor* (aging for dynamic detection)."""
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError("decay factor must be in [0, 1]")
        for row in self._rows:
            for j in row:
                row[j] = row[j] * factor
        self._dense = None

    def reset(self) -> None:
        """Zero the matrix."""
        for row in self._rows:
            row.clear()
        self._dense = None

    def copy(self) -> "SparseCommMatrix":
        """Deep copy (stays sparse)."""
        out = SparseCommMatrix(self.n)
        out._rows = [dict(row) for row in self._rows]
        return out

    # -- sparse-only views --------------------------------------------------
    def nnz(self) -> int:
        """Stored nonzero off-diagonal cells (both triangles counted)."""
        return sum(1 for row in self._rows for v in row.values() if v != 0.0)

    def row_items(self, i: int) -> "list[tuple[int, float]]":
        """Nonzero ``(partner, amount)`` cells of row *i*, unordered.

        The scalable mapper consumes the matrix through this accessor, so
        its per-decision work is ``O(nnz)``, never ``O(n^2)``.
        """
        return [(j, v) for j, v in self._rows[i].items() if v != 0.0]


def make_comm_matrix(n_threads: int, *, sparse: bool = False) -> CommunicationMatrix:
    """Communication-matrix factory honouring the ``REPRO_SPARSE_COMM`` gate."""
    return SparseCommMatrix(n_threads) if sparse else CommunicationMatrix(n_threads)
