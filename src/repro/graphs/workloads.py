"""Graph-driven workloads: SpMV halo exchange and partition-centric PageRank.

The NPB suite exercises SPCD with regular, blocky patterns; these workloads
feed the *irregular* regime through the identical fault/detection pipeline.
Both partition a sparse graph's vertices into contiguous row blocks, one per
thread, and derive their page sharing from the matrix's off-diagonal
structure, so a power-law graph yields a power-law, asymmetric
communication matrix:

* :class:`SpmvHaloWorkload` — node-aware row-partitioned SpMV (Bienz,
  Gropp & Olson, PAPERS.md): each thread owns a block of rows and, per
  iteration, reads the *halo* of x-vector entries owned by the partitions
  its off-diagonal nonzeros point into.  Each partition pair with
  cross-edges shares a halo region sized by its coupling strength.
* :class:`PartitionPageRankWorkload` — partition-centric gather/scatter
  PageRank (Lakhotia, Kannan & Prasanna, PAPERS.md): threads alternate
  between a *scatter* phase (streaming update bins toward neighbouring
  partitions, write-heavy) and a *gather* phase (reading the bins destined
  to them, read-heavy).  The sharing structure is the same cross-partition
  adjacency, but the read/write mix swings with the phase.

Ground truth is :func:`repro.graphs.graph.partition_comm_matrix` — what the
detector should recover — so the existing correlation/oracle machinery
applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import WorkloadError
from repro.graphs.graph import (
    CsrGraph,
    partition_comm_matrix,
    partition_rows,
    powerlaw_graph,
    rmat_graph,
)
from repro.mem.addresspace import AddressSpace, Region
from repro.units import MSEC, PAGE_SIZE
from repro.workloads.base import AccessBatch, SharedPairSpec, Workload

__all__ = [
    "PartitionPageRankWorkload",
    "SpmvHaloWorkload",
    "make_pagerank",
    "make_spmv",
]


class _GraphPartitionedWorkload(Workload):
    """Common machinery: row partition, pair regions, channel tables."""

    #: pages per unit of normalised coupling between two partitions
    pair_pages = 8
    #: private working set (the thread's own row block / rank vector slice)
    private_pages = 64
    shared_fraction = 0.30
    locality = 2.0

    def __init__(self, name: str, graph: CsrGraph, n_threads: int) -> None:
        super().__init__(name, n_threads)
        if graph.n < n_threads:
            raise WorkloadError(
                f"{graph.n} vertices cannot be partitioned over {n_threads} threads"
            )
        self.graph = graph
        self.parts = partition_rows(graph.n, n_threads)
        self._ground = partition_comm_matrix(graph, self.parts, n_threads)
        self._private: list[Region] = []
        self._pair_specs: list[SharedPairSpec] = []

    def _setup_pairs(self, address_space: AddressSpace) -> None:
        """One shared halo region per communicating partition pair.

        Region size scales with the pair's coupling relative to the mean
        positive coupling, so SPCD's page-level sampling sees amplitudes,
        not just adjacency — the same amplification trick the NPB chains
        use.
        """
        g = self._ground
        positive = g[g > 0]
        mean_w = float(positive.mean()) if positive.size else 1.0
        n = self.n_threads
        for i in range(n):
            for j in range(i + 1, n):
                if g[i, j] > 0:
                    pages = max(1, round(self.pair_pages * g[i, j] / mean_w))
                    region = address_space.mmap(
                        f"{self.name}.halo{i}_{j}", pages * PAGE_SIZE
                    )
                    self._pair_specs.append(
                        SharedPairSpec(threads=(i, j), region=region, weight=float(g[i, j]))
                    )

    def _channels_for(
        self, tid: int
    ) -> tuple[list[Region], np.ndarray]:
        """Shared regions thread *tid* touches, with selection probabilities."""
        regions: list[Region] = []
        weights: list[float] = []
        for ps in self._pair_specs:
            if tid in ps.threads:
                regions.append(ps.region)
                weights.append(ps.weight)
        if not regions:  # isolated partition: only its private block
            return [self._private[tid]], np.array([1.0])
        w = np.asarray(weights, dtype=float)
        return regions, w / w.sum()

    def _cold_addresses(
        self, tid: int, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Shared-halo + private-block addresses (the detectable stream)."""
        shared_mask = rng.random(n) < self.shared_fraction
        n_shared = int(shared_mask.sum())
        vaddrs = np.empty(n, dtype=np.int64)
        vaddrs[~shared_mask] = self._addresses_in_region(
            self._private[tid], n - n_shared, rng, locality=self.locality
        )
        if n_shared:
            regions, probs = self._channels[tid]
            choice = rng.choice(len(regions), size=n_shared, p=probs)
            shared_addrs = np.empty(n_shared, dtype=np.int64)
            for r_idx in np.unique(choice):
                sel = choice == r_idx
                shared_addrs[sel] = self._addresses_in_region(
                    regions[r_idx], int(sel.sum()), rng, locality=self.locality
                )
            vaddrs[shared_mask] = shared_addrs
        return vaddrs

    def setup(self, address_space: AddressSpace) -> None:
        self._setup_hot(address_space)
        self._private = [
            address_space.mmap(f"{self.name}.block{t}", self.private_pages * PAGE_SIZE)
            for t in range(self.n_threads)
        ]
        self._setup_pairs(address_space)
        self._channels = [self._channels_for(t) for t in range(self.n_threads)]
        self._mark_setup()

    def generate(
        self, tid: int, n: int, now_ns: int, rng: np.random.Generator
    ) -> AccessBatch:
        self._require_setup()
        vaddrs = self._mix_hot(tid, n, rng, lambda m: self._cold_addresses(tid, m, rng))
        return AccessBatch(tid=tid, vaddrs=vaddrs, is_write=self._write_flags(n, rng))

    def ground_truth(self, now_ns: int | None = None) -> CommunicationMatrix:
        return CommunicationMatrix(self.n_threads, self._ground)


class SpmvHaloWorkload(_GraphPartitionedWorkload):
    """Row-partitioned SpMV whose halo reads follow the off-diagonals.

    SpMV reads x remotely but writes only its own y block, so the shared
    stream is read-dominated.
    """

    write_fraction = 0.15
    instructions_per_access = 2.0

    def __init__(self, graph: CsrGraph, n_threads: int = 32, *, name: str = "SPMV") -> None:
        super().__init__(name, graph, n_threads)


class PartitionPageRankWorkload(_GraphPartitionedWorkload):
    """Partition-centric PageRank with alternating gather/scatter phases.

    The cross-partition structure (and hence the matrix SPCD should detect)
    is phase-invariant; what alternates is the direction of the traffic:
    scatter pushes updates out (write-heavy), gather pulls them in
    (read-heavy).  ``phase_at`` mirrors the producer/consumer benchmark's
    time convention.
    """

    instructions_per_access = 2.5
    scatter_write_fraction = 0.8
    gather_write_fraction = 0.1

    def __init__(
        self,
        graph: CsrGraph,
        n_threads: int = 32,
        *,
        phase_period_ns: int = 150 * MSEC,
        name: str = "PAGERANK",
    ) -> None:
        super().__init__(name, graph, n_threads)
        if phase_period_ns <= 0:
            raise WorkloadError("phase_period_ns must be positive")
        self.phase_period_ns = phase_period_ns

    def phase_at(self, now_ns: int) -> int:
        """0 = scatter, 1 = gather."""
        return (now_ns // self.phase_period_ns) % 2

    def generate(
        self, tid: int, n: int, now_ns: int, rng: np.random.Generator
    ) -> AccessBatch:
        self._require_setup()
        vaddrs = self._mix_hot(tid, n, rng, lambda m: self._cold_addresses(tid, m, rng))
        write_prob = (
            self.scatter_write_fraction
            if self.phase_at(now_ns) == 0
            else self.gather_write_fraction
        )
        return AccessBatch(tid=tid, vaddrs=vaddrs, is_write=rng.random(n) < write_prob)


def _build_graph(
    generator: str, n_vertices: int, avg_degree: float, seed: int
) -> CsrGraph:
    if generator == "rmat":
        return rmat_graph(n_vertices, avg_degree, seed=seed)
    if generator == "powerlaw":
        return powerlaw_graph(n_vertices, avg_degree, seed=seed)
    raise WorkloadError(f"unknown graph generator {generator!r}; have rmat, powerlaw")


def make_spmv(
    n_threads: int = 32,
    *,
    n_vertices: int | None = None,
    avg_degree: float = 8.0,
    generator: str = "rmat",
    seed: int = 0,
) -> SpmvHaloWorkload:
    """An SpMV halo-exchange workload over a synthetic sparse matrix."""
    n_vertices = n_vertices if n_vertices is not None else 32 * n_threads
    graph = _build_graph(generator, n_vertices, avg_degree, seed)
    return SpmvHaloWorkload(graph, n_threads)


def make_pagerank(
    n_threads: int = 32,
    *,
    n_vertices: int | None = None,
    avg_degree: float = 8.0,
    generator: str = "rmat",
    seed: int = 0,
    phase_period_ns: int = 150 * MSEC,
) -> PartitionPageRankWorkload:
    """A partition-centric PageRank workload over a synthetic graph."""
    n_vertices = n_vertices if n_vertices is not None else 32 * n_threads
    graph = _build_graph(generator, n_vertices, avg_degree, seed)
    return PartitionPageRankWorkload(graph, n_threads, phase_period_ns=phase_period_ns)
