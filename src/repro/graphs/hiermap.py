"""Scalable hierarchical process mapping (Schulz/Woydt-style).

The paper's mapper pairs threads by Edmonds maximum-weight perfect matching
— exact, but O(n^3) per grouping level: the recorded worst case is 2.2 s
for one 512-thread decision, hopeless at the ROADMAP's 1024-thread target.
:class:`ScalableHierarchicalMapper` replaces the matching with the
shared-memory hierarchical *partitioning* approach of Schulz & Woydt
(PAPERS.md): recursively bisect the communication graph down the machine's
topology tree (sockets -> cores -> SMT siblings), refining each cut with a
bounded Kernighan-Lin pass.  Per decision the work is
``O(depth * (n log n + nnz))`` — tens of milliseconds at n = 1024 on a
power-law matrix — at a small comm-cost premium over Edmonds (pinned at
<= 10% on every n <= 32 Fig. 7-suite matrix by ``tests/test_hiermap.py``).

Determinism: no randomness anywhere.  Bisection candidates are evaluated
in a fixed order (current-placement split, identity split, greedy growth
from the heaviest and lightest vertices), ties keep the earlier candidate,
and all remaining ties break toward the lowest thread id — the same matrix
always yields the same mapping, and exact-tie patterns cannot flip between
calls and migrate threads for nothing.

Both engines expose the same ``map(matrix, current=None)`` /``calls``
surface and share :func:`repro.core.mapping.lay_out_socket_groups` for the
final slot assignment, so stickiness-vs-current tie-breaking behaves
identically whichever algorithm a policy selects
(``repro.core.mapping.make_mapper``).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.mapping import lay_out_socket_groups
from repro.errors import MappingError
from repro.machine.topology import Machine

__all__ = ["ScalableHierarchicalMapper"]

#: vertices per side considered for a Kernighan-Lin swap each round
_TOP_K = 8


class ScalableHierarchicalMapper:
    """Thread -> PU mapping by recursive bisection over the topology tree.

    Drop-in alternative to :class:`repro.core.mapping.HierarchicalMapper`
    for large thread counts; constructed via
    :func:`repro.core.mapping.make_mapper` with ``algorithm="hierarchical"``.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        stickiness: float = 0.2,
        max_refine_swaps: int = 64,
    ) -> None:
        self.machine = machine
        #: with a current placement and stickiness > 0, the split induced by
        #: the threads' current sockets is the first bisection candidate and
        #: keeps ties — the analogue of the Edmonds mapper's bonus weights
        self.stickiness = stickiness
        #: Kernighan-Lin swap budget per bisection (bounds refinement cost)
        self.max_refine_swaps = max_refine_swaps
        self.calls = 0

    # -- public -------------------------------------------------------------
    def map(
        self,
        matrix: CommunicationMatrix | np.ndarray,
        current: np.ndarray | None = None,
    ) -> np.ndarray:
        """Thread -> PU assignment maximising nearby communication.

        Same contract as :meth:`HierarchicalMapper.map`: threads that do not
        fill the machine are padded with zero-communication virtual slots,
        and *current* breaks placement-equivalence ties toward the existing
        placement.
        """
        self.calls += 1
        machine = self.machine
        n_pus = machine.n_pus
        if isinstance(matrix, CommunicationMatrix):
            n_threads = matrix.n
        else:
            matrix = np.asarray(matrix, dtype=float)
            n_threads = matrix.shape[0]
        if n_threads > n_pus:
            raise MappingError(f"{n_threads} threads exceed the machine's {n_pus} PUs")
        adj = self._adjacency(matrix, n_pus)

        smt = machine.smt_per_core
        per_socket = machine.cores_per_socket * smt
        nodes = list(range(n_pus))

        seed_order = None
        if current is not None and self.stickiness > 0 and machine.n_sockets > 1:
            seed_order = self._current_socket_order(current, n_threads, n_pus)
        socket_parts = self._partition_k(
            adj, nodes, machine.n_sockets, per_socket, seed_order=seed_order
        )

        socket_groups = []
        for part_adj, part in socket_parts:
            core_parts = self._partition_k(part_adj, part, machine.cores_per_socket, smt)
            groups = [tuple(sorted(cp)) for _, cp in core_parts]
            groups.sort(key=lambda g: g[0])
            socket_groups.append(groups)
        socket_groups.sort(key=lambda cores: cores[0][0])

        pu_of_slot = lay_out_socket_groups(machine, socket_groups, current, n_threads)
        if np.any(pu_of_slot[:n_threads] < 0):
            raise MappingError("mapping left threads unassigned")
        return pu_of_slot[:n_threads]

    # -- adjacency ----------------------------------------------------------
    @staticmethod
    def _adjacency(
        matrix: CommunicationMatrix | np.ndarray, n_pus: int
    ) -> dict[int, dict[int, float]]:
        """Per-slot ``{partner: weight}`` dicts (virtual slots stay empty).

        A :class:`~repro.graphs.sparse.SparseCommMatrix` is consumed through
        its ``row_items`` accessor without ever materialising the dense
        array, keeping the whole decision O(nnz).
        """
        adj: dict[int, dict[int, float]] = {i: {} for i in range(n_pus)}
        if hasattr(matrix, "row_items"):
            for i in range(matrix.n):
                adj[i] = {int(j): v for j, v in matrix.row_items(i) if j != i}
            return adj
        comm = matrix.matrix if isinstance(matrix, CommunicationMatrix) else matrix
        rows, cols = np.nonzero(comm)
        vals = comm[rows, cols]
        for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            if i != j:
                adj[i][j] = v
        return adj

    def _current_socket_order(
        self, current: np.ndarray, n_threads: int, n_pus: int
    ) -> list[int]:
        """Node order that reproduces the current socket split when prefixed.

        Real threads sorted by (current socket, thread id), virtual slots
        last — taking the first ``size_a`` of this order as side A keeps
        threads on their current socket wherever the pattern permits.
        """
        machine = self.machine
        order = sorted(
            range(n_threads), key=lambda t: (machine.socket_of(int(current[t])), t)
        )
        order.extend(range(n_threads, n_pus))
        return order

    # -- recursive partitioning ---------------------------------------------
    def _partition_k(
        self,
        adj: dict[int, dict[int, float]],
        nodes: list[int],
        k: int,
        part_size: int,
        seed_order: list[int] | None = None,
    ) -> list[tuple[dict[int, dict[int, float]], list[int]]]:
        """Split *nodes* into *k* parts of *part_size* by recursive bisection.

        Returns ``(sub_adjacency, part)`` pairs; *adj* must already be
        restricted to *nodes*.  Restricting the adjacency as the recursion
        descends is what keeps the total work ``O(depth * nnz)``: cut edges
        drop out of the subproblems instead of being re-scanned (and
        re-skipped) at every deeper level.
        """
        if len(nodes) != k * part_size:
            raise MappingError(
                f"cannot split {len(nodes)} slots into {k} parts of {part_size}"
            )
        if k == 1:
            return [(adj, list(nodes))]
        k1 = k // 2
        a, b = self._bisect(adj, nodes, k1 * part_size, seed_order=seed_order)
        set_a = set(a)
        adj_a = {v: {u: w for u, w in adj[v].items() if u in set_a} for v in a}
        adj_b = {v: {u: w for u, w in adj[v].items() if u not in set_a} for v in b}
        # The current-placement hint is consumed by the top split; deeper
        # levels follow the pattern (lay_out breaks the remaining ties).
        return self._partition_k(adj_a, a, k1, part_size) + self._partition_k(
            adj_b, b, k - k1, part_size
        )

    def _bisect(
        self,
        adj: dict[int, dict[int, float]],
        nodes: list[int],
        size_a: int,
        seed_order: list[int] | None = None,
    ) -> tuple[list[int], list[int]]:
        """Split *nodes* into sides of ``size_a`` / rest, minimising the cut."""
        candidates: list[list[int]] = []
        if seed_order is not None:
            members = set(nodes)
            candidates.append([v for v in seed_order if v in members])
        ident = sorted(nodes)
        candidates.append(ident)
        degree = {v: sum(adj[v].values()) for v in nodes}
        heavy = min(ident, key=lambda v: (-degree[v], v))
        light = min(ident, key=lambda v: (degree[v], v))
        candidates.append(self._grow_order(adj, ident, heavy))
        if light != heavy and len(ident) <= 128:
            # The light-seed start only ever wins on small, sparse parts
            # (isolated pair patterns); at scale it just doubles the cost.
            candidates.append(self._grow_order(adj, ident, light))

        best_side: dict[int, int] | None = None
        best_cut = 0.0
        for order in candidates:
            side = {v: (0 if rank < size_a else 1) for rank, v in enumerate(order)}
            cut = self._cut(adj, side)
            if best_side is None or cut < best_cut:
                best_side, best_cut = side, cut
        assert best_side is not None
        if best_cut > 0.0:
            self._refine(adj, best_side)
        a = sorted(v for v, s in best_side.items() if s == 0)
        b = sorted(v for v, s in best_side.items() if s == 1)
        return a, b

    @staticmethod
    def _grow_order(
        adj: dict[int, dict[int, float]],
        ident: list[int],
        seed: int,
    ) -> list[int]:
        """Greedy graph-growing order: repeatedly take the unvisited vertex
        best connected to the visited set (ties and disconnected vertices
        resolve to the lowest id).  Lazy-deletion heap keeps this
        ``O((n + nnz) log n)``."""
        conn: dict[int, float] = {}
        visited: set[int] = set()
        order: list[int] = []
        heap: list[tuple[float, int]] = []
        cursor = 0  # sweeps `ident` for the lowest-id disconnected vertex

        def visit(v: int) -> None:
            visited.add(v)
            order.append(v)
            for u, w in adj[v].items():
                if u not in visited:
                    c = conn.get(u, 0.0) + w
                    conn[u] = c
                    heapq.heappush(heap, (-c, u))

        visit(seed)
        while len(order) < len(ident):
            pick = None
            while heap:
                negc, u = heap[0]
                if u in visited or conn.get(u, 0.0) != -negc:
                    heapq.heappop(heap)  # stale entry
                    continue
                pick = u
                heapq.heappop(heap)
                break
            if pick is None:
                while ident[cursor] in visited:
                    cursor += 1
                pick = ident[cursor]
            visit(pick)
        return order

    @staticmethod
    def _cut(adj: dict[int, dict[int, float]], side: dict[int, int]) -> float:
        """Total weight crossing the two sides (each edge counted once)."""
        total = 0.0
        for v, s in side.items():
            if s == 0:  # count each cross edge from its A endpoint
                for u, w in adj[v].items():
                    if side[u]:
                        total += w
        return total

    def _refine(self, adj: dict[int, dict[int, float]], side: dict[int, int]) -> None:
        """Bounded Kernighan-Lin: balanced pairwise swaps while the cut drops.

        Each round scans both sides for the ``_TOP_K`` highest-gain vertices
        (gain D = external - internal connectivity, maintained incrementally),
        evaluates the k^2 candidate swaps, and applies the best if it strictly
        improves the cut.  At most ``max_refine_swaps`` rounds.
        """
        conn_own: dict[int, float] = {}
        conn_other: dict[int, float] = {}
        for v, s in side.items():
            own = other = 0.0
            for u, w in adj[v].items():
                if side[u] == s:
                    own += w
                else:
                    other += w
            conn_own[v] = own
            conn_other[v] = other

        def gain_of(v: int) -> float:
            return conn_other[v] - conn_own[v]

        for _ in range(self.max_refine_swaps):
            side_a = [v for v, s in side.items() if s == 0]
            side_b = [v for v, s in side.items() if s == 1]
            if not side_a or not side_b:
                return
            top_a = heapq.nsmallest(_TOP_K, side_a, key=lambda v: (-gain_of(v), v))
            top_b = heapq.nsmallest(_TOP_K, side_b, key=lambda v: (-gain_of(v), v))
            best = None
            best_gain = 0.0
            for a in top_a:
                for b in top_b:
                    g = gain_of(a) + gain_of(b) - 2.0 * adj[a].get(b, 0.0)
                    if g > best_gain:
                        best, best_gain = (a, b), g
            if best is None:
                return
            a, b = best
            for x in (a, b):  # both flips pending; old sides still in `side`
                sx = side[x]
                for u, w in adj[x].items():
                    if u == a or u == b:
                        continue
                    if side[u] == sx:
                        conn_own[u] -= w
                        conn_other[u] += w
                    else:
                        conn_other[u] -= w
                        conn_own[u] += w
            side[a], side[b] = 1, 0
            for x in (a, b):
                own = other = 0.0
                sx = side[x]
                for u, w in adj[x].items():
                    if side[u] == sx:
                        own += w
                    else:
                        other += w
                conn_own[x] = own
                conn_other[x] = other
