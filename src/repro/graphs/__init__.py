"""Irregular graph workloads, sparse matrices and scalable mapping.

The paper evaluates on regular, blocky NAS patterns at 32 threads.  This
subsystem grows the reproduction toward the ROADMAP's irregular regime:

* :mod:`repro.graphs.graph` — a CSR graph/sparse-matrix description layer
  with synthetic R-MAT and Chung-Lu power-law generators plus Matrix-Market
  ingestion, and the row-partition helpers that turn a graph into a
  thread-level communication structure;
* :mod:`repro.graphs.workloads` — graph-driven :class:`~repro.workloads.base.Workload`
  implementations: :class:`~repro.graphs.workloads.SpmvHaloWorkload`
  (row-partitioned SpMV whose halo-exchange page sharing follows the
  matrix's off-diagonal structure) and
  :class:`~repro.graphs.workloads.PartitionPageRankWorkload`
  (partition-centric gather/scatter phases);
* :mod:`repro.graphs.sparse` — :class:`~repro.graphs.sparse.SparseCommMatrix`,
  a dict-of-rows sparse backend behind the
  :class:`~repro.core.commmatrix.CommunicationMatrix` interface,
  bit-identical to the dense backend on add/merge/decay/digest/CSV
  (``REPRO_SPARSE_COMM`` selects it for detection);
* :mod:`repro.graphs.hiermap` — :class:`~repro.graphs.hiermap.ScalableHierarchicalMapper`,
  Schulz/Woydt-style shared-memory hierarchical process mapping by
  recursive bisection + local search over the machine's topology tree,
  registered beside the Edmonds blossom engine
  (``REPRO_MAP_HIERARCHICAL_MIN_N`` auto-selects it at scale).
"""

from repro.graphs.graph import (
    CsrGraph,
    load_matrix_market,
    partition_comm_matrix,
    partition_rows,
    powerlaw_graph,
    rmat_graph,
    save_matrix_market,
)
from repro.graphs.hiermap import ScalableHierarchicalMapper
from repro.graphs.sparse import SparseCommMatrix, make_comm_matrix
from repro.graphs.workloads import (
    PartitionPageRankWorkload,
    SpmvHaloWorkload,
    make_pagerank,
    make_spmv,
)

__all__ = [
    "CsrGraph",
    "PartitionPageRankWorkload",
    "ScalableHierarchicalMapper",
    "SparseCommMatrix",
    "SpmvHaloWorkload",
    "load_matrix_market",
    "make_comm_matrix",
    "make_pagerank",
    "make_spmv",
    "partition_comm_matrix",
    "partition_rows",
    "powerlaw_graph",
    "rmat_graph",
    "save_matrix_market",
]
