"""Oracle communication analysis and mapping (paper Sec. V-D)."""

from repro.oracle.analyzer import (
    matrix_from_ground_truth,
    matrix_from_trace,
    oracle_mapping,
)

__all__ = ["matrix_from_ground_truth", "matrix_from_trace", "oracle_mapping"]
