"""Oracle mapping from full access information.

The paper's oracle traces *every* memory access (via simulation, as in [6])
and derives the communication matrix offline, then pins threads statically
to the best mapping.  Here the oracle can draw on two equivalent sources:

* the workload's ground-truth pattern (the generator's own definition —
  what an infinite trace would converge to), or
* an actual captured trace, analysed page by page.

Both feed the same hierarchical mapper that SPCD uses online, so the
comparison isolates *detection quality*, exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.mapping import HierarchicalMapper
from repro.machine.topology import Machine
from repro.workloads.base import Workload
from repro.workloads.trace import TraceCollector


def matrix_from_trace(trace: TraceCollector, n_threads: int) -> CommunicationMatrix:
    """Communication matrix from a full memory trace.

    For every page accessed by two or more threads, each pair of accessing
    threads communicates by the smaller of their access counts (the number
    of pairable producer/consumer events on that page).  Each page
    contributes ``np.minimum.outer`` of its nonzero count vector in one
    accumulate — no per-pair Python loop — and the per-page contributions
    are folded into the result with a single
    :meth:`~repro.core.commmatrix.CommunicationMatrix.merge`; both steps
    are exact for integer counts, so the result is bit-identical to the
    per-pair reference (pinned by ``tests/test_trace_oracle.py``).
    """
    acc = np.zeros((n_threads, n_threads), dtype=np.float64)
    for _page, counts in trace.page_access_counts(n_threads).items():
        tids = np.flatnonzero(counts)
        if tids.size < 2:
            continue
        active = counts[tids].astype(np.float64)
        acc[np.ix_(tids, tids)] += np.minimum.outer(active, active)
    np.fill_diagonal(acc, 0.0)
    return CommunicationMatrix(n_threads).merge(CommunicationMatrix(n_threads, acc))


def matrix_from_ground_truth(workload: Workload) -> CommunicationMatrix:
    """The workload's own (overall) communication pattern."""
    return workload.ground_truth()


def oracle_mapping(
    workload: Workload,
    machine: Machine,
    *,
    trace: TraceCollector | None = None,
) -> np.ndarray:
    """Static thread -> PU mapping with full knowledge of the communication.

    Uses a captured *trace* if given, otherwise the ground-truth pattern.
    """
    if trace is not None:
        matrix = matrix_from_trace(trace, workload.n_threads)
    else:
        matrix = matrix_from_ground_truth(workload)
    mapper = HierarchicalMapper(machine)
    return mapper.map(matrix)
