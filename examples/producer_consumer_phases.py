#!/usr/bin/env python
"""The paper's producer/consumer experiment (Figs. 5 and 6).

16 producer/consumer pairs communicate through shared vectors; the pairing
alternates between neighbouring threads (phase 1) and distant threads
(phase 2).  SPCD must detect each phase's pattern and follow the change.

The script reproduces Fig. 6: the per-phase detected matrices (a, b), a
transition matrix (c) and the overall blended matrix (d), rendered as ASCII
heatmaps and written as PGM images next to this script.
"""

from pathlib import Path

import numpy as np

from repro import EngineConfig, ProducerConsumerWorkload, Simulator
from repro.analysis.heatmap import heatmap_ascii, heatmap_pgm
from repro.units import MSEC
from repro.workloads.patterns import distant_pairs_pattern, neighbor_pairs_pattern

OUT_DIR = Path(__file__).parent / "out"
PHASE_NS = 400 * MSEC


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    workload = ProducerConsumerWorkload(phase_period_ns=PHASE_NS)
    sim = Simulator(workload, "spcd", seed=5, config=EngineConfig(batch_size=256, steps=300))

    snapshots = []

    def snapshot(s, step, now):
        if step % 10 == 9:
            snapshots.append((now, s.manager.detector.snapshot_matrix()))

    result = sim.run(snapshot)
    print(f"run finished: {result.exec_time_s:.3f}s virtual, "
          f"{result.migrations} migrations, "
          f"{sim.manager.detector.stats.comm_events} communication events")

    # Classify intervals by the phase active during them.
    intervals = {"phase1": None, "phase2": None, "transition": None}
    for (t0, m0), (t1, m1) in zip(snapshots, snapshots[1:]):
        diff = m1.diff(m0)
        if diff.total() < 20:
            continue
        p0, p1 = workload.phase_at(t0), workload.phase_at(t1)
        if p0 == p1 == 0 and intervals["phase1"] is None and t0 > PHASE_NS // 4:
            intervals["phase1"] = diff
        elif p0 == p1 == 1 and intervals["phase2"] is None and (t0 % PHASE_NS) > PHASE_NS // 4:
            intervals["phase2"] = diff
        elif p0 != p1 and intervals["transition"] is None:
            intervals["transition"] = diff
    overall = snapshots[-1][1]

    figures = [
        ("fig6a_phase1", "Fig. 6a — phase 1 (neighbours)", intervals["phase1"]),
        ("fig6b_phase2", "Fig. 6b — phase 2 (distant)", intervals["phase2"]),
        ("fig6c_transition", "Fig. 6c — transition", intervals["transition"]),
        ("fig6d_overall", "Fig. 6d — overall", overall),
    ]
    n = workload.n_threads
    iu = np.triu_indices(n, 1)
    for stem, title, matrix in figures:
        if matrix is None:
            print(f"{title}: (no interval captured)")
            continue
        print()
        print(heatmap_ascii(matrix, title=title))
        path = heatmap_pgm(matrix, OUT_DIR / f"{stem}.pgm")
        vec = matrix.matrix[iu]
        c_nb = np.corrcoef(vec, neighbor_pairs_pattern(n)[iu])[0, 1]
        c_ds = np.corrcoef(vec, distant_pairs_pattern(n)[iu])[0, 1]
        print(f"  correlation with neighbour pattern: {c_nb:+.2f}, "
              f"with distant pattern: {c_ds:+.2f}  -> {path}")


if __name__ == "__main__":
    main()
