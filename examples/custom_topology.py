#!/usr/bin/env python
"""Mapping on a custom machine topology.

The SPCD mechanism is hardware-agnostic (paper Sec. I): the hierarchical
mapper only needs the machine's sharing levels.  This example builds a
4-socket machine with 6 cores per socket (a non-power-of-two shape that
exercises the greedy packing fallback), maps a block-communication workload
onto it, and shows where each communicating group landed.
"""

import numpy as np

from repro.core.mapping import HierarchicalMapper, mapping_comm_cost
from repro.machine import build_machine


def block_pattern(n: int, block: int, weight: float = 10.0) -> np.ndarray:
    """Groups of `block` threads that communicate all-to-all internally."""
    m = np.zeros((n, n))
    for base in range(0, n, block):
        m[base : base + block, base : base + block] = weight
    np.fill_diagonal(m, 0.0)
    return m


def main() -> None:
    machine = build_machine(4, 6, 2, name="4s6c2t custom box")
    print(machine.describe())
    n_threads = machine.n_pus  # 48
    comm = block_pattern(n_threads, block=4)

    mapper = HierarchicalMapper(machine)
    mapping = mapper.map(comm)

    print(f"\nmapping of {n_threads} threads (blocks of 4 communicate):")
    for base in range(0, n_threads, 4):
        members = range(base, base + 4)
        placement = [
            f"t{t}->pu{mapping[t]}(c{machine.core_of(int(mapping[t]))}"
            f"/s{machine.socket_of(int(mapping[t]))})"
            for t in members
        ]
        sockets = {machine.socket_of(int(mapping[t])) for t in members}
        cores = {machine.core_of(int(mapping[t])) for t in members}
        print(f"  block {base // 4:2d}: {', '.join(placement)}  "
              f"[{len(cores)} cores, {len(sockets)} socket(s)]")

    cost = mapping_comm_cost(comm, mapping, machine)
    rng = np.random.default_rng(0)
    random_cost = float(
        np.mean([mapping_comm_cost(comm, rng.permutation(n_threads), machine)
                 for _ in range(20)])
    )
    print(f"\ncommunication cost: mapped={cost:.0f} vs random average={random_cost:.0f} "
          f"({100 * (1 - cost / random_cost):.0f}% lower)")


if __name__ == "__main__":
    main()
