#!/usr/bin/env python
"""Detection-accuracy study: injection rate and granularity (Sec. III-C3).

The paper states that the accuracy of the detected pattern is determined by
the additional-page-fault rate and the detection granularity.  This example
sweeps both on the SP benchmark and reports the correlation between the
detected matrix and the generator's ground truth, plus the detection
overhead — the accuracy/overhead trade-off the authors tuned to 4 KiB / 10%.
"""

from repro import EngineConfig, Simulator, SpcdConfig, make_npb
from repro.analysis.report import format_table
from repro.units import KIB


def run(spcd_config: SpcdConfig) -> tuple[float, float, int]:
    sim = Simulator(
        make_npb("SP"),
        "spcd",
        seed=9,
        config=EngineConfig(batch_size=256, steps=150),
        spcd_config=spcd_config,
    )
    res = sim.run()
    corr = res.detected_matrix.correlation(sim.workload.ground_truth())
    return corr, res.detection_pct, sim.manager.detector.stats.comm_events


def main() -> None:
    print("Sweep 1: injection floor (pages cleared per 10 ms wake)")
    rows = []
    for floor in (32, 64, 128, 256, 512):
        corr, ovh, events = run(SpcdConfig(injector_floor=floor))
        rows.append([floor, f"{corr:.3f}", f"{ovh:.2f}%", events])
    print(format_table(["floor", "pattern corr", "detect ovh", "events"], rows))

    print()
    print("Sweep 2: detection granularity (decoupled from the page size)")
    rows = []
    for gran in (1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB):
        corr, ovh, events = run(SpcdConfig(granularity=gran))
        rows.append([f"{gran // KIB} KiB", f"{corr:.3f}", f"{ovh:.2f}%", events])
    print(format_table(["granularity", "pattern corr", "detect ovh", "events"], rows))


if __name__ == "__main__":
    main()
