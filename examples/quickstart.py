#!/usr/bin/env python
"""Quickstart: run one NPB benchmark under SPCD and under the OS baseline.

Usage::

    python examples/quickstart.py [BENCH] [SEED]

Simulates the paper's machine (2x Xeon E5-2650, 32 hardware threads), runs
the chosen synthetic NAS benchmark under the communication-oblivious OS
scheduler and under SPCD, and prints the metrics the paper reports plus the
communication matrix SPCD detected.
"""

import sys

from repro import EngineConfig, Simulator, dual_xeon_e5_2650, make_npb
from repro.analysis.heatmap import heatmap_ascii


def main() -> None:
    bench = sys.argv[1].upper() if len(sys.argv) > 1 else "SP"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

    machine = dual_xeon_e5_2650()
    print(machine.describe())
    print()

    config = EngineConfig(batch_size=256, steps=200)
    results = {}
    for policy in ("os", "spcd"):
        sim = Simulator(make_npb(bench), policy, machine=machine, seed=seed, config=config)
        results[policy] = (sim, sim.run())

    os_res = results["os"][1]
    spcd_sim, spcd_res = results["spcd"]

    print(f"=== {bench} under 32 threads ===")
    header = f"{'metric':30s} {'OS':>12s} {'SPCD':>12s} {'delta':>8s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("execution time (s)", os_res.exec_time_s, spcd_res.exec_time_s),
        ("L2 MPKI", os_res.l2_mpki, spcd_res.l2_mpki),
        ("L3 MPKI", os_res.l3_mpki, spcd_res.l3_mpki),
        ("cache-to-cache transactions", os_res.c2c_transactions, spcd_res.c2c_transactions),
        ("processor energy (J)", os_res.proc_energy_j, spcd_res.proc_energy_j),
        ("DRAM energy (J)", os_res.dram_energy_j, spcd_res.dram_energy_j),
    ]
    for name, a, b in rows:
        delta = 100.0 * (b / a - 1.0) if a else 0.0
        print(f"{name:30s} {a:12.3f} {b:12.3f} {delta:+7.1f}%")

    print()
    print(f"SPCD migrations: {spcd_res.migrations}")
    print(f"SPCD detection overhead: {spcd_res.detection_pct:.2f}%")
    print(f"SPCD mapping overhead:   {spcd_res.mapping_pct:.2f}%")

    gt = spcd_sim.workload.ground_truth()
    corr = spcd_res.detected_matrix.correlation(gt)
    print(f"detected-vs-true pattern correlation: {corr:.3f}")
    print()
    print(heatmap_ascii(spcd_res.detected_matrix, title=f"Detected communication matrix ({bench})"))


if __name__ == "__main__":
    main()
