#!/usr/bin/env python
"""Mini mapping study over a subset of the NAS benchmarks (Fig. 8 style).

Usage::

    python examples/nas_mapping_study.py [BENCH ...]

Runs the given benchmarks (default: BT EP FT SP) under all four placement
policies of the paper — OS scheduler, random static, oracle static and SPCD —
and prints the execution time, L3 MPKI and cache-to-cache series normalised
to the OS baseline, the way the paper's figures present them.
"""

import sys

from repro import EngineConfig, Simulator, make_npb
from repro.analysis.report import format_table

POLICIES = ("os", "random", "oracle", "spcd")


def main() -> None:
    benches = [b.upper() for b in sys.argv[1:]] or ["BT", "EP", "FT", "SP"]
    config = EngineConfig(batch_size=256, steps=200)

    results = {}
    for bench in benches:
        results[bench] = {}
        for policy in POLICIES:
            res = Simulator(make_npb(bench), policy, seed=17, config=config).run()
            results[bench][policy] = res
            print(f"ran {bench}/{policy}: {res.exec_time_s:.3f}s")

    for metric, title in (
        ("exec_time_s", "Execution time (normalised to OS)"),
        ("l3_mpki", "L3 MPKI (normalised to OS)"),
        ("c2c_transactions", "Cache-to-cache transactions (normalised to OS)"),
    ):
        rows = []
        for bench in benches:
            base = results[bench]["os"].metric(metric)
            rows.append(
                [bench] + [results[bench][p].metric(metric) / base for p in POLICIES]
            )
        print()
        print(format_table(["bench"] + [p.upper() for p in POLICIES], rows, title=title))

    print()
    rows = [
        [bench, results[bench]["spcd"].migrations,
         f"{results[bench]['spcd'].detection_pct:.2f}%",
         f"{results[bench]['spcd'].mapping_pct:.2f}%"]
        for bench in benches
    ]
    print(format_table(["bench", "migrations", "detection ovh", "mapping ovh"], rows,
                       title="SPCD behaviour"))


if __name__ == "__main__":
    main()
