"""Tests for the end-to-end simulator (small, fast configurations)."""

import pytest

from repro.core.manager import SpcdConfig
from repro.engine.runner import (
    normalized_to,
    run_replicated,
    run_single,
    summarize,
)
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import ConfigurationError
from repro.units import MSEC
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload

FAST = EngineConfig(batch_size=128, steps=25)


class TestEngineConfig:
    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(batch_size=0)

    def test_rejects_bad_pretouch(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(pretouch="lazy")


class TestBasicRun:
    def test_produces_metrics(self):
        res = Simulator(make_npb("BT"), "os", seed=1, config=FAST).run()
        assert res.exec_time_s > 0
        assert res.instructions > 0
        assert res.l2_mpki > 0 and res.l3_mpki >= 0
        assert res.proc_energy_j > 0 and res.dram_energy_j > 0
        assert res.workload == "BT" and res.policy == "os"

    def test_deterministic_given_seed(self):
        a = Simulator(make_npb("BT"), "os", seed=7, config=FAST).run()
        b = Simulator(make_npb("BT"), "os", seed=7, config=FAST).run()
        assert a.exec_time_s == b.exec_time_s
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_seed_changes_results(self):
        a = Simulator(make_npb("BT"), "os", seed=7, config=FAST).run()
        b = Simulator(make_npb("BT"), "os", seed=8, config=FAST).run()
        assert a.exec_time_s != b.exec_time_s

    def test_cache_invariants_after_run(self):
        sim = Simulator(make_npb("CG"), "os", seed=1, config=FAST)
        sim.run()
        assert sim.hierarchy.check_invariants() == []

    def test_instruction_count_matches_config(self):
        wl = make_npb("BT")
        sim = Simulator(wl, "os", seed=1, config=FAST)
        res = sim.run()
        expected = FAST.batch_size * FAST.steps * 32 * wl.instructions_per_access
        assert res.instructions == pytest.approx(expected)

    def test_serial_pretouch_homes_everything_on_node_of_thread0(self):
        sim = Simulator(make_npb("BT"), "random", seed=1, config=FAST)
        table = sim.address_space.page_table
        populated = table.populated_vpns()
        home = sim.machine.numa_node_of(sim.scheduler.pu_of(0))
        assert (table.home_nodes(populated) == home).all()

    def test_parallel_pretouch_spreads_homes(self):
        cfg = EngineConfig(batch_size=128, steps=25, pretouch="parallel")
        sim = Simulator(make_npb("BT"), "random", seed=1, config=cfg)
        sim.run()
        table = sim.address_space.page_table
        homes = table.home_nodes(table.populated_vpns())
        assert len(set(homes.tolist())) == 2

    def test_trace_collection(self):
        cfg = EngineConfig(batch_size=64, steps=5, collect_trace=True)
        sim = Simulator(make_npb("BT"), "os", seed=1, config=cfg)
        sim.run()
        assert sim.trace is not None
        assert sim.trace.total_accesses == 64 * 5 * 32

    def test_step_callback_invoked(self):
        calls = []
        Simulator(make_npb("BT"), "os", seed=1, config=FAST).run(
            lambda sim, step, now: calls.append(step)
        )
        assert calls == list(range(FAST.steps))


class TestSpcdRun:
    def test_spcd_detects_and_migrates(self):
        cfg = EngineConfig(batch_size=192, steps=80)
        scfg = SpcdConfig(filter_min_events=32)
        sim = Simulator(make_npb("SP"), "spcd", seed=3, config=cfg, spcd_config=scfg)
        res = sim.run()
        assert res.migrations >= 1
        assert res.injected_faults > 0
        assert res.detected_matrix is not None
        assert res.detected_matrix.correlation(sim.workload.ground_truth()) > 0.3

    def test_spcd_overheads_reported(self):
        cfg = EngineConfig(batch_size=192, steps=60)
        res = Simulator(make_npb("SP"), "spcd", seed=3, config=cfg).run()
        assert res.detection_pct > 0
        assert res.detection_pct < 5.0

    def test_non_spcd_policies_have_no_detector(self):
        res = Simulator(make_npb("BT"), "oracle", seed=1, config=FAST).run()
        assert res.detected_matrix is None
        assert res.migrations == 0 and res.detection_pct == 0

    def test_os_policy_may_migrate(self):
        res = Simulator(make_npb("BT"), "os", seed=1, config=FAST).run()
        assert res.os_migrations >= 0  # CFS noise, counted separately


class TestRunner:
    def test_summarize_mean_and_ci(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.ci95 > 0
        assert stats.n == 3

    def test_summarize_constant_has_zero_ci(self):
        assert summarize([5.0, 5.0]).ci95 == 0.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_run_single(self):
        res = run_single(lambda: make_npb("BT"), "os", seed=1, config=FAST)
        assert res.workload == "BT"

    def test_run_replicated_collects_metrics(self):
        rep = run_replicated(lambda: make_npb("BT"), "os", reps=2, config=FAST)
        assert rep.metrics["exec_time_s"].n == 2
        assert rep.policy == "os"

    def test_replications_differ(self):
        rep = run_replicated(lambda: make_npb("BT"), "random", reps=2, config=FAST)
        values = rep.metrics["exec_time_s"].values
        assert values[0] != values[1]

    def test_normalized_to_baseline(self):
        results = {
            "os": run_replicated(lambda: make_npb("BT"), "os", reps=1, config=FAST),
            "random": run_replicated(lambda: make_npb("BT"), "random", reps=1, config=FAST),
        }
        norm = normalized_to(results, "exec_time_s")
        assert norm["os"] == pytest.approx(1.0)
        assert norm["random"] > 0

    def test_normalized_requires_baseline(self):
        with pytest.raises(ConfigurationError):
            normalized_to({}, "exec_time_s")

    def test_rejects_zero_reps(self):
        with pytest.raises(ConfigurationError):
            run_replicated(lambda: make_npb("BT"), "os", reps=0, config=FAST)


class TestProducerConsumerRun:
    def test_runs_under_spcd(self):
        wl = ProducerConsumerWorkload(phase_period_ns=60 * MSEC)
        cfg = EngineConfig(batch_size=128, steps=60)
        res = Simulator(wl, "spcd", seed=2, config=cfg).run()
        assert res.exec_time_s > 0
        assert res.detected_matrix.total() > 0
